//===- convert/schedule_builder.h - Incremental §2.4 conversion -----------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming form of the trace→schedule conversion (§2.4). The
/// batch Converter (trace_to_schedule.cpp) materializes the whole
/// action vector before attributing overheads; ScheduleBuilder performs
/// the *same* attribution with a bounded look-ahead window:
///
///  - a completed polling round is held until the next action shows
///    whether another round follows (flush as ReadOvh chunks) or the
///    phase ends (the final all-failed round, → PollingOvh or Idle);
///  - a selection is held until the action after it resolves
///    Selection j (next is Disp j) vs Selection ⊥ (next is Idling);
///
/// so the window never holds more than NumSockets read actions plus the
/// held selection plus the segmenter's one open action — independent of
/// the horizon. Attribution rules, diagnostic messages, and emission
/// order match the batch converter exactly; the equivalence is fuzzed
/// by tests/stream_equivalence_test.cpp on top of the full corpus.
///
/// Downstream, a ScheduleEventConsumer receives the coalesced
/// (interval, ProcessorState) segments plus the job life cycle:
/// admitted (first appearance, after ReadAt is known), selected,
/// dispatched, retired (M_Completion — per-job state can be dropped),
/// and the leftover open jobs at end of stream. ScheduleCapture
/// materializes these events back into a ConversionResult — the batch
/// adapter.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CONVERT_SCHEDULE_BUILDER_H
#define RPROSA_CONVERT_SCHEDULE_BUILDER_H

#include "convert/trace_to_schedule.h"
#include "trace/stream.h"

#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace rprosa {

/// Consumer of the incremental conversion's output events.
class ScheduleEventConsumer {
public:
  virtual ~ScheduleEventConsumer() = default;

  /// The schedule's start instant (first action's start); fired once,
  /// before any segment, unless the trace is empty.
  virtual void onScheduleStart(Time At) { (void)At; }

  /// One coalesced segment (maximal run of one processor state), in
  /// schedule order, contiguous.
  virtual void onSegment(const ScheduleSegment &Seg) { (void)Seg; }

  /// First appearance of a job in the conversion's job table. \p Index
  /// is its table position (admission order == batch table order).
  virtual void onJobAdmitted(const ConvertedJob &CJ, std::size_t Index) {
    (void)CJ;
    (void)Index;
  }
  /// SelectedAt was just recorded for \p CJ.
  virtual void onJobSelected(const ConvertedJob &CJ, std::size_t Index) {
    (void)CJ;
    (void)Index;
  }
  /// DispatchedAt was just recorded for \p CJ.
  virtual void onJobDispatched(const ConvertedJob &CJ, std::size_t Index) {
    (void)CJ;
    (void)Index;
  }
  /// CompletedAt was just recorded; the builder drops the job's state
  /// after this call (the final snapshot is \p CJ).
  virtual void onJobRetired(const ConvertedJob &CJ, std::size_t Index) {
    (void)CJ;
    (void)Index;
  }
  /// End of stream. \p Open are the never-completed jobs still live at
  /// the horizon, as (table index, final snapshot), in table order.
  virtual void
  onScheduleEnd(const std::vector<std::pair<std::size_t, ConvertedJob>> &Open) {
    (void)Open;
  }
};

/// Tees conversion events into several consumers (delivery in add order).
class ScheduleEventFanout final : public ScheduleEventConsumer {
public:
  void add(ScheduleEventConsumer &C) { Out.push_back(&C); }

  void onScheduleStart(Time At) override {
    for (auto *C : Out)
      C->onScheduleStart(At);
  }
  void onSegment(const ScheduleSegment &Seg) override {
    for (auto *C : Out)
      C->onSegment(Seg);
  }
  void onJobAdmitted(const ConvertedJob &CJ, std::size_t Index) override {
    for (auto *C : Out)
      C->onJobAdmitted(CJ, Index);
  }
  void onJobSelected(const ConvertedJob &CJ, std::size_t Index) override {
    for (auto *C : Out)
      C->onJobSelected(CJ, Index);
  }
  void onJobDispatched(const ConvertedJob &CJ, std::size_t Index) override {
    for (auto *C : Out)
      C->onJobDispatched(CJ, Index);
  }
  void onJobRetired(const ConvertedJob &CJ, std::size_t Index) override {
    for (auto *C : Out)
      C->onJobRetired(CJ, Index);
  }
  void onScheduleEnd(
      const std::vector<std::pair<std::size_t, ConvertedJob>> &Open) override {
    for (auto *C : Out)
      C->onScheduleEnd(Open);
  }

private:
  std::vector<ScheduleEventConsumer *> Out;
};

/// The incremental converter sink. Feed markers in timestamp order
/// (RPROSA_CHECK-enforced; the batch converter's precondition of sane
/// timestamps, made explicit); call onEnd exactly once.
class ScheduleBuilder final : public TraceSink {
public:
  ScheduleBuilder(std::uint32_t NumSockets, ScheduleEventConsumer &Out,
                  CheckResult *Diags = nullptr);

  void onMarker(const MarkerEvent &E, Time At) override;
  void onEnd(Time EndTime) override;

  /// Jobs admitted but not yet retired — the builder's live table size.
  std::size_t openJobs() const { return Recs.size(); }
  /// Jobs admitted over the whole run.
  std::size_t admittedJobs() const { return NumAdmitted; }
  /// Actions currently buffered (reads of the open polling round plus
  /// the held selection); bounded by NumSockets + 1.
  std::size_t windowActions() const {
    return Window.size() + (HeldSel ? 1 : 0);
  }

private:
  /// One buffered Read action with its M_ReadE timestamp (§2.4 ReadAt).
  struct RAct {
    BasicAction A;
    Time ReadEAt = 0;
  };
  /// A live job-table record.
  struct Rec {
    ConvertedJob CJ;
    std::size_t Index = 0;
  };
  enum class PhaseState : std::uint8_t {
    Top,          ///< No polling phase open.
    InPhase,      ///< Collecting reads of a polling phase.
    AwaitAfterSel ///< Selection held; waiting for the action after it.
  };

  void diag(std::string Message);
  void processAction(const BasicAction &A, Time ReadEAt);
  void topLevel(const BasicAction &A);
  void pushRead(const BasicAction &A, Time ReadEAt);
  void attributeRound(const std::vector<RAct> &Round);
  void holdFinalRound();
  void endPhaseNoSelection(bool AtEnd);
  void afterSelection(const BasicAction &A, Time ReadEAt);

  /// Looks up or creates the job-table record; \p IsNew reports whether
  /// an admission event must follow once the caller filled the fields.
  Rec &jobEntry(const Job &J, bool &IsNew);

  void emit(ProcState S, Duration Len);
  void flushSeg();

  std::uint32_t NumSockets;
  ScheduleEventConsumer &Out;
  CheckResult *Diags;
  ActionSegmenter Seg;

  // Conversion state machine.
  PhaseState Phase = PhaseState::Top;
  std::vector<RAct> Window;
  std::size_t PhaseReads = 0;
  std::optional<BasicAction> HeldSel;
  Duration FinalRoundLen = 0;

  // Segment emission (run-length coalescing, mirroring Schedule::append).
  bool Started = false;
  Time Cursor = 0;
  bool SegOpen = false;
  ScheduleSegment PendingSeg;

  // Live job table; retired records are erased (O(open jobs)).
  std::map<JobId, Rec> Recs;
  std::size_t NumAdmitted = 0;

  // Timestamp-order precondition tracking.
  Time LastTs = 0;
  bool HaveTs = false;
};

/// Materializes the event stream back into a ConversionResult — the
/// batch adapter, and the streaming side of the equivalence oracle.
class ScheduleCapture final : public ScheduleEventConsumer {
public:
  void onScheduleStart(Time At) override { Res.Sched = Schedule(At); }
  void onSegment(const ScheduleSegment &Seg) override {
    Res.Sched.append(Seg.State, Seg.Len);
  }
  void onJobAdmitted(const ConvertedJob &CJ, std::size_t Index) override {
    RPROSA_CHECK(Index == Res.Jobs.size(),
                 "admissions must arrive in table order");
    Res.Jobs.push_back(CJ);
  }
  void onJobSelected(const ConvertedJob &CJ, std::size_t Index) override {
    Res.Jobs[Index] = CJ;
  }
  void onJobDispatched(const ConvertedJob &CJ, std::size_t Index) override {
    Res.Jobs[Index] = CJ;
  }
  void onJobRetired(const ConvertedJob &CJ, std::size_t Index) override {
    Res.Jobs[Index] = CJ;
  }
  void onScheduleEnd(
      const std::vector<std::pair<std::size_t, ConvertedJob>> &Open) override {
    for (const auto &[Index, CJ] : Open)
      Res.Jobs[Index] = CJ;
  }

  const ConversionResult &result() const { return Res; }
  ConversionResult take() { return std::move(Res); }

private:
  ConversionResult Res;
};

/// Streaming Schedule::validateStructure: checks contiguity, positive
/// length, and coalescing per arriving segment. Same failure messages
/// and check counts as the batch validator.
class ScheduleStructureSink final : public ScheduleEventConsumer {
public:
  void onScheduleStart(Time At) override { Cursor = At; }
  void onSegment(const ScheduleSegment &Seg) override {
    R.noteCheck(3);
    if (Seg.Start != Cursor)
      R.addFailure("schedule gap before segment " + std::to_string(Index));
    if (Seg.Len == 0)
      R.addFailure("zero-length segment " + std::to_string(Index));
    if (Index > 0 && Prev == Seg.State)
      R.addFailure("uncoalesced equal segments at " + std::to_string(Index));
    Prev = Seg.State;
    Cursor = Seg.end();
    ++Index;
  }

  const CheckResult &result() const { return R; }
  CheckResult take() { return std::move(R); }

private:
  CheckResult R;
  Time Cursor = 0;
  ProcState Prev;
  std::size_t Index = 0;
};

} // namespace rprosa

#endif // RPROSA_CONVERT_SCHEDULE_BUILDER_H
