//===- convert/validity.h - Validity constraints on schedules (§2.4) ------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The validity constraints of §2.4 on converted schedules:
///  (a) bounds on each discrete instance of a processor state (e.g.
///      Def. 2.2: every PollingOvh instance within PB = |socks|·WcetFR);
///  (b) consistency with the arrival sequence (every scheduled job
///      originates from an arrival, after its arrival time);
///  (c) functional correctness at schedule level (the selected job
///      precedes every other read-but-undispatched job in the policy
///      order — highest priority for the paper's NPFP policy);
///  (d) a schedule-level version of the scheduler protocol (per-job
///      state ordering; exactly one contiguous execution per job —
///      non-preemptive execution);
///  (e) unique job identifiers.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CONVERT_VALIDITY_H
#define RPROSA_CONVERT_VALIDITY_H

#include "convert/trace_to_schedule.h"

#include "core/arrival_sequence.h"
#include "core/policy.h"
#include "core/task.h"
#include "core/wcet.h"
#include "support/check.h"

namespace rprosa {

/// Checks all five §2.4 validity constraints; the returned result
/// aggregates every violation found.
CheckResult checkValidity(const ConversionResult &CR, const TaskSet &Tasks,
                          const ArrivalSequence &Arr,
                          const BasicActionWcets &W,
                          std::uint32_t NumSockets,
                          SchedPolicy Policy = SchedPolicy::Npfp);

} // namespace rprosa

#endif // RPROSA_CONVERT_VALIDITY_H
