//===- convert/schedule_builder.cpp ---------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
// Mirrors convert/trace_to_schedule.cpp (the batch Converter) action
// for action: same attribution rules, same diagnostic strings, same
// segment emission order. The two stay separate implementations on
// purpose — the batch converter is the reference oracle that the
// equivalence fuzz test replays against this one.
//===----------------------------------------------------------------------===//

#include "convert/schedule_builder.h"

#include "trace/basic_actions.h"

#include <algorithm>
#include <string>
#include <utility>

using namespace rprosa;

ScheduleBuilder::ScheduleBuilder(std::uint32_t NumSockets,
                                 ScheduleEventConsumer &Out,
                                 CheckResult *Diags)
    : NumSockets(NumSockets), Out(Out), Diags(Diags),
      Seg([this](const BasicAction &A, Time ReadEAt) {
        processAction(A, ReadEAt);
      }) {
  RPROSA_CHECK(NumSockets > 0, "need at least one socket");
}

void ScheduleBuilder::onMarker(const MarkerEvent &E, Time At) {
  RPROSA_CHECK(!HaveTs || LastTs <= At,
               "markers must be delivered in timestamp order");
  LastTs = At;
  HaveTs = true;
  Seg.onMarker(E, At);
}

void ScheduleBuilder::onEnd(Time EndTime) {
  RPROSA_CHECK(!HaveTs || LastTs <= EndTime,
               "EndTime must not precede the last marker");
  Seg.onEnd(EndTime);

  // Close whatever structure is still open (batch: the phase ends at
  // the end of the action vector).
  if (Phase == PhaseState::InPhase) {
    endPhaseNoSelection(/*AtEnd=*/true);
    Phase = PhaseState::Top;
  } else if (Phase == PhaseState::AwaitAfterSel) {
    // Selection is the last action: final round and selection are Idle,
    // and with nothing after the selection there is no diagnostic.
    emit(ProcState::idle(), FinalRoundLen + HeldSel->len());
    HeldSel.reset();
    Phase = PhaseState::Top;
  }
  flushSeg();

  std::vector<std::pair<std::size_t, ConvertedJob>> Open;
  Open.reserve(Recs.size());
  for (const auto &[Id, R] : Recs)
    Open.emplace_back(R.Index, R.CJ);
  std::sort(Open.begin(), Open.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  Out.onScheduleEnd(Open);
}

void ScheduleBuilder::diag(std::string Message) {
  if (Diags)
    Diags->addFailure(std::move(Message));
}

ScheduleBuilder::Rec &ScheduleBuilder::jobEntry(const Job &J, bool &IsNew) {
  auto It = Recs.find(J.Id);
  if (It != Recs.end()) {
    IsNew = false;
    return It->second;
  }
  IsNew = true;
  Rec R;
  R.CJ.J = J;
  R.Index = NumAdmitted++;
  return Recs.emplace(J.Id, std::move(R)).first->second;
}

void ScheduleBuilder::emit(ProcState S, Duration Len) {
  if (Len == 0)
    return;
  if (SegOpen && PendingSeg.State == S) {
    PendingSeg.Len += Len;
  } else {
    flushSeg();
    PendingSeg.Start = Cursor;
    PendingSeg.Len = Len;
    PendingSeg.State = S;
    SegOpen = true;
  }
  Cursor += Len;
}

void ScheduleBuilder::flushSeg() {
  if (!SegOpen)
    return;
  SegOpen = false;
  Out.onSegment(PendingSeg);
}

void ScheduleBuilder::processAction(const BasicAction &A, Time ReadEAt) {
  if (!Started) {
    Started = true;
    Cursor = A.Start;
    Out.onScheduleStart(A.Start);
  }
  switch (Phase) {
  case PhaseState::Top:
    if (A.Kind == BasicActionKind::Read) {
      Phase = PhaseState::InPhase;
      PhaseReads = 0;
      pushRead(A, ReadEAt);
      return;
    }
    topLevel(A);
    return;

  case PhaseState::InPhase:
    if (A.Kind == BasicActionKind::Read) {
      pushRead(A, ReadEAt);
      return;
    }
    if (A.Kind == BasicActionKind::Selection) {
      holdFinalRound();
      HeldSel = A;
      Phase = PhaseState::AwaitAfterSel;
      return;
    }
    endPhaseNoSelection(/*AtEnd=*/false);
    Phase = PhaseState::Top;
    topLevel(A);
    return;

  case PhaseState::AwaitAfterSel:
    afterSelection(A, ReadEAt);
    return;
  }
}

void ScheduleBuilder::pushRead(const BasicAction &A, Time ReadEAt) {
  // The window holds the potential final round; the moment another read
  // arrives, the held round is known to be a pre-final one (and thus
  // ReadOvh-attributable) and can be flushed.
  if (Window.size() == NumSockets) {
    attributeRound(Window);
    Window.clear();
  }
  Window.push_back(RAct{A, ReadEAt});
  ++PhaseReads;
}

void ScheduleBuilder::attributeRound(const std::vector<RAct> &Round) {
  // Chunk boundaries: every success absorbs the failures since the
  // previous chunk; the last success absorbs the trailing failures too.
  std::size_t LastSuccess = Round.size();
  for (std::size_t K = 0; K < Round.size(); ++K)
    if (Round[K].A.J)
      LastSuccess = K;
  if (LastSuccess == Round.size()) {
    // No success: can only happen on malformed input (the final
    // all-failed round is held in the window, never attributed here).
    diag("polling round without a successful read outside the final "
         "round; mapped to Idle");
    for (const RAct &R : Round)
      emit(ProcState::idle(), R.A.len());
    return;
  }
  Duration Buffered = 0;
  for (std::size_t K = 0; K < Round.size(); ++K) {
    const BasicAction &A = Round[K].A;
    if (!A.J) {
      Buffered += A.len();
      continue;
    }
    Duration ChunkLen = Buffered + A.len();
    if (K == LastSuccess) {
      for (std::size_t T = K + 1; T < Round.size(); ++T)
        ChunkLen += Round[T].A.len();
    }
    emit(ProcState::overhead(ProcStateKind::ReadOvh, A.J->Id), ChunkLen);
    bool IsNew = false;
    Rec &R = jobEntry(*A.J, IsNew);
    // ReadAt is the M_ReadE timestamp (the segmenter recorded it when
    // it absorbed the read-result marker).
    R.CJ.ReadAt = Round[K].ReadEAt;
    if (IsNew)
      Out.onJobAdmitted(R.CJ, R.Index);
    Buffered = 0;
    if (K == LastSuccess)
      break;
  }
}

void ScheduleBuilder::holdFinalRound() {
  // A selection arrived: the window is the phase's final round if it is
  // complete, a truncated round otherwise (malformed input).
  if (Window.size() == NumSockets) {
    FinalRoundLen = 0;
    for (const RAct &R : Window)
      FinalRoundLen += R.A.len();
  } else {
    diag("polling phase with a truncated round (" +
         std::to_string(PhaseReads) + " reads, " +
         std::to_string(NumSockets) + " sockets)");
    attributeRound(Window);
    FinalRoundLen = 0;
  }
  Window.clear();
}

void ScheduleBuilder::endPhaseNoSelection(bool AtEnd) {
  if (Window.size() == NumSockets) {
    // Truncated run: the final all-failed round closes with Idle.
    Duration Len = 0;
    for (const RAct &R : Window)
      Len += R.A.len();
    emit(ProcState::idle(), Len);
  } else {
    diag("polling phase with a truncated round (" +
         std::to_string(PhaseReads) + " reads, " +
         std::to_string(NumSockets) + " sockets)");
    attributeRound(Window);
  }
  Window.clear();
  if (!AtEnd)
    diag("polling phase not followed by a selection");
}

void ScheduleBuilder::afterSelection(const BasicAction &A, Time ReadEAt) {
  if (A.Kind == BasicActionKind::Disp && A.J) {
    JobId Next = A.J->Id;
    emit(ProcState::overhead(ProcStateKind::PollingOvh, Next), FinalRoundLen);
    emit(ProcState::overhead(ProcStateKind::SelectionOvh, Next),
         HeldSel->len());
    bool IsNew = false;
    Rec &R = jobEntry(*A.J, IsNew);
    R.CJ.SelectedAt = HeldSel->Start;
    if (IsNew)
      Out.onJobAdmitted(R.CJ, R.Index);
    Out.onJobSelected(R.CJ, R.Index);
    HeldSel.reset();
    Phase = PhaseState::Top;
    topLevel(A); // The Disp action itself: DispatchOvh.
    return;
  }

  // Selection came up empty: final round + selection (+ idle cycle) are
  // all Idle (§2.4).
  if (A.Kind == BasicActionKind::Idling) {
    emit(ProcState::idle(), FinalRoundLen + HeldSel->len() + A.len());
    HeldSel.reset();
    Phase = PhaseState::Top;
    return;
  }
  diag("selection with no job followed by " + toString(A.Kind) +
       " instead of Idling");
  emit(ProcState::idle(), FinalRoundLen + HeldSel->len());
  HeldSel.reset();
  Phase = PhaseState::Top;
  processAction(A, ReadEAt);
}

void ScheduleBuilder::topLevel(const BasicAction &A) {
  switch (A.Kind) {
  case BasicActionKind::Read:
    RPROSA_CHECK(false, "reads are handled by the phase machine");
    return;
  case BasicActionKind::Disp:
    if (A.J) {
      emit(ProcState::overhead(ProcStateKind::DispatchOvh, A.J->Id), A.len());
      bool IsNew = false;
      Rec &R = jobEntry(*A.J, IsNew);
      R.CJ.DispatchedAt = A.Start;
      if (IsNew)
        Out.onJobAdmitted(R.CJ, R.Index);
      Out.onJobDispatched(R.CJ, R.Index);
    } else {
      diag("dispatch action without a job; mapped to Idle");
      emit(ProcState::idle(), A.len());
    }
    return;
  case BasicActionKind::Exec:
    if (A.J) {
      emit(ProcState::executes(A.J->Id), A.len());
    } else {
      diag("execution action without a job; mapped to Idle");
      emit(ProcState::idle(), A.len());
    }
    return;
  case BasicActionKind::Compl:
    if (A.J) {
      emit(ProcState::overhead(ProcStateKind::CompletionOvh, A.J->Id),
           A.len());
      bool IsNew = false;
      Rec &R = jobEntry(*A.J, IsNew);
      R.CJ.CompletedAt = A.Start;
      if (IsNew)
        Out.onJobAdmitted(R.CJ, R.Index);
      // Retirement: the record leaves the live table — this keeps the
      // builder's state O(open jobs) over arbitrarily long runs.
      ConvertedJob Done = R.CJ;
      std::size_t Index = R.Index;
      Recs.erase(A.J->Id);
      Out.onJobRetired(Done, Index);
    } else {
      diag("completion action without a job; mapped to Idle");
      emit(ProcState::idle(), A.len());
    }
    return;
  case BasicActionKind::Selection:
  case BasicActionKind::Idling:
    // Only reachable on malformed traces (selections are consumed by
    // the phase machine).
    diag("unexpected top-level " + toString(A.Kind) + "; mapped to Idle");
    emit(ProcState::idle(), A.len());
    return;
  }
}
