//===- convert/validity_stream.h - Streaming §2.4 validity checks ---------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §2.4 validity constraints (see convert/validity.h) as a
/// ScheduleEventConsumer with O(tasks + open jobs) state:
///
///  - (a) per-instance duration bounds are checked as segments arrive;
///  - per-job usage (ReadOvh totals, execution segments, PollingOvh
///    instances) is accumulated live and *evaluated at retirement*,
///    after which the job's state is dropped;
///  - (b)/(e) arrival consistency and uniqueness run at admission;
///  - (c) policy compliance runs at selection, against the currently
///    open jobs — on protocol-conformant traces this is exactly the
///    batch checker's pair set that can fail (retired jobs fail its
///    StillPending predicate, later-read jobs its ReadBefore);
///  - (d) event ordering runs at retirement (open jobs at the end).
///
/// The batch checker reports failures grouped by constraint, not by
/// event time, so failures are buffered with a canonical sort key
/// (constraint block, then the batch iteration keys) and ordered once
/// at the end: the emitted CheckResult is byte-identical to batch
/// checkValidity on conformant (and singly-malformed) traces, which the
/// equivalence fuzz test enforces. checkValidity itself stays an
/// independent implementation — it is the oracle.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CONVERT_VALIDITY_STREAM_H
#define RPROSA_CONVERT_VALIDITY_STREAM_H

#include "convert/schedule_builder.h"
#include "convert/validity.h"
#include "support/interval_set.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rprosa {

/// Streaming validity checker; attach to a ScheduleBuilder (directly or
/// via ScheduleEventFanout). The result is complete after
/// onScheduleEnd.
class StreamingValidity final : public ScheduleEventConsumer {
public:
  StreamingValidity(const TaskSet &Tasks, const ArrivalSequence &Arr,
                    const BasicActionWcets &W, std::uint32_t NumSockets,
                    SchedPolicy Policy = SchedPolicy::Npfp);

  void onScheduleStart(Time At) override;
  void onSegment(const ScheduleSegment &Seg) override;
  void onJobAdmitted(const ConvertedJob &CJ, std::size_t Index) override;
  void onJobSelected(const ConvertedJob &CJ, std::size_t Index) override;
  void onJobDispatched(const ConvertedJob &CJ, std::size_t Index) override;
  void onJobRetired(const ConvertedJob &CJ, std::size_t Index) override;
  void onScheduleEnd(
      const std::vector<std::pair<std::size_t, ConvertedJob>> &Open) override;

  /// Valid after onScheduleEnd.
  const CheckResult &result() const { return R; }
  CheckResult take() { return std::move(R); }

  /// Live-state introspection for the retirement tests.
  std::size_t openRecords() const { return Recs.size(); }
  std::size_t openUsage() const { return Usage.size(); }

private:
  /// Per-job accumulated quantities over the schedule segments
  /// (mirrors the batch checker's JobUsage).
  struct JobUsage {
    Duration ReadOvh = 0;
    Duration ExecTime = 0;
    std::size_t ExecSegments = 0;
    std::size_t PollingInstances = 0;
  };
  /// A live job record (dropped at retirement).
  struct VRec {
    ConvertedJob CJ;
    std::size_t Index = 0;
    bool Keyed = false;
    bool SelectedCounted = false;
  };
  /// A buffered failure with its canonical position: constraint block
  /// (the batch checker's section order), then the batch loop keys.
  struct Pending {
    std::uint32_t Block;
    std::uint64_t K1;
    std::uint64_t K2;
    std::string Msg;
  };

  void fail(std::uint32_t Block, std::uint64_t K1, std::uint64_t K2,
            std::string Msg);
  /// The usage + non-preemptivity block for one job id (batch: the
  /// Usage-map loop); \p CJ may be null (job never entered the table).
  void evalUsage(JobId Id, const JobUsage &U, const ConvertedJob *CJ);
  /// The per-job event-ordering block (batch: the final (d) loop).
  void evalOrdering(const ConvertedJob &CJ, std::size_t Index);

  const TaskSet &Tasks;
  const ArrivalSequence &Arr;
  BasicActionWcets W;
  SchedPolicy Policy;
  Duration PB;
  Duration RB;

  CheckResult R;
  std::vector<Pending> Buffered;

  std::map<JobId, JobUsage> Usage;
  std::map<JobId, VRec> Recs;
  IdIntervalSet SeenIds;
  IdIntervalSet SeenMsgs;
  std::size_t SegIndex = 0;
  std::size_t KeyedJobs = 0;    ///< K: keyed jobs ever admitted.
  std::size_t SelectedKeyed = 0; ///< S: keyed jobs that got selected.
};

} // namespace rprosa

#endif // RPROSA_CONVERT_VALIDITY_STREAM_H
