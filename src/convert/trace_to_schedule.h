//===- convert/trace_to_schedule.h - Timed trace → schedule (§2.4) --------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts a timed trace of marker functions into a schedule of
/// processor states, implementing the finite look-ahead parser of §2.4.
/// The processor states abstract over failed/successful reads and over
/// sockets; "the main challenge is accounting for the time spent on
/// failed reads", which is resolved by attributing every overhead to a
/// job:
///
///  - polling rounds with at least one successful read: each read chunk
///    (failed reads up to and including the next successful read, plus
///    any trailing failures after the round's last success) becomes
///    ReadOvh j of the chunk's successfully read job j;
///  - the final all-failed round of a polling phase becomes
///    PollingOvh j of the job dispatched right after it — or Idle when
///    the selection comes up empty;
///  - the failed selection and the idle cycle following it are Idle;
///  - Selection/Disp/Exec/Compl map 1-to-1 to SelectionOvh j /
///    DispatchOvh j / Executes j / CompletionOvh j.
///
/// This attribution keeps each discrete PollingOvh instance within
/// PB = |socks|·WcetFR (Def. 2.2) and each job's ReadOvh within
/// |socks|·WcetFR + WcetSR.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CONVERT_TRACE_TO_SCHEDULE_H
#define RPROSA_CONVERT_TRACE_TO_SCHEDULE_H

#include "core/schedule.h"
#include "core/job.h"
#include "support/check.h"
#include "trace/trace.h"

#include <optional>
#include <vector>

namespace rprosa {

/// Per-job bookkeeping extracted during conversion (the schedule itself
/// only carries job ids; checkers need task types and event times).
struct ConvertedJob {
  Job J;
  /// Timestamp of the successful M_ReadE (end of the read syscall).
  Time ReadAt = 0;
  /// Timestamp of M_Selection for the selection that picked this job.
  std::optional<Time> SelectedAt;
  /// Timestamp of M_Dispatch.
  std::optional<Time> DispatchedAt;
  /// Timestamp of M_Completion — the job's completion time (§2.3: "the
  /// completion time of a job corresponds to the end of the Exec basic
  /// action").
  std::optional<Time> CompletedAt;
};

/// The conversion output: the schedule plus the job table.
struct ConversionResult {
  Schedule Sched;
  std::vector<ConvertedJob> Jobs;

  /// Lookup by job id (nullptr if unknown).
  const ConvertedJob *findJob(JobId Id) const;
};

/// Runs the conversion. \p NumSockets fixes the round length of the
/// polling phase. Precondition: the trace is protocol-conformant with
/// sane timestamps (checkProtocol/checkTimestamps passed); malformed
/// input is handled defensively by mapping unattributable spans to Idle
/// and recording a diagnostic in \p Diags when non-null.
ConversionResult convertTraceToSchedule(const TimedTrace &TT,
                                        std::uint32_t NumSockets,
                                        CheckResult *Diags = nullptr);

} // namespace rprosa

#endif // RPROSA_CONVERT_TRACE_TO_SCHEDULE_H
