//===- support/check.h - Diagnostic accumulation for trace checkers -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CheckResult accumulates the outcome of a verification pass (protocol
/// acceptance, functional correctness, consistency, validity, ...).
///
/// The library is exception-free: every checker returns a CheckResult
/// instead of throwing, and the adequacy pipeline aggregates them. Each
/// failure carries a human-readable message so that a rejected trace can
/// be diagnosed (the executable analogue of a failed Rocq proof goal).
///
/// RPROSA_CHECK guards *API preconditions* whose violation is a caller
/// bug, not a property of the analyzed system: out-of-range ids,
/// out-of-order socket deliveries. Unlike assert it stays armed in
/// Release builds — a violated precondition aborts with a diagnostic
/// instead of silently reading out of bounds or corrupting state.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SUPPORT_CHECK_H
#define RPROSA_SUPPORT_CHECK_H

#include <cstddef>
#include <string>
#include <vector>

namespace rprosa {

namespace detail {
/// Prints "<file>:<line>: check failed: <cond> (<what>)" to stderr and
/// aborts. Out-of-line so the macro expands to a single branch.
[[noreturn]] void checkFailed(const char *Cond, const char *What,
                              const char *File, int Line);
} // namespace detail

/// A precondition check that is active in every build type. \p What
/// states the violated contract in caller terms.
#define RPROSA_CHECK(Cond, What)                                           \
  (static_cast<bool>(Cond)                                                 \
       ? static_cast<void>(0)                                              \
       : ::rprosa::detail::checkFailed(#Cond, What, __FILE__, __LINE__))

/// Outcome of one verification pass: a pass/fail flag plus diagnostics.
class CheckResult {
public:
  CheckResult() = default;

  /// Returns a passing result with no diagnostics.
  static CheckResult success() { return CheckResult(); }

  /// Returns a failing result carrying a single diagnostic.
  static CheckResult failure(std::string Message) {
    CheckResult R;
    R.addFailure(std::move(Message));
    return R;
  }

  /// Records a failed check. The message should state the violated
  /// property and where in the trace/schedule it was violated.
  void addFailure(std::string Message) {
    Failures.push_back(std::move(Message));
  }

  /// Merges the diagnostics of another result into this one.
  void merge(const CheckResult &Other) {
    Failures.insert(Failures.end(), Other.Failures.begin(),
                    Other.Failures.end());
    ChecksPerformed += Other.ChecksPerformed;
  }

  /// Bumps the count of elementary checks performed (used by the E9
  /// "checking effort" experiment).
  void noteCheck(std::size_t N = 1) { ChecksPerformed += N; }

  bool passed() const { return Failures.empty(); }
  explicit operator bool() const { return passed(); }

  const std::vector<std::string> &failures() const { return Failures; }
  std::size_t checksPerformed() const { return ChecksPerformed; }

  /// Renders all failure diagnostics, one per line (empty when passing).
  std::string describe() const;

private:
  std::vector<std::string> Failures;
  std::size_t ChecksPerformed = 0;
};

} // namespace rprosa

#endif // RPROSA_SUPPORT_CHECK_H
