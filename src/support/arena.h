//===- support/arena.h - Bump-pointer arena allocation --------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump-pointer arena. Allocation is a pointer increment into
/// the current chunk; chunks are never freed individually, so every
/// object allocated from the arena stays at a stable address until the
/// arena itself is destroyed. Objects are NOT destructed — callers may
/// only place trivially-destructible types here (the AST nodes in
/// caesium/ast.h are designed to be exactly that: children live in
/// arena-allocated arrays, not std::vectors).
///
/// This is the storage layer behind `AstArena` (DESIGN.md §14): parsing
/// a multi-MB generated `.rossl` spec performs O(chunks) calls to the
/// system allocator instead of O(nodes), and the dense packing keeps
/// tree walks (print, interpret, CFG lowering) on a handful of cache
/// lines per block instead of pointer-chasing refcounted heap nodes.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SUPPORT_ARENA_H
#define RPROSA_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace rprosa {

/// A chunked bump allocator. Not thread-safe; callers that share an
/// arena across threads must serialise allocation externally (see
/// caesium::staticProgramMutex()).
class BumpArena {
public:
  /// Default chunk size: large enough that even the Fig. 2 program plus
  /// its mutants fit in one chunk, small enough not to bloat short-lived
  /// arenas (tests allocate thousands of these). Chunks grow
  /// geometrically from this floor (doubling, capped at MaxChunkBytes),
  /// so a multi-hundred-MB AST performs O(log n) system allocations
  /// instead of O(bytes / chunk).
  static constexpr std::size_t DefaultChunkBytes = 1 << 16;
  /// Geometric growth cap: one chunk never exceeds this unless a single
  /// oversize allocation demands it.
  static constexpr std::size_t MaxChunkBytes = 1 << 23;

  explicit BumpArena(std::size_t ChunkBytes = DefaultChunkBytes)
      : ChunkBytes(ChunkBytes ? ChunkBytes : DefaultChunkBytes),
        NextChunkBytes(this->ChunkBytes) {}

  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;
  BumpArena(BumpArena &&) = default;
  BumpArena &operator=(BumpArena &&) = default;

  /// Raw aligned allocation. Align must be a power of two.
  void *allocate(std::size_t Size, std::size_t Align) {
    std::size_t Avail = static_cast<std::size_t>(End - Cur);
    std::size_t Pad = padding(Cur, Align);
    if (Size + Pad > Avail) {
      grow(Size + Align);
      Pad = padding(Cur, Align);
    }
    Cur += Pad;
    void *P = Cur;
    Cur += Size;
    Used += Size + Pad;
    return P;
  }

  /// Construct a T in the arena. T must be trivially destructible: the
  /// arena never runs destructors.
  template <typename T, typename... Args> T *create(Args &&...A) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destructed");
    return ::new (allocate(sizeof(T), alignof(T))) T{std::forward<Args>(A)...};
  }

  /// Allocate an uninitialised array of N Ts (N may be 0 → nullptr).
  template <typename T> T *allocateArray(std::size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destructed");
    if (N == 0)
      return nullptr;
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Drop every allocation but keep the reserved memory for reuse.
  /// Invalidates all pointers previously handed out. Multiple chunks
  /// coalesce into one of the total reserved size, so a steady-state
  /// caller (parse, reset, parse, ...) bumps through one warm chunk
  /// with no system allocator traffic at all.
  void reset() {
    if (Chunks.empty()) {
      Used = 0;
      return;
    }
    if (Chunks.size() > 1) {
      std::size_t Total = Reserved;
      Chunks.clear();
      Chunks.push_back(
          Chunk{std::unique_ptr<std::byte[]>(new std::byte[Total]), Total});
    }
    Cur = Chunks.back().Mem.get();
    End = Cur + Chunks.back().Cap;
    Used = 0;
  }

  /// Bytes handed out to callers (including alignment padding).
  std::size_t bytesUsed() const { return Used; }
  /// Bytes reserved from the system allocator.
  std::size_t bytesReserved() const { return Reserved; }
  /// Number of chunks requested from the system allocator.
  std::size_t numChunks() const { return Chunks.size(); }

private:
  struct Chunk {
    std::unique_ptr<std::byte[]> Mem;
    std::size_t Cap = 0;
  };

  static std::size_t padding(const std::byte *P, std::size_t Align) {
    auto Addr = reinterpret_cast<std::uintptr_t>(P);
    return static_cast<std::size_t>((-Addr) & (Align - 1));
  }

  void grow(std::size_t AtLeast) {
    // Oversize requests get a dedicated chunk; the bump pointer stays on
    // a normal-size chunk so small follow-up allocations don't strand
    // the tail of a huge one.
    std::size_t Cap = AtLeast > NextChunkBytes ? AtLeast : NextChunkBytes;
    if (NextChunkBytes < MaxChunkBytes && AtLeast <= NextChunkBytes)
      NextChunkBytes *= 2;
    // new[] without an initializer default-initializes: the chunk's
    // bytes stay uninitialized instead of being memset to zero only to
    // be overwritten by placement-new — on a multi-hundred-MB AST the
    // redundant zeroing is the single largest allocation cost.
    Chunks.push_back(Chunk{std::unique_ptr<std::byte[]>(new std::byte[Cap]), Cap});
    Reserved += Cap;
    Cur = Chunks.back().Mem.get();
    End = Cur + Cap;
  }

  std::vector<Chunk> Chunks;
  std::byte *Cur = nullptr;
  std::byte *End = nullptr;
  std::size_t Used = 0;
  std::size_t Reserved = 0;
  std::size_t ChunkBytes;
  std::size_t NextChunkBytes;
};

} // namespace rprosa

#endif // RPROSA_SUPPORT_ARENA_H
