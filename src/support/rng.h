//===- support/rng.h - Deterministic pseudo-random numbers ----------------===//
//
// Part of RefinedProsa-CPP, a reproduction of "RefinedProsa: Connecting
// Response-Time Analysis with C Verification for Interrupt-Free Schedulers"
// (PLDI 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) used by the simulation
/// substrate and the workload generators. Determinism across platforms
/// matters here: every experiment in EXPERIMENTS.md is keyed by a seed.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SUPPORT_RNG_H
#define RPROSA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace rprosa {

/// Deterministic 64-bit PRNG (SplitMix64, Steele et al. 2014).
///
/// Unlike std::mt19937 the output sequence is trivially portable and the
/// state is a single word, which makes forking independent streams cheap.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [Lo, Hi] (inclusive).
  std::uint64_t nextInRange(std::uint64_t Lo, std::uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    std::uint64_t Span = Hi - Lo + 1;
    if (Span == 0) // Hi - Lo spans the whole 64-bit range.
      return next();
    return Lo + next() % Span;
  }

  /// Returns true with probability Num/Den.
  bool nextBernoulli(std::uint64_t Num, std::uint64_t Den) {
    assert(Den > 0 && "zero denominator");
    return nextInRange(1, Den) <= Num;
  }

  /// Returns a fresh, independently seeded generator. Useful for giving
  /// each task or socket its own stream so that adding one stream does
  /// not perturb the others.
  SplitMix64 fork() { return SplitMix64(next()); }

private:
  std::uint64_t State;
};

} // namespace rprosa

#endif // RPROSA_SUPPORT_RNG_H
