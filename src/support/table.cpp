//===- support/table.cpp --------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/table.h"

#include <cassert>
#include <cstdio>

using namespace rprosa;

TableWriter::TableWriter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TableWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

std::string TableWriter::renderAscii() const {
  std::vector<std::size_t> Widths(Header.size(), 0);
  for (std::size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (std::size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (std::size_t I = 0; I < Row.size(); ++I) {
      Line += Row[I];
      if (I + 1 == Row.size())
        break;
      Line.append(Widths[I] - Row[I].size() + 2, ' ');
    }
    Line += '\n';
    return Line;
  };

  std::string Out = renderRow(Header);
  std::size_t Total = 0;
  for (std::size_t W : Widths)
    Total += W + 2;
  Out.append(Total > 2 ? Total - 2 : Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += renderRow(Row);
  return Out;
}

static void appendCsvCell(std::string &Out, const std::string &Cell) {
  bool NeedsQuote = Cell.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuote) {
    Out += Cell;
    return;
  }
  Out += '"';
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
}

std::string TableWriter::renderCsv() const {
  std::string Out;
  auto renderRow = [&](const std::vector<std::string> &Row) {
    for (std::size_t I = 0; I < Row.size(); ++I) {
      if (I != 0)
        Out += ',';
      appendCsvCell(Out, Row[I]);
    }
    Out += '\n';
  };
  renderRow(Header);
  for (const auto &Row : Rows)
    renderRow(Row);
  return Out;
}

std::string rprosa::formatWithCommas(std::uint64_t N) {
  std::string Digits = std::to_string(N);
  std::string Out;
  for (std::size_t I = 0; I < Digits.size(); ++I) {
    if (I != 0 && (Digits.size() - I) % 3 == 0)
      Out += ',';
    Out += Digits[I];
  }
  return Out;
}

std::string rprosa::formatTicksAsNs(std::uint64_t Ticks) {
  char Buf[64];
  if (Ticks < 1000ull) {
    std::snprintf(Buf, sizeof(Buf), "%lluns", (unsigned long long)Ticks);
  } else if (Ticks < 1000ull * 1000ull) {
    std::snprintf(Buf, sizeof(Buf), "%.2fus", Ticks / 1e3);
  } else if (Ticks < 1000ull * 1000ull * 1000ull) {
    std::snprintf(Buf, sizeof(Buf), "%.2fms", Ticks / 1e6);
  } else {
    std::snprintf(Buf, sizeof(Buf), "%.3fs", Ticks / 1e9);
  }
  return Buf;
}

std::string rprosa::formatRatio(std::uint64_t Num, std::uint64_t Den) {
  if (Den == 0)
    return "inf";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.2f", double(Num) / double(Den));
  return Buf;
}
