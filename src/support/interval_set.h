//===- support/interval_set.h - Disjoint-interval id sets -----------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IdIntervalSet stores a set of 64-bit ids as sorted disjoint closed
/// intervals. Membership and insertion behave exactly like std::set's,
/// but memory is O(fragments) instead of O(elements): the streaming
/// checkers (DESIGN.md §9) track ever-seen job/message ids, which the
/// simulator assigns monotonically, so the whole history collapses into
/// a handful of intervals no matter how long the run is.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SUPPORT_INTERVAL_SET_H
#define RPROSA_SUPPORT_INTERVAL_SET_H

#include <cstdint>
#include <map>

namespace rprosa {

/// A set of uint64 ids, run-length compressed into disjoint closed
/// intervals [Lo, Hi].
class IdIntervalSet {
public:
  /// Inserts \p V; returns true iff it was not already present (the
  /// std::set::insert(...).second contract).
  bool insert(std::uint64_t V) {
    // The candidate interval that could contain or touch V from below.
    auto It = Ivs.upper_bound(V);
    auto Prev = It == Ivs.begin() ? Ivs.end() : std::prev(It);
    if (Prev != Ivs.end() && Prev->second >= V)
      return false; // Already covered.

    bool TouchPrev =
        Prev != Ivs.end() && V != 0 && Prev->second == V - 1;
    bool TouchNext = It != Ivs.end() &&
                     V != UINT64_MAX && It->first == V + 1;
    if (TouchPrev && TouchNext) {
      Prev->second = It->second;
      Ivs.erase(It);
    } else if (TouchPrev) {
      Prev->second = V;
    } else if (TouchNext) {
      std::uint64_t Hi = It->second;
      Ivs.erase(It);
      Ivs.emplace(V, Hi);
    } else {
      Ivs.emplace(V, V);
    }
    ++Count;
    return true;
  }

  /// Membership (std::set::count, but 0/1 as bool).
  bool contains(std::uint64_t V) const {
    auto It = Ivs.upper_bound(V);
    if (It == Ivs.begin())
      return false;
    return std::prev(It)->second >= V;
  }

  /// Number of stored ids.
  std::uint64_t size() const { return Count; }
  /// Number of disjoint intervals — the actual memory footprint.
  std::size_t fragments() const { return Ivs.size(); }
  bool empty() const { return Ivs.empty(); }

private:
  std::map<std::uint64_t, std::uint64_t> Ivs; // Lo -> Hi, disjoint.
  std::uint64_t Count = 0;
};

} // namespace rprosa

#endif // RPROSA_SUPPORT_INTERVAL_SET_H
