//===- support/parallel.cpp -----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/parallel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>

using namespace rprosa;

unsigned rprosa::defaultParallelism() {
  if (const char *Env = std::getenv("RPROSA_THREADS")) {
    char *End = nullptr;
    unsigned long V = std::strtoul(Env, &End, 10);
    if (End && *End == '\0' && V > 0)
      return static_cast<unsigned>(V > 256 ? 256 : V);
  }
  unsigned H = std::thread::hardware_concurrency();
  return H == 0 ? 1 : H;
}

bool rprosa::envFlag(const char *Name) {
  const char *Env = std::getenv(Name);
  return Env && *Env && !(Env[0] == '0' && Env[1] == '\0');
}

unsigned rprosa::threadsFromArgs(int Argc, char **Argv, unsigned Default) {
  unsigned Serial = 0, Explicit = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--serial") == 0)
      Serial = 1;
    else if (std::strncmp(Argv[I], "--threads=", 10) == 0) {
      char *End = nullptr;
      unsigned long V = std::strtoul(Argv[I] + 10, &End, 10);
      if (End && *End == '\0' && V > 0)
        Explicit = static_cast<unsigned>(V > 256 ? 256 : V);
    }
  }
  // An explicit count beats --serial beats the default, independent of
  // argument order.
  if (Explicit)
    return Explicit;
  if (Serial)
    return 1;
  return Default;
}

namespace {

/// One parallel-for batch. Heap-allocated and shared with the workers,
/// so a worker that wakes up late only ever touches a batch object that
/// is still alive (it then finds all indices claimed and goes back to
/// sleep) — new batches can never be corrupted by stragglers.
struct Batch {
  std::function<void(std::size_t)> Body;
  std::size_t N = 0;
  std::atomic<std::size_t> Next{0};
  std::atomic<std::size_t> Remaining{0};
};

} // namespace

ThreadPool::ThreadPool(unsigned Threads)
    : NumThreads(Threads == 0 ? defaultParallelism() : Threads) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  BatchReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::startWorkers() {
  if (!Workers.empty())
    return;
  Workers.reserve(NumThreads - 1);
  for (unsigned I = 0; I + 1 < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

void ThreadPool::parallelFor(
    std::size_t N, const std::function<void(std::size_t)> &Body) {
  if (N == 0)
    return;
  if (NumThreads <= 1 || N == 1) {
    // The serial escape hatch: an inline loop, no threads at all.
    for (std::size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  auto B = std::make_shared<Batch>();
  B->Body = Body; // Copied: stragglers may outlive this call frame.
  B->N = N;
  B->Remaining.store(N, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> L(M);
    startWorkers();
    CurrentBatch = B;
    ++BatchId;
  }
  BatchReady.notify_all();

  // The calling thread is one of the pool's lanes.
  drainBatch(B.get());

  {
    std::unique_lock<std::mutex> L(M);
    BatchDone.wait(L, [&] {
      return B->Remaining.load(std::memory_order_acquire) == 0;
    });
    if (CurrentBatch == std::static_pointer_cast<void>(B))
      CurrentBatch.reset();
  }
}

void ThreadPool::drainBatch(void *BatchPtr) {
  Batch *B = static_cast<Batch *>(BatchPtr);
  while (true) {
    std::size_t I = B->Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= B->N)
      return;
    B->Body(I);
    if (B->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last index of the batch: wake the submitter.
      std::lock_guard<std::mutex> L(M);
      BatchDone.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t LastSeen = 0;
  while (true) {
    std::shared_ptr<void> Mine;
    {
      std::unique_lock<std::mutex> L(M);
      BatchReady.wait(L, [&] {
        return Stopping || (CurrentBatch && BatchId != LastSeen);
      });
      if (Stopping)
        return;
      Mine = CurrentBatch;
      LastSeen = BatchId;
    }
    drainBatch(Mine.get());
  }
}
