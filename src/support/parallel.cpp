//===- support/parallel.cpp -----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

using namespace rprosa;

namespace {

/// Strict parse of a configured count: decimal digits only, value in
/// [Min, Max]. Anything else — garbage, garbage-prefixed zero, silent
/// out-of-range — is a fatal configuration error: these values come
/// from explicit user/CI pins, and "you asked for X, I quietly did Y"
/// is how pinned runs stop meaning anything.
std::uint64_t parseCount(const char *Text, const char *What,
                         std::uint64_t Min, std::uint64_t Max) {
  bool Valid = Text && *Text;
  std::uint64_t V = 0;
  for (const char *P = Text; Valid && *P; ++P) {
    if (*P < '0' || *P > '9' || V > Max) {
      Valid = false;
      break;
    }
    V = V * 10 + static_cast<std::uint64_t>(*P - '0');
  }
  if (!Valid || V < Min || V > Max) {
    std::fprintf(stderr,
                 "rprosa: invalid %s '%s': expected an integer in "
                 "[%llu, %llu]\n",
                 What, Text ? Text : "",
                 static_cast<unsigned long long>(Min),
                 static_cast<unsigned long long>(Max));
    std::abort();
  }
  return V;
}

} // namespace

unsigned rprosa::defaultParallelism() {
  // An empty value counts as unset (`RPROSA_THREADS= ./bench` is the
  // conventional way to clear a pin for one command).
  const char *Env = std::getenv("RPROSA_THREADS");
  if (Env && *Env)
    return static_cast<unsigned>(
        parseCount(Env, "RPROSA_THREADS", 1, MaxConfiguredThreads));
  unsigned H = std::thread::hardware_concurrency();
  return H == 0 ? 1 : H;
}

bool rprosa::envFlag(const char *Name) {
  const char *Env = std::getenv(Name);
  return Env && *Env && !(Env[0] == '0' && Env[1] == '\0');
}

unsigned rprosa::threadsFromArgs(int Argc, char **Argv, unsigned Default) {
  unsigned Serial = 0, Explicit = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--serial") == 0)
      Serial = 1;
    else if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      Explicit = static_cast<unsigned>(parseCount(
          Argv[I] + 10, "--threads", 1, MaxConfiguredThreads));
  }
  // An explicit count beats --serial beats the default, independent of
  // argument order.
  if (Explicit)
    return Explicit;
  if (Serial)
    return 1;
  return Default;
}

std::size_t rprosa::chunkFromArgs(int Argc, char **Argv,
                                  std::size_t Default) {
  std::size_t Chunk = Default;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--chunk=", 8) == 0)
      Chunk = static_cast<std::size_t>(
          parseCount(Argv[I] + 8, "--chunk", 1, 1ull << 32));
  return Chunk;
}

namespace {

/// One parallel-for batch. Heap-allocated and shared with the workers,
/// so a worker that wakes up late only ever touches a batch object that
/// is still alive (it then finds all indices claimed and goes back to
/// sleep) — new batches can never be corrupted by stragglers.
struct Batch {
  std::function<void(std::size_t)> Body;
  std::size_t N = 0;
  /// Indices are claimed Chunk at a time: one fetch_add hands a lane
  /// the contiguous range [v, min(v + Chunk, N)). Chunk boundaries are
  /// multiples of Chunk regardless of which lane claims them.
  std::size_t Chunk = 1;
  std::atomic<std::size_t> Next{0};
  std::atomic<std::size_t> Remaining{0};
};

} // namespace

ThreadPool::ThreadPool(unsigned Threads)
    : NumThreads(Threads == 0 ? defaultParallelism() : Threads) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  BatchReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::startWorkers() {
  if (!Workers.empty())
    return;
  Workers.reserve(NumThreads - 1);
  for (unsigned I = 0; I + 1 < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

void ThreadPool::parallelFor(
    std::size_t N, const std::function<void(std::size_t)> &Body) {
  parallelForChunked(N, 1, Body);
}

void ThreadPool::parallelForChunked(
    std::size_t N, std::size_t ChunkSize,
    const std::function<void(std::size_t)> &Body) {
  if (N == 0)
    return;
  if (ChunkSize == 0)
    ChunkSize = std::max<std::size_t>(1, N / (8 * NumThreads));
  if (NumThreads <= 1 || N <= ChunkSize) {
    // The serial escape hatch (also taken when one chunk covers the
    // whole batch): an inline loop, no threads at all.
    for (std::size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }

  auto B = std::make_shared<Batch>();
  B->Body = Body; // Copied: stragglers may outlive this call frame.
  B->N = N;
  B->Chunk = ChunkSize;
  B->Remaining.store(N, std::memory_order_relaxed);

  // Lanes beyond the chunk count would wake, find nothing to claim,
  // and go back to sleep: wake only as many workers as can actually
  // get a chunk (the calling thread takes one lane itself). A lost
  // wakeup is impossible — a woken worker drains until Next passes N,
  // and the caller drains the batch regardless.
  std::size_t Chunks = (N + ChunkSize - 1) / ChunkSize;
  std::size_t Wake = std::min<std::size_t>(NumThreads - 1, Chunks - 1);
  {
    std::lock_guard<std::mutex> L(M);
    startWorkers();
    CurrentBatch = B;
    ++BatchId;
  }
  if (Wake >= Workers.size()) {
    BatchReady.notify_all();
  } else {
    for (std::size_t I = 0; I < Wake; ++I)
      BatchReady.notify_one();
  }

  // The calling thread is one of the pool's lanes.
  drainBatch(B.get());

  {
    std::unique_lock<std::mutex> L(M);
    BatchDone.wait(L, [&] {
      return B->Remaining.load(std::memory_order_acquire) == 0;
    });
    if (CurrentBatch == std::static_pointer_cast<void>(B))
      CurrentBatch.reset();
  }
}

void ThreadPool::drainBatch(void *BatchPtr) {
  Batch *B = static_cast<Batch *>(BatchPtr);
  const std::size_t Chunk = B->Chunk;
  while (true) {
    std::size_t Lo = B->Next.fetch_add(Chunk, std::memory_order_relaxed);
    if (Lo >= B->N)
      return;
    std::size_t Hi = std::min(B->N, Lo + Chunk);
    for (std::size_t I = Lo; I < Hi; ++I)
      B->Body(I);
    if (B->Remaining.fetch_sub(Hi - Lo, std::memory_order_acq_rel) ==
        Hi - Lo) {
      // Last indices of the batch: wake the submitter.
      std::lock_guard<std::mutex> L(M);
      BatchDone.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t LastSeen = 0;
  while (true) {
    std::shared_ptr<void> Mine;
    {
      std::unique_lock<std::mutex> L(M);
      BatchReady.wait(L, [&] {
        return Stopping || (CurrentBatch && BatchId != LastSeen);
      });
      if (Stopping)
        return;
      Mine = CurrentBatch;
      LastSeen = BatchId;
    }
    drainBatch(Mine.get());
  }
}
