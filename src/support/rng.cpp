//===- support/rng.cpp ----------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/rng.h"

// SplitMix64 is header-only; this file exists so the library has a
// translation unit and the header gets compiled standalone at least once.
