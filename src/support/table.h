//===- support/table.h - Aligned ASCII tables and CSV output --------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TableWriter renders the rows the benchmark harnesses report, in the
/// same spirit as the tables/figures of the paper's evaluation: a header,
/// aligned columns, and optional CSV output for plotting.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SUPPORT_TABLE_H
#define RPROSA_SUPPORT_TABLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace rprosa {

/// Accumulates rows of string cells and renders them with aligned
/// columns (for terminals) or as CSV (for plotting scripts).
class TableWriter {
public:
  explicit TableWriter(std::vector<std::string> Header);

  /// Appends one row; the cell count must match the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders an aligned ASCII table with a separator under the header.
  std::string renderAscii() const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted).
  std::string renderCsv() const;

  std::size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats N with thousands separators ("12,345"), matching how the
/// paper reports LoC and tick counts.
std::string formatWithCommas(std::uint64_t N);

/// Formats a tick count as a human-readable duration assuming 1 tick =
/// 1 ns ("12.35ms"). Used only for presentation; all math is in ticks.
std::string formatTicksAsNs(std::uint64_t Ticks);

/// Formats the ratio Num/Den with two decimal places; "inf" if Den == 0.
std::string formatRatio(std::uint64_t Num, std::uint64_t Den);

} // namespace rprosa

#endif // RPROSA_SUPPORT_TABLE_H
