//===- support/parallel.h - Chunked thread pool for batch workloads -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate of the parallel sweep engine (rta/sweep.h): a small,
/// persistent thread pool with a dynamically chunked parallelFor. The
/// determinism contract every user relies on:
///
///  - the body receives each index in [0, N) exactly once;
///  - bodies write only to index-addressed slots (no shared mutable
///    state), so the *results* are independent of the thread schedule —
///    a pool of 1 and a pool of 16 produce identical output bytes;
///  - indices are handed out through a shared atomic counter (dynamic
///    chunking), so uneven per-index work self-balances without any
///    static partitioning bias.
///
/// The pool is exception-free like the rest of the library: bodies must
/// not throw. With Threads == 1 (the `--serial` escape hatch of the
/// benches) parallelFor degenerates to an inline loop on the calling
/// thread — no worker threads are created at all.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SUPPORT_PARALLEL_H
#define RPROSA_SUPPORT_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rprosa {

/// The parallelism the machine offers, overridable via the environment
/// variable RPROSA_THREADS (clamped to [1, 256]; useful both to pin CI
/// runs and to force-serialize a flaky reproduction).
unsigned defaultParallelism();

/// True when the environment variable \p Name is set to a non-empty
/// value other than "0" — the convention the bench harnesses use for
/// RPROSA_BENCH_SMOKE (tiny grids in CI smoke steps).
bool envFlag(const char *Name);

/// CLI helper for the bench/example harnesses: returns 1 (serial) when
/// the arguments contain "--serial", else \p Default; an explicit
/// "--threads=N" overrides both (clamped to [1, 256]). Unrelated
/// arguments are ignored, so harnesses with positional arguments can
/// pass their argv through unchanged.
unsigned threadsFromArgs(int Argc, char **Argv, unsigned Default = 0);

/// A fixed-size pool of worker threads executing chunked parallel-for
/// batches. Workers are started lazily on the first parallel batch and
/// joined in the destructor.
class ThreadPool {
public:
  /// \p Threads == 0 picks defaultParallelism(). The calling thread
  /// participates in every batch, so a pool of T threads spawns T - 1
  /// workers.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total parallelism (workers + the calling thread).
  unsigned threads() const { return NumThreads; }

  /// Runs Body(I) for every I in [0, N), distributing indices over the
  /// workers and the calling thread; returns when all N calls finished.
  /// Body must not throw and must only write to per-index state.
  void parallelFor(std::size_t N,
                   const std::function<void(std::size_t)> &Body);

private:
  void workerLoop();
  void startWorkers();
  /// Pulls indices from the given batch until it is drained.
  void drainBatch(void *BatchPtr);

  unsigned NumThreads;
  std::vector<std::thread> Workers;

  std::mutex M;
  std::condition_variable BatchReady;
  std::condition_variable BatchDone;
  /// The batch being distributed (type-erased; see parallel.cpp). Null
  /// when no batch is pending.
  std::shared_ptr<void> CurrentBatch;
  std::uint64_t BatchId = 0;
  bool Stopping = false;
};

} // namespace rprosa

#endif // RPROSA_SUPPORT_PARALLEL_H
