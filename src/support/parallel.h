//===- support/parallel.h - Chunked thread pool for batch workloads -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate of the parallel sweep engine (rta/sweep.h): a small,
/// persistent thread pool with a dynamically chunked parallelFor. The
/// determinism contract every user relies on:
///
///  - the body receives each index in [0, N) exactly once;
///  - bodies write only to index-addressed slots (no shared mutable
///    state), so the *results* are independent of the thread schedule —
///    a pool of 1 and a pool of 16 produce identical output bytes;
///  - indices are handed out through a shared atomic counter (dynamic
///    chunking), so uneven per-index work self-balances without any
///    static partitioning bias.
///
/// The pool is exception-free like the rest of the library: bodies must
/// not throw. With Threads == 1 (the `--serial` escape hatch of the
/// benches) parallelFor degenerates to an inline loop on the calling
/// thread — no worker threads are created at all.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SUPPORT_PARALLEL_H
#define RPROSA_SUPPORT_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rprosa {

/// The maximum thread count accepted from RPROSA_THREADS and
/// --threads=N. Far above any real machine; the point of the bound is
/// rejecting typos ("--threads=10000" for "--threads=1000" etc. is
/// almost certainly not a request for ten thousand OS threads).
inline constexpr unsigned MaxConfiguredThreads = 4096;

/// The parallelism the machine offers, overridable via the environment
/// variable RPROSA_THREADS. A set-but-invalid value (not an integer in
/// [1, MaxConfiguredThreads]) is a fatal configuration error with a
/// diagnostic naming the offending text — silently clamping or
/// ignoring it would make a CI pin lie about what it pinned.
unsigned defaultParallelism();

/// True when the environment variable \p Name is set to a non-empty
/// value other than "0" — the convention the bench harnesses use for
/// RPROSA_BENCH_SMOKE (tiny grids in CI smoke steps).
bool envFlag(const char *Name);

/// CLI helper for the bench/example harnesses: returns 1 (serial) when
/// the arguments contain "--serial", else \p Default; an explicit
/// "--threads=N" overrides both. An unparsable or out-of-range
/// --threads value is a fatal diagnostic (same contract as
/// RPROSA_THREADS). Unrelated arguments are ignored, so harnesses with
/// positional arguments can pass their argv through unchanged.
unsigned threadsFromArgs(int Argc, char **Argv, unsigned Default = 0);

/// CLI helper for the sweep harnesses: parses "--chunk=N" into a
/// parallel-for chunk size (fatal diagnostic if unparsable or 0);
/// returns \p Default when absent. 0 = derive from the batch
/// (SweepOptions::ChunkSize semantics).
std::size_t chunkFromArgs(int Argc, char **Argv, std::size_t Default = 0);

/// A fixed-size pool of worker threads executing chunked parallel-for
/// batches. Workers are started lazily on the first parallel batch and
/// joined in the destructor.
class ThreadPool {
public:
  /// \p Threads == 0 picks defaultParallelism(). The calling thread
  /// participates in every batch, so a pool of T threads spawns T - 1
  /// workers.
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total parallelism (workers + the calling thread).
  unsigned threads() const { return NumThreads; }

  /// Runs Body(I) for every I in [0, N), distributing indices over the
  /// workers and the calling thread; returns when all N calls finished.
  /// Body must not throw and must only write to per-index state.
  /// Equivalent to parallelForChunked(N, 1, Body): maximal balancing,
  /// one atomic claim per index — right for heavy irregular bodies.
  void parallelFor(std::size_t N,
                   const std::function<void(std::size_t)> &Body);

  /// parallelFor with contiguous chunks: lanes claim [k·C, (k+1)·C)
  /// ranges off the shared counter instead of single indices, so cheap
  /// bodies amortize the claim and the wakeups across C calls. Chunk
  /// boundaries are multiples of C independent of the thread count
  /// (each chunk is processed in ascending index order by one lane),
  /// and only as many workers are woken as there are chunks. \p
  /// ChunkSize == 0 picks max(1, N / (8 · threads())) — large enough
  /// to amortize, small enough that imbalance still self-corrects.
  void parallelForChunked(std::size_t N, std::size_t ChunkSize,
                          const std::function<void(std::size_t)> &Body);

private:
  void workerLoop();
  void startWorkers();
  /// Pulls indices from the given batch until it is drained.
  void drainBatch(void *BatchPtr);

  unsigned NumThreads;
  std::vector<std::thread> Workers;

  std::mutex M;
  std::condition_variable BatchReady;
  std::condition_variable BatchDone;
  /// The batch being distributed (type-erased; see parallel.cpp). Null
  /// when no batch is pending.
  std::shared_ptr<void> CurrentBatch;
  std::uint64_t BatchId = 0;
  bool Stopping = false;
};

} // namespace rprosa

#endif // RPROSA_SUPPORT_PARALLEL_H
