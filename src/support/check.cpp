//===- support/check.cpp --------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/check.h"

using namespace rprosa;

std::string CheckResult::describe() const {
  std::string Out;
  for (const std::string &F : Failures) {
    Out += F;
    Out += '\n';
  }
  return Out;
}
