//===- support/check.cpp --------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/check.h"

#include <cstdio>
#include <cstdlib>

using namespace rprosa;

void rprosa::detail::checkFailed(const char *Cond, const char *What,
                                 const char *File, int Line) {
  std::fprintf(stderr, "%s:%d: check failed: %s (%s)\n", File, Line, Cond,
               What);
  std::fflush(stderr);
  std::abort();
}

std::string CheckResult::describe() const {
  std::string Out;
  for (const std::string &F : Failures) {
    Out += F;
    Out += '\n';
  }
  return Out;
}
