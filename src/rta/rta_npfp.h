//===- rta/rta_npfp.h - The NPFP response-time analysis (§4) --------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aRSA instantiation for Rössl: a busy-window response-time
/// analysis for fixed-priority non-preemptive scheduling with
///
///  - arbitrary arrival curves (§4.1, Eq. 2),
///  - release jitter J_i = 1 + max(PB+SB+DB, IB) and release curves
///    β_i(Δ) = α_i(Δ + J_i) (§4.3),
///  - overheads modeled as supply restrictions through the SBF of §4.4.
///
/// Per task τ_i (all fixed points solved with leastFixedPoint; hitting
/// the cap yields Bounded = false):
///
///   blocking     B_i = max_{k ∈ lp(i)} C_k           (non-preemptive,
///                conservatively without the customary −1)
///   busy window  L_i = least L ≥ 1 with
///                SBF(L) ≥ B_i + Σ_{k ∈ hep(i) ∪ {i}} β_k(L)·C_k
///   offsets      A_q = least offset admitting the q-th release
///                (q = 1, 2, ... while A_q < L_i)
///   start bound  S_q = least t ≥ A_q with
///                SBF(t) ≥ B_i + (q−1)·C_i + Σ_{k ∈ hep(i)} β_k(t+1)·C_k
///   finish bound F_q = least t with
///                SBF(t) ≥ B_i + (q−1)·C_i + Σ_{k ∈ hep(i)} β_k(S_q+1)·C_k
///                         + C_i
///   R_i (release-relative) = max_q (F_q − A_q)
///
/// The reported bound w.r.t. the *arrival* sequence is R_i + J_i
/// (Thm. 4.2). Equal-priority other tasks are counted as interference
/// for the start bound (FIFO tie-breaking makes this conservative).
///
/// The same solver with the ideal supply, zero jitter and the raw α
/// curves yields (a) the bound for a hypothetical zero-overhead
/// scheduler and (b) the *unsound* overhead-oblivious analysis of
/// experiment E6 — selected via RtaConfig::AccountOverheads.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_RTA_NPFP_H
#define RPROSA_RTA_RTA_NPFP_H

#include "rta/bounds.h"
#include "rta/jitter.h"
#include "rta/sbf.h"
#include "rta/warm_start.h"

#include "core/task.h"

#include <vector>

namespace rprosa {

/// Knobs of the analysis.
///
/// The fields up to BlockingMinusOne are *semantic*: they change what
/// is computed. Warm, WarmIntraPoint and Telemetry are acceleration /
/// observability hooks that never change any result (warm_start.h's
/// soundness argument; asserted byte-for-byte by warm_start_test) —
/// sweep.cpp's canSeed compares only the semantic fields.
struct RtaConfig {
  /// Cap on every fixed-point search; beyond it a task is unbounded.
  Time FixedPointCap = 100 * TickSec;
  /// Cap on the number of release offsets examined per task.
  std::uint64_t MaxOffsets = 1 << 20;
  /// false = ideal supply, zero jitter, raw arrival curves (the
  /// zero-overhead baseline / the overhead-oblivious naive analysis).
  bool AccountOverheads = true;
  /// ABLATION (E14): drop the +1 carry-in job per task from the
  /// blackout bound. Tighter, but forfeits the carry-in argument of
  /// the SBF soundness derivation (sbf.h).
  bool AblateCarryIn = false;
  /// Use the classic B_i = max lp C_k − 1 blocking term instead of the
  /// conservative max lp C_k (a started job has at least one instant
  /// behind it in discrete time).
  bool BlockingMinusOne = false;

  /// Optional per-task fixpoint seeds from a demand-dominated solved
  /// point (not owned; must outlive the analysis call). Callers are
  /// responsible for the domination precondition — SweepRunner's
  /// canSeed is the one place that establishes it.
  const WarmStart *Warm = nullptr;
  /// Monotone seeding *within* one analysis run: S_q seeded from
  /// S_{q−1} (Prior and A_q grow with q, so lfp_{q−1} ≤ lfp_q), and
  /// the supply inverse seeded from its memo's nearest lower entry.
  /// Disabled only to measure the cold baseline (bench/hotpath).
  bool WarmIntraPoint = true;
  /// Optional iteration-count sink (not owned; thread-safe).
  FixpointTelemetry *Telemetry = nullptr;
};

/// The per-task outcome.
struct TaskRta {
  TaskId Task = InvalidTaskId;
  bool Bounded = false;
  /// R_i: the bound w.r.t. the release sequence.
  Duration ReleaseRelativeBound = 0;
  /// J_i (0 for the no-overhead variants).
  Duration Jitter = 0;
  /// R_i + J_i: the bound w.r.t. the arrival sequence (Thm. 5.1).
  Duration ResponseBound = 0;
  /// The busy-window length L_i the analysis explored.
  Duration BusyWindow = 0;
  /// The non-preemptive blocking term B_i.
  Duration Blocking = 0;
};

/// The analysis outcome for a whole task set.
struct RtaResult {
  std::vector<TaskRta> PerTask;
  OverheadBounds Bounds;
  /// Provenance of the WCET inputs the run used.
  TimingSource Source = TimingSource::HandSupplied;

  bool allBounded() const;
  const TaskRta &forTask(TaskId Id) const;
};

/// True when the analysis proves every task schedulable w.r.t. its
/// relative deadline: all tasks Bounded, and ResponseBound <= Deadline
/// for every task that specifies one (Deadline == 0 only needs
/// Bounded). This is the sufficient-side verdict the exact test is
/// cross-checked against: RTA-schedulable ⇒ SAG-schedulable is the
/// soundness gate of sag/explore.h.
bool meetsDeadlines(const RtaResult &R, const TaskSet &Tasks);

/// Runs the analysis on \p Tasks for a deployment with \p NumSockets
/// input sockets and the given basic-action WCETs.
RtaResult analyzeNpfp(const TaskSet &Tasks, const BasicActionWcets &W,
                      std::uint32_t NumSockets, const RtaConfig &Cfg = {});

/// The same analysis with provenance-tagged timing inputs: the
/// basic-action WCETs come from \p In, and each task's callback WCET is
/// overridden by In.callbackWcet (statically derived bounds flow in
/// here; with TimingInputs::handSupplied this is identical to the
/// overload above).
RtaResult analyzeNpfp(const TaskSet &Tasks, const TimingInputs &In,
                      std::uint32_t NumSockets, const RtaConfig &Cfg = {});

/// Extracts warm-start seeds from a solved result: BusyWindow per
/// bounded task (unbounded tasks seed cold). Sound to pass as
/// RtaConfig::Warm only for a point whose demand dominates the seed's
/// (see warm_start.h).
WarmStart warmStartFrom(const RtaResult &R);

} // namespace rprosa

#endif // RPROSA_RTA_RTA_NPFP_H
