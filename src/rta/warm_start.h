//===- rta/warm_start.h - Seeded fixpoints and iteration telemetry --------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every bound the analyses compute is a *least* fixed point of a
/// monotone map F, reached by Kleene iteration from below. That makes
/// seeding sound under one condition:
///
///   **Soundness.** If F is monotone and Seed ≤ lfp(F), then iterating
///   T ← F(T) from max(Start, Seed) converges to exactly lfp(F).
///   Proof sketch: every iterate stays ≤ lfp (T ≤ lfp ⟹ F(T) ≤
///   F(lfp) = lfp, by induction from the seed); after the first step
///   the sequence is monotone in one direction and bounded by the cap,
///   so it terminates at some fixpoint ≤ lfp — and the least fixpoint
///   is the only fixpoint ≤ lfp.
///
/// A seed *above* the least fixpoint is unsound — iteration can land on
/// a larger fixpoint — so callers may only seed from solutions of
/// *demand-dominated* problems: same fixpoint equations with pointwise
/// smaller-or-equal demand (smaller WCETs, fewer sockets), whose least
/// fixpoint is ≤ ours by monotonicity of the equations in those
/// parameters. SweepRunner enforces this via canSeed (sweep.h);
/// warm_start_test asserts seeded == cold byte-for-byte.
///
/// leastFixedPointSeeded differs from arsa.h's leastFixedPoint in one
/// more way: a seeded iterate may *descend* (F(Seed) < Seed when the
/// seed overshoots intermediate iterates while staying ≤ lfp — it
/// cannot, for a sound seed, but the dual direction arises transiently
/// when Seed lies between iterates), so descent continues the loop
/// instead of being treated as convergence.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_WARM_START_H
#define RPROSA_RTA_WARM_START_H

#include "core/time.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace rprosa {

/// Aggregated fixpoint counters: a plain copyable snapshot (rendered
/// into the sweep telemetry JSON and compared by the benches).
struct FixpointCounts {
  std::uint64_t Fixpoints = 0;   ///< leastFixedPointSeeded calls.
  std::uint64_t Iterations = 0;  ///< F applications across them.
  std::uint64_t SupplyIterations = 0; ///< Blackout-fixpoint F applications.
  std::uint64_t Seeded = 0;      ///< Calls that started from a warm seed.

  FixpointCounts &operator+=(const FixpointCounts &O) {
    Fixpoints += O.Fixpoints;
    Iterations += O.Iterations;
    SupplyIterations += O.SupplyIterations;
    Seeded += O.Seeded;
    return *this;
  }
};

/// A thread-safe telemetry sink the analyses report into (relaxed
/// atomics: counts are exact, ordering is irrelevant). One sink is
/// shared across all points of a sweep.
class FixpointTelemetry {
public:
  void noteFixpoint(std::uint64_t Iters, bool Warm) {
    Fixpoints.fetch_add(1, std::memory_order_relaxed);
    Iterations.fetch_add(Iters, std::memory_order_relaxed);
    if (Warm)
      Seeded.fetch_add(1, std::memory_order_relaxed);
  }

  void noteSupplyIterations(std::uint64_t Iters) {
    SupplyIterations.fetch_add(Iters, std::memory_order_relaxed);
  }

  FixpointCounts snapshot() const {
    FixpointCounts C;
    C.Fixpoints = Fixpoints.load(std::memory_order_relaxed);
    C.Iterations = Iterations.load(std::memory_order_relaxed);
    C.SupplyIterations = SupplyIterations.load(std::memory_order_relaxed);
    C.Seeded = Seeded.load(std::memory_order_relaxed);
    return C;
  }

  void reset() {
    Fixpoints.store(0, std::memory_order_relaxed);
    Iterations.store(0, std::memory_order_relaxed);
    SupplyIterations.store(0, std::memory_order_relaxed);
    Seeded.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> Fixpoints{0};
  std::atomic<std::uint64_t> Iterations{0};
  std::atomic<std::uint64_t> SupplyIterations{0};
  std::atomic<std::uint64_t> Seeded{0};
};

/// Per-task fixpoint seeds extracted from an already-solved
/// demand-dominated analysis. Index = task id; 0 = no seed (cold).
/// Only *bounded* solutions contribute seeds — an unbounded neighbor
/// proves nothing about our least fixpoint.
struct WarmStart {
  std::vector<Duration> BusyWindow;

  Duration busyWindowSeed(std::size_t TaskIdx) const {
    return TaskIdx < BusyWindow.size() ? BusyWindow[TaskIdx] : 0;
  }

  bool empty() const { return BusyWindow.empty(); }
};

/// arsa.h's leastFixedPoint with a warm seed and iteration telemetry.
/// Iterates T ← F(T) from max(Start, Seed); \p Seed MUST be ≤ the least
/// fixed point above Start (0 = cold start, identical to
/// leastFixedPoint). Returns nullopt past \p Cap. \p IterationsOut (if
/// non-null) receives the number of F applications.
std::optional<Time>
leastFixedPointSeeded(const std::function<Time(Time)> &F, Time Start,
                      Time Seed, Time Cap,
                      std::uint64_t *IterationsOut = nullptr);

} // namespace rprosa

#endif // RPROSA_RTA_WARM_START_H
