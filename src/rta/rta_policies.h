//===- rta/rta_policies.h - RTAs for the EDF and FIFO extensions ----------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Response-time analyses for the non-preemptive EDF and FIFO variants
/// of the scheduler, built on the same restricted-supply foundation as
/// the NPFP analysis (release jitter Def. 4.3, release curves §4.3, SBF
/// §4.4). These mirror the policies the related work verifies (ProKOS:
/// FP and EDF; Prosa: FIFO).
///
/// **NP-FIFO.** Precedence is read order. A job read before ours
/// arrived at most J after our arrival (it was read no later than us,
/// and our read lags our arrival by at most J), so the work that must
/// finish before our job completes is bounded by all releases within
/// A + J + 1 of the busy-window start plus one in-flight job:
///
///   F(A) = min{ t : SBF(t) ≥ B + Σ_k β_k(A + J + 1)·C_k },
///   R_i = max_A (F(A) − A),  reported bound = R_i + J.
///
/// **NP-EDF.** A job's key is its read time plus D_i. A job of task k
/// can precede ours only if it arrives within A + J + D_i − D_k of the
/// busy-window start (same read-lag argument applied to both keys):
///
///   F(A) = min{ t : SBF(t) ≥ B + Σ_k β_k(max(0, A+1+J+D_i−D_k))·C_k }.
///
/// Both use B = max_{k≠i} C_k as the non-preemptive blocking term (any
/// other task's job may have just started). Both are deliberately
/// conservative where the read-time/arrival-time gap is involved; the
/// adequacy sweeps validate their soundness empirically.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_RTA_POLICIES_H
#define RPROSA_RTA_RTA_POLICIES_H

#include "rta/rta_npfp.h"

#include "core/policy.h"

namespace rprosa {

/// NP-FIFO response-time bounds.
RtaResult analyzeFifo(const TaskSet &Tasks, const BasicActionWcets &W,
                      std::uint32_t NumSockets, const RtaConfig &Cfg = {});

/// NP-EDF response-time bounds (tasks need relative deadlines).
RtaResult analyzeEdf(const TaskSet &Tasks, const BasicActionWcets &W,
                     std::uint32_t NumSockets, const RtaConfig &Cfg = {});

/// Dispatches to the policy's analysis.
RtaResult analyzePolicy(const TaskSet &Tasks, const BasicActionWcets &W,
                        std::uint32_t NumSockets, SchedPolicy Policy,
                        const RtaConfig &Cfg = {});

} // namespace rprosa

#endif // RPROSA_RTA_RTA_POLICIES_H
