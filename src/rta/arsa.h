//===- rta/arsa.h - Abstract restricted-supply analysis machinery ---------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic skeleton of aRSA (§4.2): response-time analyses for
/// processors subject to supply restrictions are phrased as least fixed
/// points of monotone demand/supply equations. This header provides the
/// shared machinery:
///
///  - leastFixedPoint: Kleene iteration of a monotone map on times,
///    with a divergence cap (an analysis that hits the cap reports the
///    task as unbounded rather than looping forever);
///  - SupplyModel: the interface the concrete analysis needs from a
///    supply description — both the restricted supply of Rössl (see
///    sbf.h) and the ideal unit-supply processor implement it.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_ARSA_H
#define RPROSA_RTA_ARSA_H

#include "core/time.h"

#include <functional>
#include <optional>

namespace rprosa {

/// The one divergence predicate of every fixed-point search. The cap is
/// *inclusive*: a bound of exactly Cap is still accepted, only bounds
/// strictly beyond it (or saturated to TimeInfinity) mean "unbounded".
/// Every cap comparison in the analyses must go through this helper so
/// the boundary cannot drift between call sites — and it must be
/// applied to the *final* candidate bound, after any completion floors
/// (max with release + WCET) have been folded in.
inline bool exceedsCap(Time T, Time Cap) {
  return T == TimeInfinity || T > Cap;
}

/// Iterates T ← F(T) from \p Start until a fixed point is reached;
/// returns nullopt if the iterate exceeds \p Cap (divergence) or F ever
/// returns TimeInfinity. F must be monotone and satisfy F(T) >= Start
/// for the result to be the least fixed point above Start.
std::optional<Time> leastFixedPoint(const std::function<Time(Time)> &F,
                                    Time Start, Time Cap);

/// What an RTA needs to know about the processor's supply.
class SupplyModel {
public:
  virtual ~SupplyModel() = default;

  /// A lower bound on the supply in any (busy-window-anchored) interval
  /// of length \p Delta — the SBF of §4.4.
  virtual Duration supplyBound(Duration Delta) const = 0;

  /// The least interval length t with supplyBound(t) >= \p Work
  /// (TimeInfinity if none exists below the model's own cap).
  virtual Time timeToSupply(Duration Work) const = 0;
};

/// The ideal uniprocessor: one unit of supply per instant. Used by the
/// no-overhead baseline analyses (and by the unsound overhead-oblivious
/// analysis of experiment E6).
class IdealSupply : public SupplyModel {
public:
  Duration supplyBound(Duration Delta) const override { return Delta; }
  Time timeToSupply(Duration Work) const override { return Work; }
};

} // namespace rprosa

#endif // RPROSA_RTA_ARSA_H
