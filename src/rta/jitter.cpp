//===- rta/jitter.cpp -----------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/jitter.h"

#include <algorithm>
#include <memory>

using namespace rprosa;

Duration rprosa::maxReleaseJitter(const OverheadBounds &B) {
  Duration Compliance = satAdd(satAdd(B.PB, B.SB), B.DB);
  return satAdd(1, std::max(Compliance, B.IB));
}

ArrivalCurvePtr rprosa::makeReleaseCurve(ArrivalCurvePtr Alpha,
                                         Duration Jitter) {
  return std::make_shared<ShiftedCurve>(std::move(Alpha), Jitter);
}

std::vector<MeasuredJitter>
rprosa::measureReleaseJitter(const ConversionResult &CR,
                             const ArrivalSequence &Arr) {
  std::vector<MeasuredJitter> Out;
  const Schedule &S = CR.Sched;
  const auto &Segs = S.segments();

  for (const Arrival &A : Arr.arrivals()) {
    MeasuredJitter M;
    M.Msg = A.Msg.Id;
    // Find the segment containing the arrival instant.
    auto It = std::upper_bound(
        Segs.begin(), Segs.end(), A.At,
        [](Time V, const ScheduleSegment &Sg) { return V < Sg.Start; });
    if (It == Segs.begin()) {
      Out.push_back(M);
      continue;
    }
    --It;
    if (A.At >= It->end()) {
      // Arrival past the covered range: no jitter observable.
      Out.push_back(M);
      continue;
    }
    const ProcState &St = It->State;
    switch (St.Kind) {
    case ProcStateKind::Idle:
      // Work-conservation case: the release is pushed to the end of the
      // Idle state (Fig. 7b).
      M.Case = JitterCase::IdleResidue;
      M.Jitter = It->end() - A.At;
      break;
    case ProcStateKind::PollingOvh:
    case ProcStateKind::SelectionOvh:
    case ProcStateKind::DispatchOvh: {
      // Priority-compliance case: the scheduler already finished
      // polling and is committed to job St.Job; the release is pushed
      // past the start of that job's execution (Fig. 7a).
      M.Case = JitterCase::Overlooked;
      std::optional<Time> ExecStart = S.startOfExecution(St.Job);
      if (ExecStart && *ExecStart > A.At)
        M.Jitter = *ExecStart - A.At;
      break;
    }
    case ProcStateKind::ReadOvh:
    case ProcStateKind::Executes:
    case ProcStateKind::CompletionOvh:
      // The job will be read by the next polling phase, which precedes
      // the next scheduling decision: no compliance violation to model.
      break;
    }
    for (const ConvertedJob &CJ : CR.Jobs)
      if (CJ.J.Msg == A.Msg.Id)
        M.Job = CJ.J.Id;
    Out.push_back(M);
  }
  return Out;
}
