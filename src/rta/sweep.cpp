//===- rta/sweep.cpp ------------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/sweep.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace rprosa;

//===----------------------------------------------------------------------===//
// MemoCurve
//===----------------------------------------------------------------------===//

MemoCurve::MemoCurve(ArrivalCurvePtr InnerCurve)
    : Inner(std::move(InnerCurve)) {
  RPROSA_CHECK(Inner != nullptr, "MemoCurve requires a curve to wrap");
}

std::uint64_t MemoCurve::eval(Duration Delta) const {
  Shard &S = Shards[std::hash<Duration>{}(Delta) % NumShards];
  {
    std::shared_lock<std::shared_mutex> L(S.M);
    auto It = S.Map.find(Delta);
    if (It != S.Map.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  // Evaluate outside any lock: the inner curve is pure, so a racing
  // duplicate evaluation computes the same value. A miss is counted
  // only by the evaluation whose emplace actually inserts the point:
  // misses() == distinct cached Δs, and hits() + misses() == eval()
  // calls, even when two lanes race on the same Δ (the race loser did
  // find the point cached by the time the cache settled, so it counts
  // as a hit). Pinned by sweep_test.
  std::uint64_t V = Inner->eval(Delta);
  bool Inserted = false;
  {
    std::unique_lock<std::shared_mutex> L(S.M);
    Inserted = S.Map.emplace(Delta, V).second;
  }
  (Inserted ? Misses : Hits).fetch_add(1, std::memory_order_relaxed);
  return V;
}

//===----------------------------------------------------------------------===//
// CurveCache
//===----------------------------------------------------------------------===//

ArrivalCurvePtr CurveCache::memoize(const ArrivalCurvePtr &Curve) {
  RPROSA_CHECK(Curve != nullptr, "cannot memoize a null curve");
  // Memoizing a memo would stack caches for no benefit.
  if (dynamic_cast<const MemoCurve *>(Curve.get()))
    return Curve;
  std::lock_guard<std::mutex> L(M);
  auto It = Map.find(Curve.get());
  if (It == Map.end())
    It = Map.emplace(Curve.get(), std::make_shared<MemoCurve>(Curve)).first;
  return It->second;
}

std::size_t CurveCache::size() const {
  std::lock_guard<std::mutex> L(M);
  return Map.size();
}

CurveCacheStats CurveCache::stats() const {
  CurveCacheStats S;
  std::lock_guard<std::mutex> L(M);
  S.Curves = Map.size();
  for (const auto &KV : Map) {
    S.Hits += KV.second->hits();
    S.Misses += KV.second->misses();
  }
  return S;
}

//===----------------------------------------------------------------------===//
// SweepRunner
//===----------------------------------------------------------------------===//

SweepRunner::SweepRunner(SweepOptions O) : Opts(O), Pool(O.Threads) {}

TaskSet SweepRunner::withMemoizedCurves(const TaskSet &Tasks) {
  // Ids are assigned densely in insertion order, so the rebuilt set has
  // identical ids, priorities and deadlines — only the curves are
  // swapped for their shared memoized views.
  TaskSet Out;
  for (const Task &T : Tasks.tasks())
    Out.addTask(T.Name, T.Wcet, T.Prio, Cache.memoize(T.Curve), T.Deadline);
  return Out;
}

bool SweepRunner::canSeed(const SweepPoint &From, const SweepPoint &To) {
  if (From.Policy != To.Policy)
    return false;
  // Semantic knobs must match exactly; the acceleration/observability
  // fields of RtaConfig (Warm, WarmIntraPoint, Telemetry) never change
  // results and are deliberately ignored.
  const RtaConfig &A = From.Cfg, &B = To.Cfg;
  if (A.FixedPointCap != B.FixedPointCap || A.MaxOffsets != B.MaxOffsets ||
      A.AccountOverheads != B.AccountOverheads ||
      A.AblateCarryIn != B.AblateCarryIn ||
      A.BlockingMinusOne != B.BlockingMinusOne)
    return false;
  // Identical task structure: curve object identity (not equivalence —
  // identity is what the sweeps actually share), priorities and
  // deadlines exactly (EDF demand is *anti*tone in the interferer's
  // deadline, so ≤ would be unsound there), WCETs fieldwise ≤.
  const std::vector<Task> &FT = From.Tasks.tasks();
  const std::vector<Task> &TT = To.Tasks.tasks();
  if (FT.size() != TT.size())
    return false;
  for (std::size_t K = 0; K < FT.size(); ++K)
    if (FT[K].Curve.get() != TT[K].Curve.get() ||
        FT[K].Prio != TT[K].Prio || FT[K].Deadline != TT[K].Deadline ||
        FT[K].Wcet > TT[K].Wcet)
      return false;
  // Supply parameters fieldwise ≤: overhead bounds, and through them
  // jitter and blackout, are monotone in every WCET field and in the
  // socket count — so From's least fixpoints are ≤ To's.
  if (From.Sbf.NumSockets > To.Sbf.NumSockets)
    return false;
  const BasicActionWcets &FW = From.Sbf.Wcets, &TW = To.Sbf.Wcets;
  return FW.FailedRead <= TW.FailedRead &&
         FW.SuccessfulRead <= TW.SuccessfulRead &&
         FW.Selection <= TW.Selection && FW.Dispatch <= TW.Dispatch &&
         FW.Completion <= TW.Completion && FW.Idling <= TW.Idling;
}

SweepTelemetry SweepRunner::telemetry() const {
  SweepTelemetry T;
  T.Cache = Cache.stats();
  T.Fixpoints = Tel.snapshot();
  T.Threads = Pool.threads();
  T.ChunkSize = LastChunk.load(std::memory_order_relaxed);
  return T;
}

std::vector<RtaResult> SweepRunner::run(const std::vector<SweepPoint> &Points) {
  const std::size_t N = Points.size();
  // Memoization rewrite happens up front, on the submitting thread:
  // CurveCache::memoize is thread-safe, but doing it here keeps the
  // parallel region free of cache-structure churn.
  std::vector<const SweepPoint *> Work(N);
  std::vector<TaskSet> Memoized;
  if (Opts.MemoizeCurves)
    Memoized.reserve(N);
  for (std::size_t I = 0; I < N; ++I) {
    Work[I] = &Points[I];
    if (Opts.MemoizeCurves)
      Memoized.push_back(withMemoizedCurves(Points[I].Tasks));
  }

  // The chunk size must be fixed here (not inside the pool): the
  // warm-start plan below is only sound within the chunk boundaries the
  // pool will actually use. Mirrors parallelForChunked's derivation.
  std::size_t C = Opts.ChunkSize;
  if (C == 0)
    C = std::max<std::size_t>(1, N / (8 * Pool.threads()));
  LastChunk.store(C, std::memory_order_relaxed);

  // Warm-start plan: Seed[I] is the nearest earlier point in I's chunk
  // whose demand is dominated by I's, or npos. A chunk is processed in
  // ascending index order by a single lane, so Results[Seed[I]] is
  // always complete before point I starts; seeding never crosses a
  // chunk boundary because other chunks may still be in flight. The
  // plan is a pure function of (Points, C) — independent of the thread
  // count — and, since warm == cold by the least-fixpoint argument,
  // results are byte-identical with seeding on or off.
  constexpr std::size_t Npos = static_cast<std::size_t>(-1);
  constexpr std::size_t SeedWindow = 4; // How far back to scan.
  std::vector<std::size_t> Seed;
  if (Opts.WarmStarts) {
    Seed.assign(N, Npos);
    for (std::size_t I = 0; I < N; ++I) {
      std::size_t ChunkStart = (I / C) * C;
      std::size_t Lo = std::max(ChunkStart,
                                I >= SeedWindow ? I - SeedWindow : 0);
      for (std::size_t J = I; J > Lo;) {
        --J;
        if (canSeed(Points[J], Points[I])) {
          Seed[I] = J;
          break;
        }
      }
    }
  }

  // Each body invocation writes only its own index-addressed slot; the
  // result vector is sized up front so no reallocation races exist.
  // This is the whole determinism argument: Results[i] depends only on
  // Points[i] (plus a seed that provably cannot change the value),
  // never on scheduling.
  std::vector<RtaResult> Results(N);
  Pool.parallelForChunked(N, C, [&](std::size_t I) {
    const SweepPoint &P = *Work[I];
    const TaskSet &TS = Opts.MemoizeCurves ? Memoized[I] : P.Tasks;
    RtaConfig Cfg = P.Cfg;
    Cfg.Telemetry = &Tel;
    WarmStart W;
    if (!Seed.empty() && Seed[I] != Npos) {
      W = warmStartFrom(Results[Seed[I]]);
      if (!W.empty())
        Cfg.Warm = &W;
    }
    Results[I] =
        analyzePolicy(TS, P.Sbf.Wcets, P.Sbf.NumSockets, P.Policy, Cfg);
  });
  return Results;
}

std::vector<char>
SweepRunner::runSchedulable(const std::vector<SweepPoint> &Points) {
  std::vector<RtaResult> R = run(Points);
  std::vector<char> Out(R.size());
  for (std::size_t I = 0; I < R.size(); ++I)
    Out[I] = R[I].allBounded() ? 1 : 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// Canonical JSON rendering
//===----------------------------------------------------------------------===//

namespace {

void appendU64(std::string &Out, std::uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

} // namespace

std::string rprosa::sweepResultsJson(const std::vector<SweepPoint> &Points,
                                     const std::vector<RtaResult> &Results) {
  RPROSA_CHECK(Points.size() == Results.size(),
               "one result per sweep point expected");
  std::string Out = "[\n";
  for (std::size_t I = 0; I < Points.size(); ++I) {
    const SweepPoint &P = Points[I];
    const RtaResult &R = Results[I];
    Out += "  {\"point\": ";
    appendU64(Out, I);
    Out += ", \"policy\": \"" + toString(P.Policy) + "\"";
    Out += ", \"sockets\": ";
    appendU64(Out, P.Sbf.NumSockets);
    Out += ", \"schedulable\": ";
    Out += R.allBounded() ? "true" : "false";
    Out += ", \"tasks\": [";
    for (std::size_t K = 0; K < R.PerTask.size(); ++K) {
      const TaskRta &T = R.PerTask[K];
      if (K)
        Out += ", ";
      Out += "{\"task\": ";
      appendU64(Out, T.Task);
      Out += ", \"bounded\": ";
      Out += T.Bounded ? "true" : "false";
      Out += ", \"release_bound\": ";
      appendU64(Out, T.ReleaseRelativeBound);
      Out += ", \"jitter\": ";
      appendU64(Out, T.Jitter);
      Out += ", \"response_bound\": ";
      appendU64(Out, T.ResponseBound);
      Out += ", \"busy_window\": ";
      appendU64(Out, T.BusyWindow);
      Out += ", \"blocking\": ";
      appendU64(Out, T.Blocking);
      Out += "}";
    }
    Out += "]}";
    Out += (I + 1 < Points.size()) ? ",\n" : "\n";
  }
  Out += "]\n";
  return Out;
}

std::string rprosa::sweepResultsJson(const std::vector<SweepPoint> &Points,
                                     const std::vector<RtaResult> &Results,
                                     const SweepTelemetry &Tel) {
  // The "results" value embeds the plain rendering byte-for-byte (minus
  // its trailing newline), so the serial/parallel identity gates keep
  // holding over it even when telemetry legitimately differs.
  std::string Inner = sweepResultsJson(Points, Results);
  if (!Inner.empty() && Inner.back() == '\n')
    Inner.pop_back();
  std::string Out = "{\"results\": " + Inner + ",\n \"telemetry\": {";
  Out += "\"threads\": ";
  appendU64(Out, Tel.Threads);
  Out += ", \"chunk\": ";
  appendU64(Out, Tel.ChunkSize);
  Out += ", \"curves\": ";
  appendU64(Out, Tel.Cache.Curves);
  Out += ", \"curve_hits\": ";
  appendU64(Out, Tel.Cache.Hits);
  Out += ", \"curve_misses\": ";
  appendU64(Out, Tel.Cache.Misses);
  Out += ", \"fixpoints\": ";
  appendU64(Out, Tel.Fixpoints.Fixpoints);
  Out += ", \"iterations\": ";
  appendU64(Out, Tel.Fixpoints.Iterations);
  Out += ", \"supply_iterations\": ";
  appendU64(Out, Tel.Fixpoints.SupplyIterations);
  Out += ", \"warm_seeded\": ";
  appendU64(Out, Tel.Fixpoints.Seeded);
  Out += "}}\n";
  return Out;
}
