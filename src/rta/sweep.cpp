//===- rta/sweep.cpp ------------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/sweep.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace rprosa;

//===----------------------------------------------------------------------===//
// MemoCurve
//===----------------------------------------------------------------------===//

MemoCurve::MemoCurve(ArrivalCurvePtr InnerCurve)
    : Inner(std::move(InnerCurve)) {
  RPROSA_CHECK(Inner != nullptr, "MemoCurve requires a curve to wrap");
}

std::uint64_t MemoCurve::eval(Duration Delta) const {
  Shard &S = Shards[std::hash<Duration>{}(Delta) % NumShards];
  {
    std::shared_lock<std::shared_mutex> L(S.M);
    auto It = S.Map.find(Delta);
    if (It != S.Map.end())
      return It->second;
  }
  // Evaluate outside any lock: the inner curve is pure, so a racing
  // duplicate evaluation computes the same value.
  std::uint64_t V = Inner->eval(Delta);
  std::unique_lock<std::shared_mutex> L(S.M);
  S.Map.emplace(Delta, V);
  return V;
}

//===----------------------------------------------------------------------===//
// CurveCache
//===----------------------------------------------------------------------===//

ArrivalCurvePtr CurveCache::memoize(const ArrivalCurvePtr &Curve) {
  RPROSA_CHECK(Curve != nullptr, "cannot memoize a null curve");
  // Memoizing a memo would stack caches for no benefit.
  if (dynamic_cast<const MemoCurve *>(Curve.get()))
    return Curve;
  std::lock_guard<std::mutex> L(M);
  auto It = Map.find(Curve.get());
  if (It == Map.end())
    It = Map.emplace(Curve.get(), std::make_shared<MemoCurve>(Curve)).first;
  return It->second;
}

std::size_t CurveCache::size() const {
  std::lock_guard<std::mutex> L(M);
  return Map.size();
}

//===----------------------------------------------------------------------===//
// SweepRunner
//===----------------------------------------------------------------------===//

SweepRunner::SweepRunner(SweepOptions O) : Opts(O), Pool(O.Threads) {}

TaskSet SweepRunner::withMemoizedCurves(const TaskSet &Tasks) {
  // Ids are assigned densely in insertion order, so the rebuilt set has
  // identical ids, priorities and deadlines — only the curves are
  // swapped for their shared memoized views.
  TaskSet Out;
  for (const Task &T : Tasks.tasks())
    Out.addTask(T.Name, T.Wcet, T.Prio, Cache.memoize(T.Curve), T.Deadline);
  return Out;
}

std::vector<RtaResult> SweepRunner::run(const std::vector<SweepPoint> &Points) {
  // Memoization rewrite happens up front, on the submitting thread:
  // CurveCache::memoize is thread-safe, but doing it here keeps the
  // parallel region free of cache-structure churn.
  std::vector<const SweepPoint *> Work(Points.size());
  std::vector<TaskSet> Memoized;
  if (Opts.MemoizeCurves)
    Memoized.reserve(Points.size());
  for (std::size_t I = 0; I < Points.size(); ++I) {
    Work[I] = &Points[I];
    if (Opts.MemoizeCurves)
      Memoized.push_back(withMemoizedCurves(Points[I].Tasks));
  }

  // Each body invocation writes only its own index-addressed slot; the
  // result vector is sized up front so no reallocation races exist.
  // This is the whole determinism argument: Results[i] depends only on
  // Points[i], never on scheduling.
  std::vector<RtaResult> Results(Points.size());
  Pool.parallelFor(Points.size(), [&](std::size_t I) {
    const SweepPoint &P = *Work[I];
    const TaskSet &TS = Opts.MemoizeCurves ? Memoized[I] : P.Tasks;
    Results[I] =
        analyzePolicy(TS, P.Sbf.Wcets, P.Sbf.NumSockets, P.Policy, P.Cfg);
  });
  return Results;
}

std::vector<char>
SweepRunner::runSchedulable(const std::vector<SweepPoint> &Points) {
  std::vector<RtaResult> R = run(Points);
  std::vector<char> Out(R.size());
  for (std::size_t I = 0; I < R.size(); ++I)
    Out[I] = R[I].allBounded() ? 1 : 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// Canonical JSON rendering
//===----------------------------------------------------------------------===//

namespace {

void appendU64(std::string &Out, std::uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(V));
  Out += Buf;
}

} // namespace

std::string rprosa::sweepResultsJson(const std::vector<SweepPoint> &Points,
                                     const std::vector<RtaResult> &Results) {
  RPROSA_CHECK(Points.size() == Results.size(),
               "one result per sweep point expected");
  std::string Out = "[\n";
  for (std::size_t I = 0; I < Points.size(); ++I) {
    const SweepPoint &P = Points[I];
    const RtaResult &R = Results[I];
    Out += "  {\"point\": ";
    appendU64(Out, I);
    Out += ", \"policy\": \"" + toString(P.Policy) + "\"";
    Out += ", \"sockets\": ";
    appendU64(Out, P.Sbf.NumSockets);
    Out += ", \"schedulable\": ";
    Out += R.allBounded() ? "true" : "false";
    Out += ", \"tasks\": [";
    for (std::size_t K = 0; K < R.PerTask.size(); ++K) {
      const TaskRta &T = R.PerTask[K];
      if (K)
        Out += ", ";
      Out += "{\"task\": ";
      appendU64(Out, T.Task);
      Out += ", \"bounded\": ";
      Out += T.Bounded ? "true" : "false";
      Out += ", \"release_bound\": ";
      appendU64(Out, T.ReleaseRelativeBound);
      Out += ", \"jitter\": ";
      appendU64(Out, T.Jitter);
      Out += ", \"response_bound\": ";
      appendU64(Out, T.ResponseBound);
      Out += ", \"busy_window\": ";
      appendU64(Out, T.BusyWindow);
      Out += ", \"blocking\": ";
      appendU64(Out, T.Blocking);
      Out += "}";
    }
    Out += "]}";
    Out += (I + 1 < Points.size()) ? ",\n" : "\n";
  }
  Out += "]\n";
  return Out;
}
