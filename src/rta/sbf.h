//===- rta/sbf.h - The supply bound function of Rössl (§4.4) --------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4.4: overheads are modeled as blackouts; the analysis needs
///
///   BlackoutBound(Δ) = TRB(Δ) + NRB(Δ)
///   SBF(Δ) = max_{0 ≤ δ ≤ Δ} (δ − BlackoutBound(δ))   (clamped at 0)
///
/// where TRB bounds the ReadOvh blackout and NRB the PollingOvh/
/// SelectionOvh/DispatchOvh/CompletionOvh blackout in any interval of
/// length Δ anchored at a busy-window start. Both are obtained by
/// bounding the number of jobs whose overhead can fall into the window:
///
///   NJobs(Δ) = Σ_i (β_i(Δ) + 1)
///
/// — the releases within the window per the release curves, plus one
/// carry-in job per task. (Derivation: at a busy-window start nothing
/// is pending — Def. 3.2's idling property — so a job with overhead
/// inside the window was read inside it, hence arrived at most IB
/// before it; β_i(Δ) = α_i(Δ + J_i) with J_i ≥ IB + 1 covers those, and
/// the +1 absorbs the boundary and one in-flight lower-priority job.)
///
///   TRB(Δ) = NJobs(Δ) · RB        NRB(Δ) = NJobs(Δ) · (PB+SB+DB+CB)
///
/// SBF is monotone by construction (the max over δ) as aRSA requires.
/// The inverse timeToSupply(W) = min{t : SBF(t) ≥ W} is computed by the
/// classic request-bound fixed point t ← W + BlackoutBound(t).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_SBF_H
#define RPROSA_RTA_SBF_H

#include "rta/arsa.h"
#include "rta/bounds.h"
#include "rta/warm_start.h"

#include "core/arrival_curve.h"
#include "core/curve_table.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace rprosa {

/// The restricted-supply model of Rössl.
class RosslSupply : public SupplyModel {
public:
  /// \p ReleaseCurves are the jitter-shifted β_i, one per task. \p Cap
  /// bounds the fixed-point search (beyond it the analysis reports
  /// "unbounded"). \p CarryInPerTask controls the +1 carry-in job per
  /// task in NJobs; disabling it is an ABLATION ONLY — it tightens the
  /// bound but drops the busy-window carry-in argument the soundness
  /// derivation needs (see the E14 experiment).
  RosslSupply(std::vector<ArrivalCurvePtr> ReleaseCurves,
              const OverheadBounds &B, Time Cap,
              bool CarryInPerTask = true);

  /// Convenience: derives the overhead bounds from provenance-tagged
  /// timing inputs (OverheadBounds::compute over In.Wcets), so a
  /// statically derived WCET table can feed the supply model without
  /// the caller computing bounds by hand.
  RosslSupply(std::vector<ArrivalCurvePtr> ReleaseCurves,
              const TimingInputs &In, std::uint32_t NumSockets, Time Cap,
              bool CarryInPerTask = true);

  /// Routes jobBound's release-curve evaluations through a shared flat
  /// compilation (core/curve_table.h) instead of the virtual curves.
  /// \p Flat must be the compilation of the *same* α_i/J the release
  /// curves were built from (the analyses construct both from one
  /// source); bit-exact either way, so this is purely the hot-path
  /// kernel swap. Call before the first query.
  void setFlatCurves(std::shared_ptr<const FlatReleaseSet> Flat);

  /// Enables memo-seeded supply fixpoints: timeToSupply(W) starts from
  /// the memoized inverse of the largest W' ≤ W instead of from W (the
  /// inverse is monotone in W, so the seed is ≤ the lfp — sound per
  /// warm_start.h). Results are identical; iterations drop. Call
  /// before the first query.
  void setWarmSeeding(bool Enabled) { WarmSeeds = Enabled; }

  /// Reports supply-fixpoint iteration counts into \p Tel (not owned).
  void setTelemetry(FixpointTelemetry *Tel) { Telemetry = Tel; }

  /// NJobs(Δ): the job-count bound described above.
  std::uint64_t jobBound(Duration Delta) const;

  /// TRB(Δ): blackout from ReadOvh states.
  Duration trb(Duration Delta) const;

  /// NRB(Δ): blackout from the non-read overhead states.
  Duration nrb(Duration Delta) const;

  /// BlackoutBound(Δ) = TRB(Δ) + NRB(Δ).
  Duration blackoutBound(Duration Delta) const;

  Duration supplyBound(Duration Delta) const override;
  Time timeToSupply(Duration Work) const override;

private:
  std::vector<ArrivalCurvePtr> ReleaseCurves;
  std::shared_ptr<const FlatReleaseSet> Flat;
  OverheadBounds B;
  Time Cap;
  bool CarryInPerTask;
  bool WarmSeeds = false;
  FixpointTelemetry *Telemetry = nullptr;

  /// timeToSupply is the innermost loop of every fixed-point search and
  /// is repeatedly queried at the same Work values (the Kleene iterates
  /// revisit each other's results, and supplyBound bisects over it).
  /// The model is immutable after construction, so the inverse is pure;
  /// this memo caches it. Mutex-guarded: one RosslSupply may be shared
  /// across sweep threads (sbf_curves, the SweepRunner ports). Ordered
  /// so warm seeding can find the nearest memoized W' ≤ W.
  mutable std::mutex MemoM;
  mutable std::map<Duration, Time> TimeToSupplyMemo;
};

} // namespace rprosa

#endif // RPROSA_RTA_SBF_H
