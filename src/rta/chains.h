//===- rta/chains.h - End-to-end latency of callback chains ---------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating domain runs *processing chains*: a sensor
/// callback's output triggers a fusion callback, whose output triggers
/// control (ROS2 chains; the paper cites Casini et al.'s chain RTA
/// [14]). Given per-task response-time bounds R_i + J_i, the end-to-end
/// latency of a chain is bounded compositionally:
///
///   L(chain) ≤ Σ_{stage i} (R_i + J_i)
///
/// provided each stage's arrival curve admits the traffic its
/// predecessor emits — one output message per completed job, so the
/// predecessor's arrival curve must be dominated by the successor's
/// (checked by chainWellFormed; publishing one message per input is the
/// standard ROS2 pattern).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_CHAINS_H
#define RPROSA_RTA_CHAINS_H

#include "rta/rta_npfp.h"

#include "support/check.h"

#include <vector>

namespace rprosa {

/// A processing chain: task ids in trigger order.
struct Chain {
  std::string Name;
  std::vector<TaskId> Stages;
};

/// Checks the composition precondition: every successor stage's curve
/// admits at least the arrivals of its predecessor (spot-checked on a
/// probe grid; publishing is one message per completed job).
CheckResult chainWellFormed(const Chain &C, const TaskSet &Tasks,
                            Duration ProbeHorizon = 100 * TickMs);

/// The end-to-end latency bound Σ (R_i + J_i); TimeInfinity when any
/// stage is unbounded or the chain is empty.
Duration chainLatencyBound(const Chain &C, const RtaResult &R);

} // namespace rprosa

#endif // RPROSA_RTA_CHAINS_H
