//===- rta/rta_policies.cpp -----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/rta_policies.h"

#include <algorithm>
#include <memory>

using namespace rprosa;

namespace {

/// Shared scaffolding of the order-driven (FIFO/EDF) analyses: jitter,
/// release curves, supply, and the offset walk. The policies differ
/// only in the per-task interference window.
class OrderDrivenAnalysis {
public:
  OrderDrivenAnalysis(const TaskSet &Tasks, const BasicActionWcets &W,
                      std::uint32_t NumSockets, const RtaConfig &Cfg)
      : Tasks(Tasks), Cfg(Cfg) {
    Bounds = OverheadBounds::compute(W, NumSockets);
    Jitter = Cfg.AccountOverheads ? maxReleaseJitter(Bounds) : 0;
    std::vector<ArrivalCurvePtr> Alphas;
    Duration MaxDeadline = 0;
    for (const Task &T : Tasks.tasks()) {
      Alphas.push_back(T.Curve);
      MaxDeadline = std::max(MaxDeadline, T.Deadline);
    }
    // All β_k evaluations go through one flat compilation (see
    // rta_npfp.cpp). The EDF window can reach A + 1 + J + D_i − D_k,
    // so the compile horizon includes the deadline spread.
    Flat = std::make_shared<FlatReleaseSet>(
        Alphas, Jitter,
        satAdd(Cfg.FixedPointCap, satAdd(MaxDeadline, 2)));
    if (Cfg.AccountOverheads) {
      std::vector<ArrivalCurvePtr> Beta;
      for (const ArrivalCurvePtr &A : Alphas)
        Beta.push_back(makeReleaseCurve(A, Jitter));
      auto Rossl = std::make_unique<RosslSupply>(std::move(Beta), Bounds,
                                                 Cfg.FixedPointCap,
                                                 !Cfg.AblateCarryIn);
      Rossl->setFlatCurves(Flat);
      Rossl->setWarmSeeding(Cfg.WarmIntraPoint);
      Rossl->setTelemetry(Cfg.Telemetry);
      Supply = std::move(Rossl);
    } else {
      Supply = std::make_unique<IdealSupply>();
    }
  }

  /// The interference window of task \p K against a job of task \p I
  /// released at offset \p A: releases of K within this window may
  /// precede the job in the policy order.
  using WindowFn = Duration (*)(const TaskSet &, TaskId I, TaskId K,
                                Time A, Duration Jitter);

  RtaResult run(WindowFn Window) {
    RtaResult Res;
    Res.Bounds = Bounds;
    for (const Task &T : Tasks.tasks())
      Res.PerTask.push_back(analyzeTask(T.Id, Window));
    return Res;
  }

private:
  Duration workloadAt(TaskId I, Time A, WindowFn Window) const {
    Duration Sum = 0;
    for (const Task &K : Tasks.tasks())
      Sum = satAdd(Sum,
                   satMul(Flat->evalRelease(
                              K.Id, Window(Tasks, I, K.Id, A, Jitter)),
                          K.Wcet));
    return Sum;
  }

  TaskRta analyzeTask(TaskId I, WindowFn Window) const {
    TaskRta Out;
    Out.Task = I;
    Out.Jitter = Jitter;
    Out.Blocking = Tasks.maxOtherWcet(I);

    // Busy-window bound: the workload formula evaluated at L (monotone
    // in L, so the least fixed point is sound).
    auto BusyStep = [&](Time L) {
      Duration Work = satAdd(Out.Blocking, workloadAt(I, L, Window));
      return std::max<Time>(1, Supply->timeToSupply(Work));
    };
    std::uint64_t Iters = 0;
    Duration BusySeed = Cfg.Warm ? Cfg.Warm->busyWindowSeed(I) : 0;
    std::optional<Time> L = leastFixedPointSeeded(
        BusyStep, 1, BusySeed, Cfg.FixedPointCap, &Iters);
    if (Cfg.Telemetry)
      Cfg.Telemetry->noteFixpoint(Iters, BusySeed > 1);
    if (!L)
      return Out;
    Out.BusyWindow = *L;

    FlatReleaseView BetaI(*Flat, I);
    Duration Rmax = 0;
    for (std::uint64_t Q = 1; Q <= Cfg.MaxOffsets; ++Q) {
      Duration WindowLen = minWindowAdmittingIn(BetaI, Q,
                                                Cfg.FixedPointCap);
      if (WindowLen == TimeInfinity)
        break;
      Time Aq = WindowLen - 1;
      if (Aq >= *L)
        break;
      Duration Work = satAdd(Out.Blocking, workloadAt(I, Aq, Window));
      Time F = Supply->timeToSupply(Work);
      // The job cannot complete before its own release + execution.
      // The floor must be folded in *before* the cap check: a finish
      // bound pushed past the cap (or saturated) by the floor is just
      // as unbounded as one the supply inverse produced directly, and
      // checking first used to let such a bound through as "Bounded".
      F = std::max<Time>(F, satAdd(Aq, Tasks.task(I).Wcet));
      if (exceedsCap(F, Cfg.FixedPointCap))
        return Out;
      Rmax = std::max<Duration>(Rmax, F - Aq);
      if (Q == Cfg.MaxOffsets)
        return Out;
    }

    Out.Bounded = true;
    Out.ReleaseRelativeBound = Rmax;
    Out.ResponseBound = satAdd(Rmax, Jitter);
    return Out;
  }

  const TaskSet &Tasks;
  RtaConfig Cfg;
  OverheadBounds Bounds;
  Duration Jitter = 0;
  std::shared_ptr<const FlatReleaseSet> Flat;
  std::unique_ptr<SupplyModel> Supply;
};

Duration fifoWindow(const TaskSet &, TaskId, TaskId, Time A,
                    Duration Jitter) {
  // Releases within A + J + 1 may be read before our job.
  return satAdd(satAdd(A, Jitter), 1);
}

Duration edfWindow(const TaskSet &Tasks, TaskId I, TaskId K, Time A,
                   Duration Jitter) {
  // Releases of K whose key (read + D_k) can undercut ours
  // (read + D_i): window A + 1 + J + D_i − D_k, clamped at 0.
  Duration Di = Tasks.task(I).Deadline;
  Duration Dk = Tasks.task(K).Deadline;
  Duration Base = satAdd(satAdd(A, 1), Jitter);
  if (Dk >= Di) {
    Duration Shrink = Dk - Di;
    return Base > Shrink ? Base - Shrink : 0;
  }
  return satAdd(Base, Di - Dk);
}

} // namespace

RtaResult rprosa::analyzeFifo(const TaskSet &Tasks,
                              const BasicActionWcets &W,
                              std::uint32_t NumSockets,
                              const RtaConfig &Cfg) {
  OrderDrivenAnalysis A(Tasks, W, NumSockets, Cfg);
  return A.run(fifoWindow);
}

RtaResult rprosa::analyzeEdf(const TaskSet &Tasks,
                             const BasicActionWcets &W,
                             std::uint32_t NumSockets,
                             const RtaConfig &Cfg) {
  OrderDrivenAnalysis A(Tasks, W, NumSockets, Cfg);
  RtaResult Res = A.run(edfWindow);
  // Tasks without deadlines cannot be analyzed under EDF.
  for (TaskRta &T : Res.PerTask)
    if (Tasks.task(T.Task).Deadline == 0)
      T.Bounded = false;
  return Res;
}

RtaResult rprosa::analyzePolicy(const TaskSet &Tasks,
                                const BasicActionWcets &W,
                                std::uint32_t NumSockets,
                                SchedPolicy Policy, const RtaConfig &Cfg) {
  switch (Policy) {
  case SchedPolicy::Npfp:
    return analyzeNpfp(Tasks, W, NumSockets, Cfg);
  case SchedPolicy::Edf:
    return analyzeEdf(Tasks, W, NumSockets, Cfg);
  case SchedPolicy::Fifo:
    return analyzeFifo(Tasks, W, NumSockets, Cfg);
  }
  return analyzeNpfp(Tasks, W, NumSockets, Cfg);
}
