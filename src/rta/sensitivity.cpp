//===- rta/sensitivity.cpp ------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/sensitivity.h"

#include <functional>

using namespace rprosa;

namespace {

/// Binary-searches the largest percent in [100, MaxPercent] for which
/// \p Schedulable holds; requires antitonicity.
SensitivityResult searchPercent(
    const std::function<bool(std::uint64_t)> &Schedulable,
    std::uint64_t MaxPercent) {
  SensitivityResult R;
  R.NominalSchedulable = Schedulable(100);
  if (!R.NominalSchedulable)
    return R;
  std::uint64_t Lo = 100, Hi = MaxPercent;
  if (Schedulable(Hi)) {
    R.MaxScalePercent = Hi;
    return R;
  }
  // Invariant: Lo schedulable, Hi not.
  while (Lo + 1 < Hi) {
    std::uint64_t Mid = Lo + (Hi - Lo) / 2;
    if (Schedulable(Mid))
      Lo = Mid;
    else
      Hi = Mid;
  }
  R.MaxScalePercent = Lo;
  return R;
}

RtaConfig quickConfig() {
  RtaConfig Cfg;
  // Sensitivity sweeps call the analysis hundreds of times; a tighter
  // cap keeps them fast (an unbounded verdict below the cap is simply
  // "not schedulable" for the search).
  Cfg.FixedPointCap = 1 * TickSec;
  return Cfg;
}

TaskSet scaleTaskWcet(const TaskSet &Tasks, TaskId I,
                      std::uint64_t Percent) {
  TaskSet Out;
  for (const Task &T : Tasks.tasks()) {
    Duration Wcet = T.Id == I
                        ? std::max<Duration>(1, satMul(T.Wcet, Percent) /
                                                    100)
                        : T.Wcet;
    Out.addTask(T.Name, Wcet, T.Prio, T.Curve, T.Deadline);
  }
  return Out;
}

BasicActionWcets scaleWcets(const BasicActionWcets &W,
                            std::uint64_t Percent) {
  auto S = [&](Duration D) {
    return std::max<Duration>(1, satMul(D, Percent) / 100);
  };
  BasicActionWcets Out;
  Out.FailedRead = S(W.FailedRead);
  Out.SuccessfulRead = S(W.SuccessfulRead);
  Out.Selection = S(W.Selection);
  Out.Dispatch = S(W.Dispatch);
  Out.Completion = S(W.Completion);
  Out.Idling = S(W.Idling);
  return Out;
}

} // namespace

SensitivityResult rprosa::callbackWcetSlack(const TaskSet &Tasks,
                                            const BasicActionWcets &W,
                                            std::uint32_t NumSockets,
                                            TaskId I, SchedPolicy Policy,
                                            std::uint64_t MaxPercent) {
  return searchPercent(
      [&](std::uint64_t Percent) {
        return analyzePolicy(scaleTaskWcet(Tasks, I, Percent), W,
                             NumSockets, Policy, quickConfig())
            .allBounded();
      },
      MaxPercent);
}

SensitivityResult rprosa::schedulerWcetSlack(const TaskSet &Tasks,
                                             const BasicActionWcets &W,
                                             std::uint32_t NumSockets,
                                             SchedPolicy Policy,
                                             std::uint64_t MaxPercent) {
  return searchPercent(
      [&](std::uint64_t Percent) {
        return analyzePolicy(Tasks, scaleWcets(W, Percent), NumSockets,
                             Policy, quickConfig())
            .allBounded();
      },
      MaxPercent);
}

std::uint32_t rprosa::socketSlack(const TaskSet &Tasks,
                                  const BasicActionWcets &W,
                                  std::uint32_t MaxSockets,
                                  SchedPolicy Policy) {
  auto Feasible = [&](std::uint32_t Socks) {
    return analyzePolicy(Tasks, W, Socks, Policy, quickConfig())
        .allBounded();
  };
  if (!Feasible(1))
    return 0;
  std::uint32_t Lo = 1, Hi = MaxSockets;
  if (Feasible(Hi))
    return Hi;
  while (Lo + 1 < Hi) {
    std::uint32_t Mid = Lo + (Hi - Lo) / 2;
    if (Feasible(Mid))
      Lo = Mid;
    else
      Hi = Mid;
  }
  return Lo;
}
