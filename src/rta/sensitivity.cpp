//===- rta/sensitivity.cpp ------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/sensitivity.h"

#include <algorithm>
#include <functional>

using namespace rprosa;

namespace {

RtaConfig quickConfig() {
  RtaConfig Cfg;
  // Sensitivity sweeps call the analysis hundreds of times; a tighter
  // cap keeps them fast (an unbounded verdict below the cap is simply
  // "not schedulable" for the search).
  Cfg.FixedPointCap = 1 * TickSec;
  return Cfg;
}

TaskSet scaleTaskWcet(const TaskSet &Tasks, TaskId I,
                      std::uint64_t Percent) {
  TaskSet Out;
  for (const Task &T : Tasks.tasks()) {
    Duration Wcet = T.Id == I
                        ? std::max<Duration>(1, satMul(T.Wcet, Percent) /
                                                    100)
                        : T.Wcet;
    // Curves are shared, not copied: probes of the same search hit the
    // runner's memoized evaluations.
    Out.addTask(T.Name, Wcet, T.Prio, T.Curve, T.Deadline);
  }
  return Out;
}

BasicActionWcets scaleWcets(const BasicActionWcets &W,
                            std::uint64_t Percent) {
  auto S = [&](Duration D) {
    return std::max<Duration>(1, satMul(D, Percent) / 100);
  };
  BasicActionWcets Out;
  Out.FailedRead = S(W.FailedRead);
  Out.SuccessfulRead = S(W.SuccessfulRead);
  Out.Selection = S(W.Selection);
  Out.Dispatch = S(W.Dispatch);
  Out.Completion = S(W.Completion);
  Out.Idling = S(W.Idling);
  return Out;
}

/// Finds the largest x in [Lo, Hi] with Schedulable(x), given
/// Schedulable(Lo) and !Schedulable(Hi), by K-section: each round
/// evaluates K evenly spaced interior probes as one parallel batch and
/// keeps the bracket between the last schedulable and the first
/// unschedulable probe. Antitonicity makes the boundary unique, so the
/// result is exactly the binary-search answer for any K >= 1.
std::uint64_t bracketLargestSchedulable(
    SweepRunner &Runner,
    const std::function<SweepPoint(std::uint64_t)> &PointAt,
    std::uint64_t Lo, std::uint64_t Hi) {
  std::uint64_t K = std::max<std::uint64_t>(1, Runner.threads());
  while (Lo + 1 < Hi) {
    std::vector<std::uint64_t> Probes;
    for (std::uint64_t J = 1; J <= K && Probes.size() < Hi - Lo - 1;
         ++J) {
      std::uint64_t P = Lo + (Hi - Lo) * J / (K + 1);
      P = std::min(std::max(P, Lo + 1), Hi - 1);
      if (Probes.empty() || Probes.back() != P)
        Probes.push_back(P);
    }
    std::vector<SweepPoint> Points;
    Points.reserve(Probes.size());
    for (std::uint64_t P : Probes)
      Points.push_back(PointAt(P));
    std::vector<char> Ok = Runner.runSchedulable(Points);
    // Antitone: Ok is a (possibly empty) prefix of ones.
    std::uint64_t NewLo = Lo, NewHi = Hi;
    for (std::size_t J = 0; J < Probes.size(); ++J) {
      if (Ok[J])
        NewLo = Probes[J];
      else {
        NewHi = Probes[J];
        break;
      }
    }
    Lo = NewLo;
    Hi = NewHi;
  }
  return Lo;
}

SensitivityResult searchPercent(
    SweepRunner &Runner,
    const std::function<SweepPoint(std::uint64_t)> &PointAt,
    std::uint64_t MaxPercent) {
  SensitivityResult R;
  std::vector<char> Ends =
      Runner.runSchedulable({PointAt(100), PointAt(MaxPercent)});
  R.NominalSchedulable = Ends[0];
  if (!R.NominalSchedulable)
    return R;
  if (Ends[1]) {
    R.MaxScalePercent = MaxPercent;
    return R;
  }
  R.MaxScalePercent = bracketLargestSchedulable(Runner, PointAt, 100,
                                                MaxPercent);
  return R;
}

} // namespace

SensitivityResult rprosa::callbackWcetSlack(SweepRunner &Runner,
                                            const TaskSet &Tasks,
                                            const BasicActionWcets &W,
                                            std::uint32_t NumSockets,
                                            TaskId I, SchedPolicy Policy,
                                            std::uint64_t MaxPercent) {
  auto PointAt = [&](std::uint64_t Percent) {
    SweepPoint P;
    P.Tasks = scaleTaskWcet(Tasks, I, Percent);
    P.Cfg = quickConfig();
    P.Sbf.Wcets = W;
    P.Sbf.NumSockets = NumSockets;
    P.Policy = Policy;
    return P;
  };
  return searchPercent(Runner, PointAt, MaxPercent);
}

SensitivityResult rprosa::callbackWcetSlack(const TaskSet &Tasks,
                                            const BasicActionWcets &W,
                                            std::uint32_t NumSockets,
                                            TaskId I, SchedPolicy Policy,
                                            std::uint64_t MaxPercent) {
  SweepRunner Runner;
  return callbackWcetSlack(Runner, Tasks, W, NumSockets, I, Policy,
                           MaxPercent);
}

SensitivityResult rprosa::schedulerWcetSlack(SweepRunner &Runner,
                                             const TaskSet &Tasks,
                                             const BasicActionWcets &W,
                                             std::uint32_t NumSockets,
                                             SchedPolicy Policy,
                                             std::uint64_t MaxPercent) {
  auto PointAt = [&](std::uint64_t Percent) {
    SweepPoint P;
    P.Tasks = Tasks;
    P.Cfg = quickConfig();
    P.Sbf.Wcets = scaleWcets(W, Percent);
    P.Sbf.NumSockets = NumSockets;
    P.Policy = Policy;
    return P;
  };
  return searchPercent(Runner, PointAt, MaxPercent);
}

SensitivityResult rprosa::schedulerWcetSlack(const TaskSet &Tasks,
                                             const BasicActionWcets &W,
                                             std::uint32_t NumSockets,
                                             SchedPolicy Policy,
                                             std::uint64_t MaxPercent) {
  SweepRunner Runner;
  return schedulerWcetSlack(Runner, Tasks, W, NumSockets, Policy,
                            MaxPercent);
}

std::uint32_t rprosa::socketSlack(SweepRunner &Runner,
                                  const TaskSet &Tasks,
                                  const BasicActionWcets &W,
                                  std::uint32_t MaxSockets,
                                  SchedPolicy Policy) {
  auto PointAt = [&](std::uint64_t Socks) {
    SweepPoint P;
    P.Tasks = Tasks;
    P.Cfg = quickConfig();
    P.Sbf.Wcets = W;
    P.Sbf.NumSockets = static_cast<std::uint32_t>(Socks);
    P.Policy = Policy;
    return P;
  };
  std::vector<char> Ends =
      Runner.runSchedulable({PointAt(1), PointAt(MaxSockets)});
  if (!Ends[0])
    return 0;
  if (Ends[1])
    return MaxSockets;
  return static_cast<std::uint32_t>(
      bracketLargestSchedulable(Runner, PointAt, 1, MaxSockets));
}

std::uint32_t rprosa::socketSlack(const TaskSet &Tasks,
                                  const BasicActionWcets &W,
                                  std::uint32_t MaxSockets,
                                  SchedPolicy Policy) {
  SweepRunner Runner;
  return socketSlack(Runner, Tasks, W, MaxSockets, Policy);
}
