//===- rta/compliance.h - The aRSA schedule preconditions (§4.2/§4.3) -----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// aRSA requires the schedule to be *priority-policy compliant* and
/// *work-conserving* (§4.2) — and Rössl's schedules are neither w.r.t.
/// the raw arrival sequence: a job arriving between the polling and
/// execution phases may be overlooked, and a job arriving while the
/// scheduler idles is not served instantly. §4.3's resolution is the
/// *release sequence*: each job's arrival is delayed by its release
/// jitter (Fig. 7), after which both properties hold.
///
/// This module makes that argument executable:
///
///  - buildReleaseSequence() constructs the release sequence exactly as
///    the proof does — arrival plus the job's measured jitter (the
///    idle-residue or overlooked delay, zero otherwise);
///  - checkWorkConservation() verifies that the processor never idles
///    while a released-but-incomplete job exists;
///  - checkPolicyCompliance() verifies that a job starting to execute
///    at t precedes (in policy order) every job released before t that
///    has not executed yet;
///  - checkReleaseCurve() verifies the release curve β_i (§4.3) bounds
///    the constructed releases.
///
/// The companion experiment (E13) shows the contrast: both properties
/// FAIL w.r.t. the raw arrival sequence and HOLD w.r.t. the release
/// sequence — precisely the gap Fig. 7 illustrates.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_COMPLIANCE_H
#define RPROSA_RTA_COMPLIANCE_H

#include "rta/jitter.h"

#include "convert/trace_to_schedule.h"
#include "core/arrival_sequence.h"
#include "core/policy.h"
#include "core/task.h"
#include "support/check.h"

#include <map>

namespace rprosa {

/// One job's modeled release.
struct Release {
  MsgId Msg = 0;
  TaskId Task = InvalidTaskId;
  Time ArrivalAt = 0;
  Duration Jitter = 0;
  Time ReleaseAt = 0; ///< ArrivalAt + Jitter.
};

/// The release sequence of one run.
struct ReleaseSequence {
  std::vector<Release> Releases;

  const Release *findMsg(MsgId Id) const;
};

/// Builds the release sequence from a converted run: each arrival is
/// delayed by the jitter measureReleaseJitter() assigns it (Fig. 7's
/// two cases). With \p ZeroJitter the raw arrival times are used — the
/// "before" side of the Fig. 7 contrast.
ReleaseSequence buildReleaseSequence(const ConversionResult &CR,
                                     const ArrivalSequence &Arr,
                                     bool ZeroJitter = false);

/// Work conservation (§4.2): no Idle instant while a released job is
/// incomplete.
CheckResult checkWorkConservation(const ConversionResult &CR,
                                  const ReleaseSequence &Rel);

/// Priority-policy compliance (§4.2, stated for the paper's NPFP
/// policy): a job starting execution at t has the highest priority
/// among the jobs released strictly before t that have not started
/// executing.
CheckResult checkPolicyCompliance(const ConversionResult &CR,
                                  const ReleaseSequence &Rel,
                                  const TaskSet &Tasks);

/// The release curve bound (§4.3): per task, the number of releases in
/// any window of length Δ is at most β_i(Δ) = α_i(Δ + J_i).
CheckResult checkReleaseCurve(const ReleaseSequence &Rel,
                              const TaskSet &Tasks, Duration MaxJitter);

/// The same check with the jitter bound J_i derived from
/// provenance-tagged timing inputs (Def. 4.3 over
/// OverheadBounds::compute(In.Wcets, NumSockets)) — the entry point for
/// statically derived WCET tables.
CheckResult checkReleaseCurve(const ReleaseSequence &Rel,
                              const TaskSet &Tasks, const TimingInputs &In,
                              std::uint32_t NumSockets);

} // namespace rprosa

#endif // RPROSA_RTA_COMPLIANCE_H
