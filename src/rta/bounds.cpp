//===- rta/bounds.cpp -----------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/bounds.h"

using namespace rprosa;

OverheadBounds OverheadBounds::compute(const BasicActionWcets &W,
                                       std::uint32_t NumSockets) {
  OverheadBounds B;
  B.PB = satMul(NumSockets, W.FailedRead);
  B.SB = W.Selection;
  B.DB = W.Dispatch;
  B.CB = W.Completion;
  B.RB = satAdd(B.PB, W.SuccessfulRead);
  B.IB = satAdd(satAdd(B.PB, B.SB), W.Idling);
  return B;
}

std::string rprosa::toString(TimingSource S) {
  switch (S) {
  case TimingSource::HandSupplied:
    return "hand-supplied";
  case TimingSource::StaticAnalysis:
    return "static-analysis";
  }
  return "?";
}
