//===- rta/bounds.h - Per-state overhead bounds (§2.4, §4.3) --------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The upper bounds on the durations of the overhead processor states,
/// derived from the basic-action WCETs and the socket count:
///
///   PB = |input_socks| · WcetFR          (Def. 2.2, one polling round)
///   SB = WcetSel,  DB = WcetDisp,  CB = WcetCompl
///   RB = |input_socks| · WcetFR + WcetSR (per-job read overhead: at
///        most as many failed reads as sockets before a success, §2.4)
///   IB = PB + SB + WcetIdling            (time from an arrival during
///        an Idle period until that period ends: the rest of the
///        current polling round, the failed selection, and one idle
///        cycle — the next polling phase reads the job and is no
///        longer Idle)
///
/// The paper leaves IB abstract ("we calculate the upper bounds PB, SB,
/// DB and IB ... using WCET assumptions", §4.3); the derivation above is
/// this reproduction's instantiation and is validated empirically by the
/// jitter experiments (E5).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_BOUNDS_H
#define RPROSA_RTA_BOUNDS_H

#include "core/time.h"
#include "core/wcet.h"

namespace rprosa {

/// Upper bounds on the discrete overhead-state durations.
struct OverheadBounds {
  Duration PB = 0; ///< One all-failed polling round.
  Duration SB = 0; ///< One selection.
  Duration DB = 0; ///< One dispatch.
  Duration CB = 0; ///< One completion cleanup.
  Duration RB = 0; ///< Total read overhead attributed to one job.
  Duration IB = 0; ///< Idle residue after an arrival.

  /// Derives the bounds from WCETs and the socket count.
  static OverheadBounds compute(const BasicActionWcets &W,
                                std::uint32_t NumSockets);

  /// The total non-read overhead one executed job can cause
  /// (PollingOvh + SelectionOvh + DispatchOvh + CompletionOvh).
  Duration perJobNonReadOverhead() const {
    return satAdd(satAdd(PB, SB), satAdd(DB, CB));
  }
};

} // namespace rprosa

#endif // RPROSA_RTA_BOUNDS_H
