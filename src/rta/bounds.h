//===- rta/bounds.h - Per-state overhead bounds (§2.4, §4.3) --------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The upper bounds on the durations of the overhead processor states,
/// derived from the basic-action WCETs and the socket count:
///
///   PB = |input_socks| · WcetFR          (Def. 2.2, one polling round)
///   SB = WcetSel,  DB = WcetDisp,  CB = WcetCompl
///   RB = |input_socks| · WcetFR + WcetSR (per-job read overhead: at
///        most as many failed reads as sockets before a success, §2.4)
///   IB = PB + SB + WcetIdling            (time from an arrival during
///        an Idle period until that period ends: the rest of the
///        current polling round, the failed selection, and one idle
///        cycle — the next polling phase reads the job and is no
///        longer Idle)
///
/// The paper leaves IB abstract ("we calculate the upper bounds PB, SB,
/// DB and IB ... using WCET assumptions", §4.3); the derivation above is
/// this reproduction's instantiation and is validated empirically by the
/// jitter experiments (E5).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_BOUNDS_H
#define RPROSA_RTA_BOUNDS_H

#include "core/ids.h"
#include "core/time.h"
#include "core/wcet.h"

#include <string>
#include <vector>

namespace rprosa {

/// Upper bounds on the discrete overhead-state durations.
struct OverheadBounds {
  Duration PB = 0; ///< One all-failed polling round.
  Duration SB = 0; ///< One selection.
  Duration DB = 0; ///< One dispatch.
  Duration CB = 0; ///< One completion cleanup.
  Duration RB = 0; ///< Total read overhead attributed to one job.
  Duration IB = 0; ///< Idle residue after an arrival.

  /// Derives the bounds from WCETs and the socket count.
  static OverheadBounds compute(const BasicActionWcets &W,
                                std::uint32_t NumSockets);

  /// The total non-read overhead one executed job can cause
  /// (PollingOvh + SelectionOvh + DispatchOvh + CompletionOvh).
  Duration perJobNonReadOverhead() const {
    return satAdd(satAdd(PB, SB), satAdd(DB, CB));
  }
};

/// Where the timing inputs of an analysis run came from. The paper
/// takes WCETs as trusted parameters (§2.3); the static timing pass
/// (analysis/timing) derives them from the verified CFG instead.
enum class TimingSource : std::uint8_t {
  HandSupplied,   ///< The classical mode: trusted WCET tables.
  StaticAnalysis, ///< Derived by the static segment-cost analysis.
};

std::string toString(TimingSource S);

/// A complete set of timing inputs for the RTA: basic-action WCETs plus
/// optional per-task callback-WCET overrides, tagged with provenance.
/// Every analysis entry point that takes (BasicActionWcets, NumSockets)
/// has an overload taking TimingInputs, so statically derived bounds
/// flow end to end without touching the hand-supplied tables.
struct TimingInputs {
  BasicActionWcets Wcets;
  /// Callback WCETs indexed by TaskId; tasks beyond the vector keep
  /// their hand-supplied Task::Wcet.
  std::vector<Duration> CallbackWcets;
  TimingSource Source = TimingSource::HandSupplied;

  static TimingInputs handSupplied(const BasicActionWcets &W) {
    return {W, {}, TimingSource::HandSupplied};
  }

  /// The callback WCET of task \p Id, falling back to \p Fallback
  /// (the task's own C_i) when no override is present.
  Duration callbackWcet(TaskId Id, Duration Fallback) const {
    return Id < CallbackWcets.size() ? CallbackWcets[Id] : Fallback;
  }
};

} // namespace rprosa

#endif // RPROSA_RTA_BOUNDS_H
