//===- rta/warm_start.cpp -------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/warm_start.h"

#include "rta/arsa.h"
#include "rta/rta_npfp.h"

using namespace rprosa;

std::optional<Time>
rprosa::leastFixedPointSeeded(const std::function<Time(Time)> &F, Time Start,
                              Time Seed, Time Cap,
                              std::uint64_t *IterationsOut) {
  Time T = std::max(Start, Seed);
  std::uint64_t Iters = 0;
  // Kleene iteration from a point ≤ the least fixed point: iterates
  // never cross it (warm_start.h), so convergence is exact. Unlike the
  // cold leastFixedPoint, a *decreasing* step keeps iterating — with a
  // seed strictly between Start and the lfp the map may first pull the
  // iterate down toward the cold trajectory before climbing; once the
  // direction is downward it stays downward (monotone F), so the
  // iteration still terminates within the cap's range.
  while (true) {
    Time Next = F(T);
    ++Iters;
    if (exceedsCap(Next, Cap)) {
      if (IterationsOut)
        *IterationsOut += Iters;
      return std::nullopt;
    }
    if (Next == T) {
      if (IterationsOut)
        *IterationsOut += Iters;
      return T;
    }
    T = Next;
  }
}

WarmStart rprosa::warmStartFrom(const RtaResult &R) {
  WarmStart W;
  W.BusyWindow.resize(R.PerTask.size(), 0);
  for (std::size_t I = 0; I < R.PerTask.size(); ++I) {
    const TaskRta &T = R.PerTask[I];
    // Only bounded tasks yield a certified lfp to seed from, and only
    // for the same task index (ids are dense).
    if (T.Bounded && T.Task == I)
      W.BusyWindow[I] = T.BusyWindow;
  }
  return W;
}
