//===- rta/chains.cpp -----------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/chains.h"

using namespace rprosa;

CheckResult rprosa::chainWellFormed(const Chain &C, const TaskSet &Tasks,
                                    Duration ProbeHorizon) {
  CheckResult R;
  R.noteCheck();
  if (C.Stages.empty()) {
    R.addFailure("chain '" + C.Name + "' has no stages");
    return R;
  }
  for (TaskId T : C.Stages) {
    R.noteCheck();
    if (T >= Tasks.size()) {
      R.addFailure("chain '" + C.Name + "' references unknown task " +
                   std::to_string(T));
      return R;
    }
  }
  // Successor curves must dominate their predecessor's (one output per
  // completed input job): probe a grid of window lengths.
  for (std::size_t I = 1; I < C.Stages.size(); ++I) {
    const ArrivalCurve &Pred = *Tasks.task(C.Stages[I - 1]).Curve;
    const ArrivalCurve &Succ = *Tasks.task(C.Stages[I]).Curve;
    Duration Step = ProbeHorizon / 256 + 1;
    for (Duration D = 0; D <= ProbeHorizon; D += Step) {
      R.noteCheck();
      if (Succ.eval(D) < Pred.eval(D)) {
        R.addFailure("chain '" + C.Name + "': stage " +
                     Tasks.task(C.Stages[I]).Name +
                     " does not admit the traffic of its predecessor " +
                     Tasks.task(C.Stages[I - 1]).Name + " at Delta=" +
                     std::to_string(D));
        break;
      }
    }
  }
  return R;
}

Duration rprosa::chainLatencyBound(const Chain &C, const RtaResult &R) {
  if (C.Stages.empty())
    return TimeInfinity;
  Duration Sum = 0;
  for (TaskId T : C.Stages) {
    if (T >= R.PerTask.size() || !R.forTask(T).Bounded)
      return TimeInfinity;
    Sum = satAdd(Sum, R.forTask(T).ResponseBound);
  }
  return Sum;
}
