//===- rta/jitter.h - Release jitter (§4.3, Def. 4.3, Fig. 7) -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Release jitter bridges two gaps between Rössl and aRSA's idealized
/// model (§4.3, Fig. 7):
///
///  - *priority-policy compliance*: a job arriving between the polling
///    phase and the execution phase is not considered for the current
///    scheduling decision; delaying its modeled release past the start
///    of the next execution phase restores compliance (≤ PB + SB + DB);
///  - *work conservation*: a job arriving while the scheduler idles is
///    not served instantly; delaying its release past the end of the
///    Idle state restores work conservation (≤ IB).
///
/// Def. 4.3: J_i ≜ 1 + max(PB + SB + DB, IB).
///
/// measureReleaseJitter() extracts the *actual* jitter each job incurred
/// in a concrete run (for the E5 experiment: measured ≤ J_i, and in a
/// typical deployment J_i is microseconds while response bounds are
/// milliseconds).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_JITTER_H
#define RPROSA_RTA_JITTER_H

#include "rta/bounds.h"

#include "convert/trace_to_schedule.h"
#include "core/arrival_curve.h"
#include "core/arrival_sequence.h"

#include <vector>

namespace rprosa {

/// Def. 4.3: the maximum release jitter any job can incur.
Duration maxReleaseJitter(const OverheadBounds &B);

/// The release curve β_i of §4.3: β_i(0) = 0, β_i(Δ) = α_i(Δ + J_i)
/// otherwise. An upper bound on the release rate in the jittered
/// release sequence.
ArrivalCurvePtr makeReleaseCurve(ArrivalCurvePtr Alpha, Duration Jitter);

/// Which of the two Fig. 7 cases a job's measured jitter falls into.
enum class JitterCase : std::uint8_t {
  None,       ///< The job arrived while the scheduler was polling,
              ///< executing, or cleaning up — no modeled delay needed.
  IdleResidue,///< Arrived in an Idle state (work-conservation case).
  Overlooked, ///< Arrived between polling and execution phases
              ///< (priority-compliance case).
};

/// The measured release jitter of one job in a concrete run.
struct MeasuredJitter {
  JobId Job = InvalidJobId;
  MsgId Msg = 0;
  Duration Jitter = 0;
  JitterCase Case = JitterCase::None;
};

/// Extracts the actual per-job jitter from a converted run: for an
/// arrival inside an Idle segment, the remaining length of that
/// segment; for an arrival inside the PollingOvh/SelectionOvh/
/// DispatchOvh span of another job, the gap to the start of that job's
/// execution; zero otherwise.
std::vector<MeasuredJitter> measureReleaseJitter(const ConversionResult &CR,
                                                 const ArrivalSequence &Arr);

} // namespace rprosa

#endif // RPROSA_RTA_JITTER_H
