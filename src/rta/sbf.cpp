//===- rta/sbf.cpp --------------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/sbf.h"

#include "support/check.h"

#include <cassert>

using namespace rprosa;

RosslSupply::RosslSupply(std::vector<ArrivalCurvePtr> ReleaseCurves,
                         const OverheadBounds &B, Time Cap,
                         bool CarryInPerTask)
    : ReleaseCurves(std::move(ReleaseCurves)), B(B), Cap(Cap),
      CarryInPerTask(CarryInPerTask) {
  for ([[maybe_unused]] const ArrivalCurvePtr &C : this->ReleaseCurves)
    assert(C && "missing release curve");
}

RosslSupply::RosslSupply(std::vector<ArrivalCurvePtr> ReleaseCurves,
                         const TimingInputs &In, std::uint32_t NumSockets,
                         Time Cap, bool CarryInPerTask)
    : RosslSupply(std::move(ReleaseCurves),
                  OverheadBounds::compute(In.Wcets, NumSockets), Cap,
                  CarryInPerTask) {}

void RosslSupply::setFlatCurves(std::shared_ptr<const FlatReleaseSet> F) {
  RPROSA_CHECK(!F || F->size() == ReleaseCurves.size(),
               "flat release set must cover every release curve");
  Flat = std::move(F);
}

std::uint64_t RosslSupply::jobBound(Duration Delta) const {
  std::uint64_t Carry = CarryInPerTask ? 1 : 0;
  std::uint64_t N = 0;
  if (Flat) {
    for (std::size_t I = 0; I < ReleaseCurves.size(); ++I)
      N += Flat->evalRelease(I, Delta) + Carry;
    return N;
  }
  for (const ArrivalCurvePtr &C : ReleaseCurves)
    N += C->eval(Delta) + Carry;
  return N;
}

Duration RosslSupply::trb(Duration Delta) const {
  return satMul(jobBound(Delta), B.RB);
}

Duration RosslSupply::nrb(Duration Delta) const {
  return satMul(jobBound(Delta), B.perJobNonReadOverhead());
}

Duration RosslSupply::blackoutBound(Duration Delta) const {
  return satAdd(trb(Delta), nrb(Delta));
}

Time RosslSupply::timeToSupply(Duration Work) const {
  // SBF(0) = 0, so zero work needs zero time (the fixed point below
  // would overshoot because BlackoutBound(0) > 0 due to the carry-in).
  if (Work == 0)
    return 0;
  Time Seed = 0;
  {
    std::lock_guard<std::mutex> L(MemoM);
    auto It = TimeToSupplyMemo.upper_bound(Work);
    if (It != TimeToSupplyMemo.begin()) {
      --It; // Largest memoized W' <= Work.
      if (It->first == Work)
        return It->second;
      if (WarmSeeds) {
        // The inverse is monotone in Work, so t(W') is a sound lower
        // seed for t(W) — and if no t below the cap exists for the
        // smaller demand, none exists for ours either.
        if (It->second == TimeInfinity) {
          TimeToSupplyMemo.emplace(Work, TimeInfinity);
          return TimeInfinity;
        }
        Seed = It->second;
      }
    }
  }
  // Least t with SBF(t) >= Work, i.e. least t with
  // t - BlackoutBound(t) >= Work: the request-bound fixed point
  // t <- Work + BlackoutBound(t).
  auto Step = [&](Time T) { return satAdd(Work, blackoutBound(T)); };
  std::uint64_t Iters = 0;
  std::optional<Time> T = leastFixedPointSeeded(Step, Work, Seed, Cap,
                                                &Iters);
  if (Telemetry)
    Telemetry->noteSupplyIterations(Iters);
  Time Out = T ? *T : TimeInfinity;
  std::lock_guard<std::mutex> L(MemoM);
  TimeToSupplyMemo.emplace(Work, Out);
  return Out;
}

Duration RosslSupply::supplyBound(Duration Delta) const {
  // SBF(Delta) = max{W : timeToSupply(W) <= Delta}, found by binary
  // search (SBF is monotone, and W <= Delta always).
  Duration Lo = 0, Hi = Delta;
  while (Lo < Hi) {
    Duration Mid = Lo + (Hi - Lo + 1) / 2;
    if (timeToSupply(Mid) <= Delta)
      Lo = Mid;
    else
      Hi = Mid - 1;
  }
  return Lo;
}
