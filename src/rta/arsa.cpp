//===- rta/arsa.cpp -------------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/arsa.h"

using namespace rprosa;

std::optional<Time> rprosa::leastFixedPoint(
    const std::function<Time(Time)> &F, Time Start, Time Cap) {
  Time T = Start;
  // Kleene iteration; each non-fixed step strictly increases T (F is
  // monotone and inflationary on the iterates), so the Cap bounds the
  // number of iterations.
  while (true) {
    Time Next = F(T);
    if (exceedsCap(Next, Cap))
      return std::nullopt;
    if (Next == T)
      return T;
    if (Next < T) // Non-monotone F: treat as converged conservatively.
      return T;
    T = Next;
  }
}
