//===- rta/rta_npfp.cpp ---------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/rta_npfp.h"

#include "support/check.h"

#include <algorithm>
#include <memory>

using namespace rprosa;

bool RtaResult::allBounded() const {
  for (const TaskRta &T : PerTask)
    if (!T.Bounded)
      return false;
  return !PerTask.empty();
}

bool rprosa::meetsDeadlines(const RtaResult &R, const TaskSet &Tasks) {
  if (!R.allBounded())
    return false;
  for (const Task &T : Tasks.tasks()) {
    if (T.Deadline == 0)
      continue; // Unconstrained task: Bounded is all there is to show.
    if (R.forTask(T.Id).ResponseBound > T.Deadline)
      return false;
  }
  return true;
}

const TaskRta &RtaResult::forTask(TaskId Id) const {
  // Armed in every build type: an out-of-range id in a Release binary
  // would otherwise read past the vector and hand the caller garbage
  // bounds (experiment drivers run Release).
  RPROSA_CHECK(Id < PerTask.size(), "task id out of range for this result");
  RPROSA_CHECK(PerTask[Id].Task == Id, "per-task results are indexed by id");
  return PerTask[Id];
}

namespace {

/// One analysis run: task set + curves + supply, shared across tasks.
class NpfpAnalysis {
public:
  NpfpAnalysis(const TaskSet &Tasks, const BasicActionWcets &W,
               std::uint32_t NumSockets, const RtaConfig &Cfg)
      : Tasks(Tasks), Cfg(Cfg) {
    Bounds = OverheadBounds::compute(W, NumSockets);
    Jitter = Cfg.AccountOverheads ? maxReleaseJitter(Bounds) : 0;
    std::vector<ArrivalCurvePtr> Alphas;
    for (const Task &T : Tasks.tasks())
      Alphas.push_back(T.Curve);
    // The hot-path kernel: every β_k evaluation below goes through one
    // flat compilation of the task curves (core/curve_table.h), never
    // the virtual curve tree. Identical values by construction.
    Flat = std::make_shared<FlatReleaseSet>(
        Alphas, Jitter, satAdd(Cfg.FixedPointCap, 2));
    if (Cfg.AccountOverheads) {
      std::vector<ArrivalCurvePtr> Beta;
      for (const ArrivalCurvePtr &A : Alphas)
        Beta.push_back(makeReleaseCurve(A, Jitter));
      auto Rossl = std::make_unique<RosslSupply>(std::move(Beta), Bounds,
                                                 Cfg.FixedPointCap,
                                                 !Cfg.AblateCarryIn);
      Rossl->setFlatCurves(Flat);
      Rossl->setWarmSeeding(Cfg.WarmIntraPoint);
      Rossl->setTelemetry(Cfg.Telemetry);
      Supply = std::move(Rossl);
    } else {
      Supply = std::make_unique<IdealSupply>();
    }
  }

  RtaResult run();

private:
  TaskRta analyzeTask(TaskId I) const;

  /// Σ_{k ∈ Ks} β_k(Len) · C_k.
  Duration workloadOf(const std::vector<TaskId> &Ks, Duration Len) const {
    Duration Sum = 0;
    for (TaskId K : Ks)
      Sum = satAdd(Sum, satMul(Flat->evalRelease(K, Len),
                               Tasks.task(K).Wcet));
    return Sum;
  }

  /// Runs one outer fixpoint with seeding + telemetry.
  std::optional<Time> solve(const std::function<Time(Time)> &F, Time Start,
                            Time Seed) const {
    std::uint64_t Iters = 0;
    std::optional<Time> T =
        leastFixedPointSeeded(F, Start, Seed, Cfg.FixedPointCap, &Iters);
    if (Cfg.Telemetry)
      Cfg.Telemetry->noteFixpoint(Iters, Seed > Start);
    return T;
  }

  const TaskSet &Tasks;
  RtaConfig Cfg;
  OverheadBounds Bounds;
  Duration Jitter = 0;
  std::shared_ptr<const FlatReleaseSet> Flat;
  std::unique_ptr<SupplyModel> Supply;
};

} // namespace

TaskRta NpfpAnalysis::analyzeTask(TaskId I) const {
  TaskRta Out;
  Out.Task = I;
  Out.Jitter = Jitter;
  const Task &Ti = Tasks.task(I);

  // Non-preemptive blocking: one lower-priority job may have just
  // started (conservatively a full C_k; with the classic -1 when the
  // analysis is configured for it).
  Out.Blocking = Tasks.maxLowerPriorityWcet(I);
  if (Cfg.BlockingMinusOne && Out.Blocking > 0)
    --Out.Blocking;

  // Busy-window length: least L with SBF(L) >= B_i + hep-and-own
  // workload released within L.
  std::vector<TaskId> HepOthers = Tasks.higherOrEqualPriorityOthers(I);
  std::vector<TaskId> HepAll = HepOthers;
  HepAll.push_back(I);
  auto BusyStep = [&](Time L) {
    Duration Work = satAdd(Out.Blocking, workloadOf(HepAll, L));
    // A busy window is at least one instant long.
    return std::max<Time>(1, Supply->timeToSupply(Work));
  };
  // Seed the busy window from a demand-dominated neighbor's solution
  // when the caller supplied one (sound per warm_start.h: the
  // neighbor's lfp is ≤ ours).
  Duration BusySeed = Cfg.Warm ? Cfg.Warm->busyWindowSeed(I) : 0;
  std::optional<Time> L = solve(BusyStep, 1, BusySeed);
  if (!L)
    return Out; // Unbounded.
  Out.BusyWindow = *L;

  // Walk the release offsets A_q within the busy window.
  FlatReleaseView BetaI(*Flat, I);
  Duration Rmax = 0;
  Time PrevS = 0; // S_{q-1}: a sound seed for S_q (Prior and A_q grow).
  for (std::uint64_t Q = 1; Q <= Cfg.MaxOffsets; ++Q) {
    Duration WindowLen = minWindowAdmittingIn(BetaI, Q, Cfg.FixedPointCap);
    if (WindowLen == TimeInfinity)
      break; // The curve admits no q-th release at all.
    Time Aq = WindowLen - 1; // Release offset within the busy window.
    if (Aq >= *L)
      break; // Later releases start a new busy window.

    Duration Prior = satAdd(Out.Blocking, satMul(Q - 1, Ti.Wcet));

    // Start bound: a fixed point over the higher-or-equal-priority
    // releases up to (and including) the candidate start.
    auto StartStep = [&](Time T) {
      Duration Work = satAdd(Prior, workloadOf(HepOthers, satAdd(T, 1)));
      return std::max<Time>(Aq, Supply->timeToSupply(Work));
    };
    std::optional<Time> S =
        solve(StartStep, Aq, Cfg.WarmIntraPoint ? PrevS : 0);
    if (!S)
      return Out; // Unbounded.
    PrevS = *S;

    // Finish bound: the same interference (frozen at the start — jobs
    // released after a non-preemptive start cannot precede it) plus the
    // job's own execution.
    Duration WorkAtStart =
        satAdd(Prior, workloadOf(HepOthers, satAdd(*S, 1)));
    Time F = Supply->timeToSupply(satAdd(WorkAtStart, Ti.Wcet));
    if (exceedsCap(F, Cfg.FixedPointCap))
      return Out; // Unbounded.

    Rmax = std::max<Duration>(Rmax, F - Aq);

    if (Q == Cfg.MaxOffsets)
      return Out; // Offset budget exhausted: report unbounded.
  }

  Out.Bounded = true;
  Out.ReleaseRelativeBound = Rmax;
  Out.ResponseBound = satAdd(Rmax, Jitter);
  return Out;
}

RtaResult NpfpAnalysis::run() {
  RtaResult Res;
  Res.Bounds = Bounds;
  for (const Task &T : Tasks.tasks())
    Res.PerTask.push_back(analyzeTask(T.Id));
  return Res;
}

RtaResult rprosa::analyzeNpfp(const TaskSet &Tasks,
                              const BasicActionWcets &W,
                              std::uint32_t NumSockets,
                              const RtaConfig &Cfg) {
  NpfpAnalysis A(Tasks, W, NumSockets, Cfg);
  return A.run();
}

RtaResult rprosa::analyzeNpfp(const TaskSet &Tasks, const TimingInputs &In,
                              std::uint32_t NumSockets,
                              const RtaConfig &Cfg) {
  // Rebuild the task set with the callback-WCET overrides; ids are
  // dense and assigned in insertion order, so they are preserved.
  TaskSet Derived;
  for (const Task &T : Tasks.tasks())
    Derived.addTask(T.Name, In.callbackWcet(T.Id, T.Wcet), T.Prio, T.Curve,
                    T.Deadline);
  NpfpAnalysis A(Derived, In.Wcets, NumSockets, Cfg);
  RtaResult R = A.run();
  R.Source = In.Source;
  return R;
}
