//===- rta/sweep.h - Parallel batch evaluation of RTA points --------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel sweep engine: every large-scale workload in this repo —
/// acceptance-ratio studies, socket sweeps, sensitivity searches, the
/// capacity planner — is "evaluate many independent RTA points". A
/// SweepPoint names one point: a task set, the analysis knobs, and the
/// supply parameters the SBF is built from (SbfParams). SweepRunner
/// evaluates a vector of points concurrently on a ThreadPool and
/// returns the results *in input order*.
///
/// Determinism contract (asserted byte-for-byte by sweep_test and the
/// sweep_parallel bench): the analysis of a point is a pure function of
/// the point, so a run with T threads returns exactly the results of a
/// run with 1 thread — same values, same order, same rendered JSON.
/// Nothing downstream may depend on completion order.
///
/// Memoization: the hot path of every analysis is arrival-curve
/// evaluation (each fixed-point iteration sums β_k over tasks, and the
/// SBF's job bound sums them again). Points in a sweep overwhelmingly
/// share curve objects (the same TaskSet analyzed at many socket counts
/// or configs), so the runner wraps each distinct curve — keyed by the
/// identity of the underlying ArrivalCurve object — in a thread-safe
/// memo (MemoCurve) shared across all points. Release curves β_i(Δ) =
/// α_i(Δ + J_i) are ShiftedCurve views over the task curve, so their
/// evaluations hit the same memo. Memoization is semantically invisible
/// (curves are pure); sweep_test asserts memoized == unmemoized.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_SWEEP_H
#define RPROSA_RTA_SWEEP_H

#include "rta/rta_policies.h"

#include "support/parallel.h"

#include <array>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace rprosa {

/// The parameters the supply bound function of one point is built from
/// (§4.4): the basic-action WCET table and the socket count that scale
/// PB/RB. (The release curves it also needs come from the point's task
/// set plus the jitter these parameters induce.)
struct SbfParams {
  BasicActionWcets Wcets;
  std::uint32_t NumSockets = 1;
};

/// One point of a sweep: analyze \p Tasks under \p Policy with the
/// given config and supply parameters.
struct SweepPoint {
  TaskSet Tasks;
  RtaConfig Cfg;
  SbfParams Sbf;
  SchedPolicy Policy = SchedPolicy::Npfp;
};

/// A thread-safe memoizing view of a pure arrival curve. eval() caches
/// (Delta -> bound) in a sharded map; describe() delegates, so memoized
/// and plain curves render identically everywhere.
class MemoCurve : public ArrivalCurve {
public:
  explicit MemoCurve(ArrivalCurvePtr Inner);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override { return Inner->describe(); }

  const ArrivalCurvePtr &inner() const { return Inner; }

private:
  static constexpr std::size_t NumShards = 16;
  struct Shard {
    mutable std::shared_mutex M;
    mutable std::unordered_map<Duration, std::uint64_t> Map;
  };

  ArrivalCurvePtr Inner;
  mutable std::array<Shard, NumShards> Shards;
};

/// The sweep-wide cache: one shared MemoCurve per distinct underlying
/// curve object. Keyed by object identity (the pointer), which is safe
/// because the cache holds a shared_ptr to every key it has seen — a
/// cached address can never be recycled for a different curve while the
/// cache lives.
class CurveCache {
public:
  /// Returns the memoized view of \p Curve, creating it on first sight.
  /// Idempotent: the same curve object always yields the same memo.
  ArrivalCurvePtr memoize(const ArrivalCurvePtr &Curve);

  std::size_t size() const;

private:
  mutable std::mutex M;
  std::unordered_map<const ArrivalCurve *, std::shared_ptr<MemoCurve>> Map;
};

/// Tuning of a SweepRunner.
struct SweepOptions {
  /// Total parallelism; 0 = defaultParallelism(), 1 = fully serial (the
  /// benches' --serial escape hatch).
  unsigned Threads = 0;
  /// Share curve evaluations across points (see MemoCurve). Disabled
  /// only by the equivalence tests and ablation measurements.
  bool MemoizeCurves = true;
};

/// Evaluates batches of SweepPoints concurrently with deterministic,
/// input-ordered results. Reusable: consecutive run() calls share the
/// pool and the curve cache.
class SweepRunner {
public:
  explicit SweepRunner(SweepOptions Opts = {});

  /// Analyzes every point; Result[i] is the analysis of Points[i].
  std::vector<RtaResult> run(const std::vector<SweepPoint> &Points);

  /// Convenience: allBounded() per point (the acceptance-study shape).
  std::vector<char> runSchedulable(const std::vector<SweepPoint> &Points);

  unsigned threads() const { return Pool.threads(); }
  ThreadPool &pool() { return Pool; }
  CurveCache &cache() { return Cache; }

private:
  TaskSet withMemoizedCurves(const TaskSet &Tasks);

  SweepOptions Opts;
  ThreadPool Pool;
  CurveCache Cache;
};

/// Renders sweep results as canonical JSON (one object per point, in
/// input order, LF line endings, no locale-dependent formatting). The
/// byte-identity contract between serial and parallel runs is stated —
/// and tested — over this rendering.
std::string sweepResultsJson(const std::vector<SweepPoint> &Points,
                             const std::vector<RtaResult> &Results);

} // namespace rprosa

#endif // RPROSA_RTA_SWEEP_H
