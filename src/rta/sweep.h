//===- rta/sweep.h - Parallel batch evaluation of RTA points --------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel sweep engine: every large-scale workload in this repo —
/// acceptance-ratio studies, socket sweeps, sensitivity searches, the
/// capacity planner — is "evaluate many independent RTA points". A
/// SweepPoint names one point: a task set, the analysis knobs, and the
/// supply parameters the SBF is built from (SbfParams). SweepRunner
/// evaluates a vector of points concurrently on a ThreadPool and
/// returns the results *in input order*.
///
/// Determinism contract (asserted byte-for-byte by sweep_test and the
/// sweep_parallel bench): the analysis of a point is a pure function of
/// the point, so a run with T threads returns exactly the results of a
/// run with 1 thread — same values, same order, same rendered JSON.
/// Nothing downstream may depend on completion order.
///
/// Memoization: points in a sweep overwhelmingly share curve objects
/// (the same TaskSet analyzed at many socket counts or configs), so the
/// runner wraps each distinct curve — keyed by the identity of the
/// underlying ArrivalCurve object — in a thread-safe memo (MemoCurve)
/// shared across all points. Since the flat-kernel rework the analyses
/// themselves evaluate curves through FlatCurveTable (compiled once per
/// point, never the virtual tree), so the memo's remaining job is to
/// amortize the *compilation* scans across points; MemoCurve forwards
/// tail() so memoized curves compile exactly like their inner curve.
/// Memoization is semantically invisible (curves are pure); sweep_test
/// asserts memoized == unmemoized, and hit/miss counters surface in the
/// telemetry block of sweepResultsJson.
///
/// Warm starts: consecutive points of a sweep are usually tiny
/// perturbations of each other (one more socket, one larger WCET). When
/// point J's demand is dominated by point I's (canSeed: identical
/// structure + fieldwise ≤ parameters), J's busy-window solutions are ≤
/// I's least fixpoints and therefore sound seeds (warm_start.h). The
/// runner seeds each point from its nearest dominated predecessor
/// *within the same chunk* — chunks are processed in ascending index
/// order by a single lane, so the seed's result is always complete —
/// and results stay byte-identical to cold starts by the least-fixpoint
/// argument (asserted by warm_start_test).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_SWEEP_H
#define RPROSA_RTA_SWEEP_H

#include "rta/rta_policies.h"

#include "support/parallel.h"

#include <array>
#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace rprosa {

/// The parameters the supply bound function of one point is built from
/// (§4.4): the basic-action WCET table and the socket count that scale
/// PB/RB. (The release curves it also needs come from the point's task
/// set plus the jitter these parameters induce.)
struct SbfParams {
  BasicActionWcets Wcets;
  std::uint32_t NumSockets = 1;
};

/// One point of a sweep: analyze \p Tasks under \p Policy with the
/// given config and supply parameters.
struct SweepPoint {
  TaskSet Tasks;
  RtaConfig Cfg;
  SbfParams Sbf;
  SchedPolicy Policy = SchedPolicy::Npfp;
};

/// A thread-safe memoizing view of a pure arrival curve. eval() caches
/// (Delta -> bound) in a sharded map; describe() delegates, so memoized
/// and plain curves render identically everywhere.
class MemoCurve : public ArrivalCurve {
public:
  explicit MemoCurve(ArrivalCurvePtr Inner);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override { return Inner->describe(); }

  /// Forwarded verbatim: a memoized curve must compile to the same flat
  /// table as its inner curve (the default would drop the tail and
  /// force horizon-length scans).
  std::optional<CurveTail> tail() const override { return Inner->tail(); }

  const ArrivalCurvePtr &inner() const { return Inner; }

  /// Cache effectiveness counters (exact; relaxed atomics — ordering is
  /// irrelevant for counts). Miss semantics: a miss is counted only by
  /// the evaluation that actually inserted its Δ into the cache, so
  /// misses() equals the number of distinct Δs cached and can never
  /// exceed the unique-Δ count; when two lanes race on the same Δ, the
  /// race loser counts as a hit. hits() + misses() == eval() calls.
  std::uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return Misses.load(std::memory_order_relaxed);
  }

private:
  static constexpr std::size_t NumShards = 16;
  struct Shard {
    mutable std::shared_mutex M;
    mutable std::unordered_map<Duration, std::uint64_t> Map;
  };

  ArrivalCurvePtr Inner;
  mutable std::array<Shard, NumShards> Shards;
  mutable std::atomic<std::uint64_t> Hits{0};
  mutable std::atomic<std::uint64_t> Misses{0};
};

/// Aggregated MemoCurve effectiveness across a CurveCache.
struct CurveCacheStats {
  std::size_t Curves = 0;   ///< Distinct curves memoized.
  std::uint64_t Hits = 0;   ///< eval() calls answered from a memo.
  std::uint64_t Misses = 0; ///< eval() calls forwarded to the inner curve.
};

/// The sweep-wide cache: one shared MemoCurve per distinct underlying
/// curve object. Keyed by object identity (the pointer), which is safe
/// because the cache holds a shared_ptr to every key it has seen — a
/// cached address can never be recycled for a different curve while the
/// cache lives.
class CurveCache {
public:
  /// Returns the memoized view of \p Curve, creating it on first sight.
  /// Idempotent: the same curve object always yields the same memo.
  ArrivalCurvePtr memoize(const ArrivalCurvePtr &Curve);

  std::size_t size() const;

  /// Sums hit/miss counters over every memoized curve.
  CurveCacheStats stats() const;

private:
  mutable std::mutex M;
  std::unordered_map<const ArrivalCurve *, std::shared_ptr<MemoCurve>> Map;
};

/// Tuning of a SweepRunner.
struct SweepOptions {
  /// Total parallelism; 0 = defaultParallelism(), 1 = fully serial (the
  /// benches' --serial escape hatch).
  unsigned Threads = 0;
  /// Share curve evaluations across points (see MemoCurve). Disabled
  /// only by the equivalence tests and ablation measurements.
  bool MemoizeCurves = true;
  /// Contiguous indices handed to a lane per claim; 0 derives
  /// max(1, Points / (8 · Threads)) — the parallelForChunked default.
  /// Benches expose it as --chunk=N.
  std::size_t ChunkSize = 0;
  /// Seed each point's fixpoints from a demand-dominated predecessor in
  /// its chunk (sound: results are byte-identical either way; disabling
  /// exists for the cold baselines of bench/hotpath).
  bool WarmStarts = true;
};

/// Everything a sweep can report about how it ran (as opposed to what
/// it computed): rendered into the optional "telemetry" block of
/// sweepResultsJson. Results never depend on any of it.
struct SweepTelemetry {
  CurveCacheStats Cache;
  FixpointCounts Fixpoints;
  unsigned Threads = 0;
  std::size_t ChunkSize = 0;
};

/// Evaluates batches of SweepPoints concurrently with deterministic,
/// input-ordered results. Reusable: consecutive run() calls share the
/// pool and the curve cache.
class SweepRunner {
public:
  explicit SweepRunner(SweepOptions Opts = {});

  /// Analyzes every point; Result[i] is the analysis of Points[i].
  std::vector<RtaResult> run(const std::vector<SweepPoint> &Points);

  /// Convenience: allBounded() per point (the acceptance-study shape).
  std::vector<char> runSchedulable(const std::vector<SweepPoint> &Points);

  unsigned threads() const { return Pool.threads(); }
  ThreadPool &pool() { return Pool; }
  CurveCache &cache() { return Cache; }

  /// Snapshot of the cache and fixpoint counters, accumulated since the
  /// last resetTelemetry(). ChunkSize is the chunk of the latest run().
  SweepTelemetry telemetry() const;
  void resetTelemetry() { Tel.reset(); }

  /// Whether point \p To may be warm-started from \p From's result:
  /// same policy and semantic analysis config, identical task structure
  /// (curve object identity, priorities, deadlines), and From's demand
  /// parameters fieldwise ≤ To's (WCETs, socket count, basic-action
  /// WCETs) — everything the least fixpoints are monotone in. Public so
  /// the warm-start tests can probe the predicate directly.
  static bool canSeed(const SweepPoint &From, const SweepPoint &To);

private:
  TaskSet withMemoizedCurves(const TaskSet &Tasks);

  SweepOptions Opts;
  ThreadPool Pool;
  CurveCache Cache;
  FixpointTelemetry Tel;
  /// Chunk size of the latest run(). Atomic because telemetry() is
  /// documented as callable while a run() is in flight on another
  /// thread (the monitor-thread pattern); relaxed is enough — the
  /// reader sees either the previous or the current run's chunk.
  std::atomic<std::size_t> LastChunk{0};
};

/// Renders sweep results as canonical JSON (one object per point, in
/// input order, LF line endings, no locale-dependent formatting). The
/// byte-identity contract between serial and parallel runs is stated —
/// and tested — over this rendering.
std::string sweepResultsJson(const std::vector<SweepPoint> &Points,
                             const std::vector<RtaResult> &Results);

/// The telemetry-carrying rendering: {"results": <plain form>,
/// "telemetry": {...}}. The "results" value is byte-identical to the
/// two-argument overload; the telemetry block (cache hits, fixpoint
/// iteration counts, thread/chunk shape) legitimately varies across
/// thread counts, so byte-identity gates compare the plain form.
std::string sweepResultsJson(const std::vector<SweepPoint> &Points,
                             const std::vector<RtaResult> &Results,
                             const SweepTelemetry &Tel);

} // namespace rprosa

#endif // RPROSA_RTA_SWEEP_H
