//===- rta/compliance.cpp -------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "rta/compliance.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace rprosa;

const Release *ReleaseSequence::findMsg(MsgId Id) const {
  for (const Release &R : Releases)
    if (R.Msg == Id)
      return &R;
  return nullptr;
}

ReleaseSequence rprosa::buildReleaseSequence(const ConversionResult &CR,
                                             const ArrivalSequence &Arr,
                                             bool ZeroJitter) {
  ReleaseSequence Out;
  std::vector<MeasuredJitter> MJ = measureReleaseJitter(CR, Arr);
  const std::vector<Arrival> &Arrivals = Arr.arrivals();
  assert(MJ.size() == Arrivals.size() &&
         "one jitter measurement per arrival");
  for (std::size_t I = 0; I < Arrivals.size(); ++I) {
    Release R;
    R.Msg = Arrivals[I].Msg.Id;
    R.Task = Arrivals[I].Msg.Task;
    R.ArrivalAt = Arrivals[I].At;
    R.Jitter = ZeroJitter ? 0 : MJ[I].Jitter;
    R.ReleaseAt = satAdd(R.ArrivalAt, R.Jitter);
    Out.Releases.push_back(R);
  }
  return Out;
}

namespace {

/// Per-message execution span (start of execution, completion) looked
/// up from the converted run; nullopt when the job never executed.
struct ExecSpan {
  Time Start = 0;
  Time End = 0;
};

std::optional<ExecSpan> execSpanOf(const ConversionResult &CR, MsgId Msg) {
  for (const ConvertedJob &CJ : CR.Jobs) {
    if (CJ.J.Msg != Msg)
      continue;
    std::optional<Time> Start = CR.Sched.startOfExecution(CJ.J.Id);
    std::optional<Time> End = CR.Sched.completionTime(CJ.J.Id);
    if (Start && End)
      return ExecSpan{*Start, *End};
    return std::nullopt;
  }
  return std::nullopt;
}

} // namespace

CheckResult rprosa::checkWorkConservation(const ConversionResult &CR,
                                          const ReleaseSequence &Rel) {
  CheckResult R;
  const Schedule &S = CR.Sched;
  for (const ScheduleSegment &Seg : S.segments()) {
    if (!Seg.State.isIdle())
      continue;
    for (const Release &Job : Rel.Releases) {
      R.noteCheck();
      // The job is "incomplete" from its release to its completion (or
      // forever within this run if it never completes).
      std::optional<ExecSpan> Span = execSpanOf(CR, Job.Msg);
      Time Incomplete = Span ? Span->End : S.endTime();
      Time OverlapLo = std::max(Seg.Start, Job.ReleaseAt);
      Time OverlapHi = std::min(Seg.end(), Incomplete);
      if (OverlapLo < OverlapHi)
        R.addFailure("work conservation violated: processor idle during "
                     "[" + std::to_string(OverlapLo) + ", " +
                     std::to_string(OverlapHi) + ") although message m" +
                     std::to_string(Job.Msg) + " was released at t=" +
                     std::to_string(Job.ReleaseAt) +
                     " and not yet complete");
    }
  }
  return R;
}

CheckResult rprosa::checkPolicyCompliance(const ConversionResult &CR,
                                          const ReleaseSequence &Rel,
                                          const TaskSet &Tasks) {
  CheckResult R;
  for (const Release &Job : Rel.Releases) {
    std::optional<ExecSpan> Span = execSpanOf(CR, Job.Msg);
    if (!Span || Job.Task >= Tasks.size())
      continue;
    Priority P = Tasks.task(Job.Task).Prio;
    Time Start = Span->Start;
    for (const Release &Other : Rel.Releases) {
      if (Other.Msg == Job.Msg || Other.Task >= Tasks.size())
        continue;
      R.noteCheck();
      if (Other.ReleaseAt >= Start)
        continue; // Released at or after the start: cannot precede.
      std::optional<ExecSpan> OtherSpan = execSpanOf(CR, Other.Msg);
      bool StartedBefore = OtherSpan && OtherSpan->Start <= Start;
      if (!StartedBefore && Tasks.task(Other.Task).Prio > P)
        R.addFailure("priority-policy compliance violated: m" +
                     std::to_string(Job.Msg) + " (prio " +
                     std::to_string(P) + ") starts at t=" +
                     std::to_string(Start) + " although m" +
                     std::to_string(Other.Msg) + " (prio " +
                     std::to_string(Tasks.task(Other.Task).Prio) +
                     ") was released at t=" +
                     std::to_string(Other.ReleaseAt) +
                     " and had not executed");
    }
  }
  return R;
}

CheckResult rprosa::checkReleaseCurve(const ReleaseSequence &Rel,
                                      const TaskSet &Tasks,
                                      Duration MaxJitter) {
  CheckResult R;
  // Group release times per task.
  std::vector<std::vector<Time>> PerTask(Tasks.size());
  for (const Release &Rl : Rel.Releases) {
    if (Rl.Task >= Tasks.size()) {
      R.addFailure("release of unknown task");
      continue;
    }
    PerTask[Rl.Task].push_back(Rl.ReleaseAt);
  }
  for (TaskId T = 0; T < PerTask.size(); ++T) {
    std::vector<Time> &Times = PerTask[T];
    std::sort(Times.begin(), Times.end());
    ArrivalCurvePtr Beta = makeReleaseCurve(Tasks.task(T).Curve,
                                            MaxJitter);
    for (std::size_t J = 0; J < Times.size(); ++J) {
      for (std::size_t K = J; K < Times.size(); ++K) {
        R.noteCheck();
        Duration WindowLen = Times[K] - Times[J] + 1;
        std::uint64_t Count = K - J + 1;
        if (Count > Beta->eval(WindowLen)) {
          R.addFailure("release curve violated for task " +
                       Tasks.task(T).Name + ": " + std::to_string(Count) +
                       " releases in a window of length " +
                       std::to_string(WindowLen));
          K = Times.size();
          J = Times.size();
        }
      }
    }
  }
  return R;
}

CheckResult rprosa::checkReleaseCurve(const ReleaseSequence &Rel,
                                      const TaskSet &Tasks,
                                      const TimingInputs &In,
                                      std::uint32_t NumSockets) {
  Duration J =
      maxReleaseJitter(OverheadBounds::compute(In.Wcets, NumSockets));
  return checkReleaseCurve(Rel, Tasks, J);
}
