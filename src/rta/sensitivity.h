//===- rta/sensitivity.h - Parameter sensitivity of the bounds ------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deployment-facing "what-if" analysis on top of the RTA: how much can
/// a parameter grow before schedulability is lost? The WCETs are
/// *assumed* inputs (§2.3) typically obtained from measurement or
/// static analysis; their margin of error matters. For each knob the
/// module binary-searches the largest multiplier (in percent) under
/// which every task still has a bound:
///
///  - a task's callback WCET C_i,
///  - all basic-action WCETs together (the scheduler gets slower),
///  - the socket count (integer search).
///
/// Schedulability is antitone in each knob, so bracketing search
/// applies. The searches run on a SweepRunner: each narrowing round
/// evaluates a batch of probes concurrently (K-section search, K =
/// the runner's thread count). Under antitonicity the schedulability
/// boundary is unique, so the multiway search returns *exactly* the
/// value the classic serial binary search returns — only faster. The
/// overloads without a runner use a private serial one.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_RTA_SENSITIVITY_H
#define RPROSA_RTA_SENSITIVITY_H

#include "rta/sweep.h"

namespace rprosa {

/// The outcome of one knob's search: the largest sustainable scale, in
/// percent of the nominal value (>= 100 when the nominal system is
/// schedulable; 0 when even the nominal system is not).
struct SensitivityResult {
  std::uint64_t MaxScalePercent = 0;
  bool NominalSchedulable = false;
};

/// Largest multiplier for task \p I's callback WCET.
SensitivityResult callbackWcetSlack(SweepRunner &Runner,
                                    const TaskSet &Tasks,
                                    const BasicActionWcets &W,
                                    std::uint32_t NumSockets, TaskId I,
                                    SchedPolicy Policy = SchedPolicy::Npfp,
                                    std::uint64_t MaxPercent = 100000);
SensitivityResult callbackWcetSlack(const TaskSet &Tasks,
                                    const BasicActionWcets &W,
                                    std::uint32_t NumSockets, TaskId I,
                                    SchedPolicy Policy = SchedPolicy::Npfp,
                                    std::uint64_t MaxPercent = 100000);

/// Largest multiplier applied to ALL basic-action WCETs at once.
SensitivityResult schedulerWcetSlack(SweepRunner &Runner,
                                     const TaskSet &Tasks,
                                     const BasicActionWcets &W,
                                     std::uint32_t NumSockets,
                                     SchedPolicy Policy =
                                         SchedPolicy::Npfp,
                                     std::uint64_t MaxPercent = 100000);
SensitivityResult schedulerWcetSlack(const TaskSet &Tasks,
                                     const BasicActionWcets &W,
                                     std::uint32_t NumSockets,
                                     SchedPolicy Policy =
                                         SchedPolicy::Npfp,
                                     std::uint64_t MaxPercent = 100000);

/// Largest socket count that stays schedulable (0 if none; searches up
/// to \p MaxSockets).
std::uint32_t socketSlack(SweepRunner &Runner, const TaskSet &Tasks,
                          const BasicActionWcets &W,
                          std::uint32_t MaxSockets = 4096,
                          SchedPolicy Policy = SchedPolicy::Npfp);
std::uint32_t socketSlack(const TaskSet &Tasks, const BasicActionWcets &W,
                          std::uint32_t MaxSockets = 4096,
                          SchedPolicy Policy = SchedPolicy::Npfp);

} // namespace rprosa

#endif // RPROSA_RTA_SENSITIVITY_H
