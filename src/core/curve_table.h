//===- core/curve_table.h - Flat step-function curve kernels --------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hot path of every response-time analysis is arrival-curve
/// evaluation inside fixpoint iteration: each Kleene iterate sums
/// β_k(Δ) over tasks, and the SBF's job bound sums them again. With the
/// polymorphic ArrivalCurve tree each of those evaluations is a chain
/// of virtual calls behind shared_ptrs (Shifted → Sum → parts...), or —
/// under the sweep engine's MemoCurve — a sharded hash-map lookup
/// through a shared_mutex.
///
/// FlatCurveTable compiles a curve once into a contiguous step-function
/// table: strictly increasing breakpoints `Breaks` with values `Vals`,
/// where eval(Δ) = Vals[i] for the largest i with Breaks[i] ≤ Δ. Eval
/// is then a branch-free binary search over one cache-resident array —
/// or a direct index into a dense value array when the covered range is
/// small. Beyond the compiled range:
///
///  - if the curve certified an exact eventually-periodic tail
///    (ArrivalCurve::tail()), only one tail period of breakpoints is
///    compiled and larger Δ extrapolate by whole periods — *exactly*,
///    in the same wrapping uint64 arithmetic the curve itself uses;
///  - otherwise (or past the tail's ValidTo guard) eval falls back to
///    the source curve, which is exact by definition.
///
/// Equivalence `flat.eval(Δ) == curve.eval(Δ)` for every Δ — including
/// the saturation edge near UINT64_MAX — is asserted by
/// tests/curve_table_test.cpp over every curve shape in the library.
///
/// FlatReleaseSet packages what an analysis run actually needs: one
/// table per task's arrival curve α_i plus the common release jitter J,
/// so every release-curve evaluation β_i(Δ) = α_i(Δ + J) is an offset
/// into the task's table rather than a ShiftedCurve virtual chain.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_CURVE_TABLE_H
#define RPROSA_CORE_CURVE_TABLE_H

#include "core/arrival_curve.h"
#include "core/time.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rprosa {

/// Tuning of FlatCurveTable compilation.
struct FlatCompileOptions {
  /// Hard cap on the number of breakpoints compiled for curves without
  /// a certified tail; beyond the covered range eval falls back to the
  /// source curve.
  std::size_t MaxBreakpoints = 1 << 14;
  /// When the covered range fits, additionally build a dense
  /// value-per-tick array for O(1) direct-index eval.
  std::size_t DenseLimit = 1 << 16;
};

/// A compiled step-function view of one ArrivalCurve. Immutable after
/// construction and lock-free to evaluate, so one table may be shared
/// across sweep threads freely.
class FlatCurveTable {
public:
  FlatCurveTable() = default;

  /// Compiles \p Curve for queries up to \p Horizon. Queries beyond the
  /// horizon stay exact (tail extrapolation or source fallback), only
  /// potentially slower.
  explicit FlatCurveTable(ArrivalCurvePtr Curve,
                          Duration Horizon = 100 * TickSec,
                          FlatCompileOptions Opts = FlatCompileOptions());

  /// Exactly Source->eval(Delta), via the table.
  std::uint64_t eval(Duration Delta) const {
    if (Delta <= Covered) {
      if (!DenseVals.empty())
        return DenseVals[Delta];
      return evalSearch(Delta);
    }
    return evalBeyond(Delta);
  }

  const ArrivalCurvePtr &source() const { return Source; }
  /// The last Δ the breakpoint table answers directly.
  Duration covered() const { return Covered; }
  std::size_t breakpoints() const { return Breaks.size(); }
  bool hasTail() const { return HasTail; }
  bool dense() const { return !DenseVals.empty(); }

private:
  /// Branch-free binary search for the largest breakpoint ≤ Delta.
  /// Requires Delta ≤ Covered (Breaks[0] == 0 anchors the search).
  std::uint64_t evalSearch(Duration Delta) const {
    const Duration *Base = Breaks.data();
    std::size_t N = Breaks.size();
    while (std::size_t Half = N / 2) {
      // With cmov this loop is branchless; the array is contiguous and
      // hot, so the search is a handful of L1 hits.
      Base += (Base[Half] <= Delta) ? Half : 0;
      N -= Half;
    }
    return Vals[static_cast<std::size_t>(Base - Breaks.data())];
  }

  std::uint64_t evalBeyond(Duration Delta) const;

  ArrivalCurvePtr Source;
  std::vector<Duration> Breaks; ///< Strictly increasing, Breaks[0] == 0.
  std::vector<std::uint64_t> Vals; ///< Vals[i] = eval(Breaks[i]).
  std::vector<std::uint64_t> DenseVals; ///< Optional: value per tick.
  Duration Covered = 0;
  Duration TailPeriod = 0;
  std::uint64_t TailIncrement = 0;
  Duration TailValidTo = 0;
  bool HasTail = false;
};

/// The per-run curve compilation the analyses evaluate through: one
/// FlatCurveTable per task arrival curve α_i plus the common release
/// jitter, so β_i(Δ) = α_i(Δ + J) (jitter.h's ShiftedCurve semantics,
/// including β_i(0) = 0) is one table lookup.
class FlatReleaseSet {
public:
  /// Compiles each of \p Alphas for release-curve queries up to
  /// \p Horizon (the shift is added internally, so pass the analysis
  /// horizon, not the pre-shifted one).
  FlatReleaseSet(const std::vector<ArrivalCurvePtr> &Alphas, Duration Shift,
                 Duration Horizon);

  /// β_i(Δ) = α_i(Δ + J) for Δ > 0, 0 at Δ = 0 — bit-identical to
  /// evaluating jitter.h's makeReleaseCurve(α_i, J).
  std::uint64_t evalRelease(std::size_t I, Duration Delta) const {
    if (Delta == 0)
      return 0;
    return Tables[I].eval(satAdd(Delta, Shift));
  }

  std::size_t size() const { return Tables.size(); }
  Duration shift() const { return Shift; }
  const FlatCurveTable &table(std::size_t I) const { return Tables[I]; }

private:
  std::vector<FlatCurveTable> Tables;
  Duration Shift = 0;
};

/// A single-task view of a FlatReleaseSet modeling the monotone
/// evaluator concept of minWindowAdmittingIn (arrival_curve.h), so the
/// RTA offset walk runs on the flat kernel too.
class FlatReleaseView {
public:
  FlatReleaseView(const FlatReleaseSet &Set, std::size_t I)
      : Set(&Set), Idx(I) {}

  std::uint64_t eval(Duration Delta) const {
    return Set->evalRelease(Idx, Delta);
  }

private:
  const FlatReleaseSet *Set;
  std::size_t Idx;
};

} // namespace rprosa

#endif // RPROSA_CORE_CURVE_TABLE_H
