//===- core/task.h - Task types and task sets (statics, §4.1) -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *statics* of the abstract model (§4.1): a set of n distinct task
/// types τ_1..τ_n, each with a callback WCET C_i, a fixed priority P_i,
/// and an arrival curve α_i.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_TASK_H
#define RPROSA_CORE_TASK_H

#include "core/arrival_curve.h"
#include "core/ids.h"
#include "core/time.h"
#include "support/check.h"

#include <string>
#include <vector>

namespace rprosa {

/// One task type: the common characteristics of the jobs that run its
/// callback.
struct Task {
  TaskId Id = InvalidTaskId;
  std::string Name;
  /// Callback worst-case execution time C_i (Thm. 5.1 requires > 0).
  Duration Wcet = 0;
  /// Fixed priority P_i; larger value = higher priority. Used by the
  /// NPFP policy (Rössl's default); ignored by EDF/FIFO.
  Priority Prio = 0;
  /// Relative deadline D_i, used by the EDF policy extension (the job's
  /// EDF key is its read time + D_i). 0 means "not specified"; the EDF
  /// scheduler and analysis reject such tasks.
  Duration Deadline = 0;
  /// Arrival curve α_i bounding this task's job arrival rate.
  ArrivalCurvePtr Curve;
};

/// An immutable-after-setup collection of tasks, indexed by TaskId.
class TaskSet {
public:
  /// Adds a task and returns its id (ids are assigned densely, in
  /// insertion order). \p Deadline is only needed for the EDF policy.
  TaskId addTask(std::string Name, Duration Wcet, Priority Prio,
                 ArrivalCurvePtr Curve, Duration Deadline = 0);

  /// The largest callback WCET over all tasks except \p Id (0 when
  /// alone). The non-preemptive blocking term of the deadline- and
  /// order-driven policies (EDF, FIFO), where any other task's job may
  /// have just started.
  Duration maxOtherWcet(TaskId Id) const;

  const Task &task(TaskId Id) const;
  std::size_t size() const { return Tasks.size(); }
  bool empty() const { return Tasks.empty(); }

  const std::vector<Task> &tasks() const { return Tasks; }

  /// Tasks with strictly higher priority than \p Id (hp(i)).
  std::vector<TaskId> higherPriority(TaskId Id) const;
  /// Tasks with higher-or-equal priority, *excluding* \p Id itself
  /// (used with the task's own curve accounted separately).
  std::vector<TaskId> higherOrEqualPriorityOthers(TaskId Id) const;
  /// Tasks with strictly lower priority than \p Id (lp(i)).
  std::vector<TaskId> lowerPriority(TaskId Id) const;

  /// The largest callback WCET among tasks with lower priority than
  /// \p Id; 0 when there is none. This is the non-preemptive blocking
  /// source of the NPFP analysis.
  Duration maxLowerPriorityWcet(TaskId Id) const;

  /// Checks the model's static side conditions: non-empty, C_i > 0,
  /// curves present and well-formed.
  CheckResult validate(Duration CurveProbeHorizon = 100 * TickMs) const;

private:
  std::vector<Task> Tasks;
};

} // namespace rprosa

#endif // RPROSA_CORE_TASK_H
