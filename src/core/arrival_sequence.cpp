//===- core/arrival_sequence.cpp ------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/arrival_sequence.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <string>

using namespace rprosa;

Time rprosa::earliestCompliantArrival(const ArrivalCurve &Curve,
                                      const std::vector<Time> &Prev,
                                      Time Proposed) {
  Time Earliest = Proposed;
  // Constraint from each suffix of previous arrivals: the K arrivals
  // Prev[J..] plus the new one fit in a window of length
  // (t - Prev[J] + 1), which must admit K+1 arrivals.
  for (std::size_t J = 0; J < Prev.size(); ++J) {
    std::uint64_t Count = Prev.size() - J + 1;
    Duration NeedLen = minWindowAdmitting(Curve, Count);
    if (NeedLen == TimeInfinity)
      return TimeInfinity; // Curve admits no more arrivals, ever.
    // Need t - Prev[J] + 1 >= NeedLen, i.e. t >= Prev[J] + NeedLen - 1.
    Time Bound = satAdd(Prev[J], NeedLen - 1);
    if (Bound > Earliest)
      Earliest = Bound;
  }
  return Earliest;
}

void ArrivalSequence::addArrival(Time At, SocketId Socket, Message Msg) {
  assert(Socket < NumSockets && "socket out of range");
  Items.push_back(Arrival{At, Socket, Msg});
  Sorted = false;
  if (Msg.Id >= NextMsgId)
    NextMsgId = Msg.Id + 1;
}

MsgId ArrivalSequence::addArrival(Time At, SocketId Socket, TaskId Task,
                                  std::uint32_t PayloadLen) {
  Message M;
  M.Id = NextMsgId++;
  M.Task = Task;
  M.PayloadLen = PayloadLen;
  addArrival(At, Socket, M);
  return M.Id;
}

void ArrivalSequence::ensureSorted() const {
  if (Sorted)
    return;
  std::stable_sort(Items.begin(), Items.end(),
                   [](const Arrival &A, const Arrival &B) {
                     if (A.At != B.At)
                       return A.At < B.At;
                     if (A.Socket != B.Socket)
                       return A.Socket < B.Socket;
                     return A.Msg.Id < B.Msg.Id;
                   });
  Sorted = true;
}

const std::vector<Arrival> &ArrivalSequence::arrivals() const {
  ensureSorted();
  return Items;
}

std::vector<Arrival> ArrivalSequence::arrivalsOn(SocketId Socket) const {
  ensureSorted();
  std::vector<Arrival> Out;
  for (const Arrival &A : Items)
    if (A.Socket == Socket)
      Out.push_back(A);
  return Out;
}

std::optional<Arrival> ArrivalSequence::findMsg(MsgId Id) const {
  for (const Arrival &A : Items)
    if (A.Msg.Id == Id)
      return A;
  return std::nullopt;
}

std::uint64_t ArrivalSequence::countInWindow(TaskId Task, Time From,
                                             Time To) const {
  ensureSorted();
  std::uint64_t N = 0;
  for (const Arrival &A : Items) {
    if (A.At >= To)
      break;
    if (A.At >= From && A.Msg.Task == Task)
      ++N;
  }
  return N;
}

Time ArrivalSequence::lastArrivalTime() const {
  ensureSorted();
  return Items.empty() ? 0 : Items.back().At;
}

CheckResult ArrivalSequence::respectsCurves(const TaskSet &Tasks) const {
  ensureSorted();
  CheckResult R;
  // Group arrival times per task.
  std::map<TaskId, std::vector<Time>> PerTask;
  for (const Arrival &A : Items) {
    if (A.Msg.Task >= Tasks.size()) {
      R.addFailure("arrival of unknown task id " +
                   std::to_string(A.Msg.Task));
      continue;
    }
    PerTask[A.Msg.Task].push_back(A.At);
  }
  // For each pair of arrival indices (J, K) of the same task, the K-J+1
  // arrivals at times T_J..T_K fit into a half-open window of length
  // T_K - T_J + 1, so the curve must admit that many.
  for (auto &[TaskIdV, Times] : PerTask) {
    const ArrivalCurve &Curve = *Tasks.task(TaskIdV).Curve;
    for (std::size_t J = 0; J < Times.size(); ++J) {
      for (std::size_t K = J; K < Times.size(); ++K) {
        R.noteCheck();
        Duration WindowLen = Times[K] - Times[J] + 1;
        std::uint64_t Count = K - J + 1;
        if (Count > Curve.eval(WindowLen)) {
          R.addFailure("task " + Tasks.task(TaskIdV).Name + ": " +
                       std::to_string(Count) + " arrivals in a window of "
                       "length " + std::to_string(WindowLen) +
                       " exceed the curve bound " +
                       std::to_string(Curve.eval(WindowLen)));
          // One diagnostic per task keeps the output readable.
          K = Times.size();
          J = Times.size();
        }
      }
    }
  }
  return R;
}

CheckResult ArrivalSequence::uniqueMsgIds() const {
  CheckResult R;
  std::set<MsgId> Seen;
  for (const Arrival &A : Items) {
    R.noteCheck();
    if (!Seen.insert(A.Msg.Id).second)
      R.addFailure("duplicate message id " + std::to_string(A.Msg.Id));
  }
  return R;
}
