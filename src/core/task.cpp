//===- core/task.cpp ------------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/task.h"

#include <cassert>

using namespace rprosa;

TaskId TaskSet::addTask(std::string Name, Duration Wcet, Priority Prio,
                        ArrivalCurvePtr Curve, Duration Deadline) {
  Task T;
  T.Id = static_cast<TaskId>(Tasks.size());
  T.Name = std::move(Name);
  T.Wcet = Wcet;
  T.Prio = Prio;
  T.Deadline = Deadline;
  T.Curve = std::move(Curve);
  Tasks.push_back(std::move(T));
  return Tasks.back().Id;
}

Duration TaskSet::maxOtherWcet(TaskId Id) const {
  Duration Max = 0;
  for (const Task &T : Tasks)
    if (T.Id != Id && T.Wcet > Max)
      Max = T.Wcet;
  return Max;
}

const Task &TaskSet::task(TaskId Id) const {
  assert(Id < Tasks.size() && "task id out of range");
  return Tasks[Id];
}

std::vector<TaskId> TaskSet::higherPriority(TaskId Id) const {
  std::vector<TaskId> Out;
  Priority P = task(Id).Prio;
  for (const Task &T : Tasks)
    if (T.Id != Id && T.Prio > P)
      Out.push_back(T.Id);
  return Out;
}

std::vector<TaskId> TaskSet::higherOrEqualPriorityOthers(TaskId Id) const {
  std::vector<TaskId> Out;
  Priority P = task(Id).Prio;
  for (const Task &T : Tasks)
    if (T.Id != Id && T.Prio >= P)
      Out.push_back(T.Id);
  return Out;
}

std::vector<TaskId> TaskSet::lowerPriority(TaskId Id) const {
  std::vector<TaskId> Out;
  Priority P = task(Id).Prio;
  for (const Task &T : Tasks)
    if (T.Id != Id && T.Prio < P)
      Out.push_back(T.Id);
  return Out;
}

Duration TaskSet::maxLowerPriorityWcet(TaskId Id) const {
  Duration Max = 0;
  for (TaskId K : lowerPriority(Id))
    if (task(K).Wcet > Max)
      Max = task(K).Wcet;
  return Max;
}

CheckResult TaskSet::validate(Duration CurveProbeHorizon) const {
  CheckResult R;
  R.noteCheck();
  if (Tasks.empty())
    R.addFailure("task set is empty");
  for (const Task &T : Tasks) {
    R.noteCheck(2);
    if (T.Wcet == 0)
      R.addFailure("task '" + T.Name + "' has zero WCET (Thm. 5.1 requires "
                   "0 < C_i)");
    if (!T.Curve) {
      R.addFailure("task '" + T.Name + "' has no arrival curve");
      continue;
    }
    R.merge(T.Curve->validate(CurveProbeHorizon));
  }
  return R;
}
