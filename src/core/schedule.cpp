//===- core/schedule.cpp --------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/schedule.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace rprosa;

void Schedule::append(ProcState State, Duration Len) {
  if (Len == 0)
    return;
  if (!Segments.empty() && Segments.back().State == State) {
    Segments.back().Len += Len;
    return;
  }
  ScheduleSegment Seg;
  Seg.Start = endTime();
  Seg.Len = Len;
  Seg.State = State;
  Segments.push_back(Seg);
}

ProcState Schedule::stateAt(Time T) const {
  // Binary search for the segment containing T.
  if (T < StartTime || Segments.empty() || T >= endTime())
    return ProcState::idle();
  auto It = std::upper_bound(
      Segments.begin(), Segments.end(), T,
      [](Time V, const ScheduleSegment &S) { return V < S.Start; });
  assert(It != Segments.begin() && "segment lookup underflow");
  --It;
  assert(T >= It->Start && T < It->end() && "segment lookup failed");
  return It->State;
}

/// Computes the overlap of [From, To) with segments satisfying Pred.
template <typename PredT>
static Duration accumulateOverlap(const std::vector<ScheduleSegment> &Segs,
                                  Time From, Time To, PredT Pred) {
  Duration Sum = 0;
  for (const ScheduleSegment &S : Segs) {
    if (S.end() <= From)
      continue;
    if (S.Start >= To)
      break;
    if (!Pred(S.State))
      continue;
    Time Lo = std::max(S.Start, From);
    Time Hi = std::min(S.end(), To);
    Sum += Hi - Lo;
  }
  return Sum;
}

Duration Schedule::timeInState(const ProcState &St, Time From, Time To) const {
  return accumulateOverlap(Segments, From, To,
                           [&](const ProcState &S) { return S == St; });
}

Duration Schedule::blackoutIn(Time From, Time To) const {
  return accumulateOverlap(Segments, From, To,
                           [](const ProcState &S) { return S.isOverhead(); });
}

Duration Schedule::supplyIn(Time From, Time To) const {
  // Instants outside the covered range count as Idle, i.e. as supply.
  Time CoverFrom = std::max(From, StartTime);
  Time CoverTo = std::min(To, endTime());
  Duration Uncovered = (To - From) - (CoverTo > CoverFrom
                                          ? CoverTo - CoverFrom
                                          : 0);
  return Uncovered + accumulateOverlap(Segments, From, To,
                                       [](const ProcState &S) {
                                         return S.providesSupply();
                                       });
}

Duration Schedule::serviceIn(JobId J, Time From, Time To) const {
  return accumulateOverlap(Segments, From, To, [&](const ProcState &S) {
    return S.isExecuting() && S.Job == J;
  });
}

std::optional<Time> Schedule::completionTime(JobId J) const {
  std::optional<Time> Last;
  for (const ScheduleSegment &S : Segments)
    if (S.State.isExecuting() && S.State.Job == J)
      Last = S.end();
  return Last;
}

std::optional<Time> Schedule::startOfExecution(JobId J) const {
  for (const ScheduleSegment &S : Segments)
    if (S.State.isExecuting() && S.State.Job == J)
      return S.Start;
  return std::nullopt;
}

std::vector<JobId> Schedule::executedJobs() const {
  std::vector<JobId> Out;
  for (const ScheduleSegment &S : Segments) {
    if (!S.State.isExecuting())
      continue;
    if (std::find(Out.begin(), Out.end(), S.State.Job) == Out.end())
      Out.push_back(S.State.Job);
  }
  return Out;
}

std::vector<Time> Schedule::busyWindowAnchors() const {
  std::vector<Time> Anchors = {StartTime};
  for (std::size_t I = 1; I < Segments.size(); ++I)
    if (Segments[I - 1].State.isIdle() && !Segments[I].State.isIdle())
      Anchors.push_back(Segments[I].Start);
  return Anchors;
}

std::vector<std::pair<Time, Time>> Schedule::busyPeriods() const {
  std::vector<std::pair<Time, Time>> Out;
  for (const ScheduleSegment &S : Segments) {
    if (S.State.isIdle())
      continue;
    if (!Out.empty() && Out.back().second == S.Start)
      Out.back().second = S.end();
    else
      Out.emplace_back(S.Start, S.end());
  }
  return Out;
}

CheckResult Schedule::validateStructure() const {
  CheckResult R;
  Time Cursor = StartTime;
  for (std::size_t I = 0; I < Segments.size(); ++I) {
    const ScheduleSegment &S = Segments[I];
    R.noteCheck(3);
    if (S.Start != Cursor)
      R.addFailure("schedule gap before segment " + std::to_string(I));
    if (S.Len == 0)
      R.addFailure("zero-length segment " + std::to_string(I));
    if (I > 0 && Segments[I - 1].State == S.State)
      R.addFailure("uncoalesced equal segments at " + std::to_string(I));
    Cursor = S.end();
  }
  return R;
}
