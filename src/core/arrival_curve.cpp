//===- core/arrival_curve.cpp ---------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/arrival_curve.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace rprosa;

CheckResult ArrivalCurve::validate(Duration Horizon) const {
  CheckResult R;
  R.noteCheck();
  if (eval(0) != 0)
    R.addFailure("arrival curve violates eval(0) == 0: " + describe());
  // Probe a coarse grid for monotonicity; a full scan is infeasible for
  // ns-granularity horizons, and curve implementations are simple enough
  // that grid probing catches sign errors.
  std::uint64_t Prev = 0;
  Duration Step = Horizon / 256 + 1;
  for (Duration D = 0; D <= Horizon; D = satAdd(D, Step)) {
    R.noteCheck();
    std::uint64_t V = eval(D);
    if (V < Prev) {
      R.addFailure("arrival curve not monotone at Delta=" +
                   std::to_string(D) + ": " + describe());
      break;
    }
    Prev = V;
    if (D == TimeInfinity)
      break;
  }
  return R;
}

PeriodicCurve::PeriodicCurve(Duration Period) : Period(Period) {
  assert(Period > 0 && "period must be positive");
}

std::uint64_t PeriodicCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  // ⌈Δ/T⌉ without overflow.
  return (Delta - 1) / Period + 1;
}

std::string PeriodicCurve::describe() const {
  return "periodic(T=" + std::to_string(Period) + ")";
}

LeakyBucketCurve::LeakyBucketCurve(std::uint64_t Burst, Duration Rate)
    : Burst(Burst), Rate(Rate) {
  assert(Burst > 0 && "burst must admit at least one arrival");
  assert(Rate > 0 && "rate separation must be positive");
}

std::uint64_t LeakyBucketCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  return Burst + Delta / Rate;
}

std::string LeakyBucketCurve::describe() const {
  return "leaky-bucket(b=" + std::to_string(Burst) +
         ", r=1/" + std::to_string(Rate) + ")";
}

StaircaseCurve::StaircaseCurve(std::vector<Step> Steps, Duration TailPeriod)
    : Steps(std::move(Steps)), TailPeriod(TailPeriod) {
  assert(!this->Steps.empty() && "need at least one step");
  for (std::size_t I = 1; I < this->Steps.size(); ++I) {
    assert(this->Steps[I - 1].UpToLength < this->Steps[I].UpToLength &&
           "steps must be sorted by window length");
    assert(this->Steps[I - 1].Bound <= this->Steps[I].Bound &&
           "bounds must be non-decreasing");
  }
}

std::uint64_t StaircaseCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  const Step *Best = nullptr;
  for (const Step &S : Steps) {
    if (Delta <= S.UpToLength) {
      Best = &S;
      break;
    }
  }
  if (Best)
    return Best->Bound;
  const Step &Last = Steps.back();
  if (TailPeriod == 0)
    return Last.Bound;
  return Last.Bound + (Delta - Last.UpToLength) / TailPeriod;
}

std::string StaircaseCurve::describe() const {
  return "staircase(" + std::to_string(Steps.size()) + " steps)";
}

PeriodicJitterCurve::PeriodicJitterCurve(Duration Period, Duration Jit)
    : Period(Period), Jit(Jit) {
  assert(Period > 0 && "period must be positive");
}

std::uint64_t PeriodicJitterCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  // ⌈(Δ + Jit)/T⌉.
  Duration Num = satAdd(Delta, Jit);
  return (Num - 1) / Period + 1;
}

std::string PeriodicJitterCurve::describe() const {
  return "periodic-jitter(T=" + std::to_string(Period) +
         ", J=" + std::to_string(Jit) + ")";
}

SumCurve::SumCurve(std::vector<ArrivalCurvePtr> Parts)
    : Parts(std::move(Parts)) {
  assert(!this->Parts.empty() && "sum of zero curves");
  for ([[maybe_unused]] const ArrivalCurvePtr &P : this->Parts)
    assert(P && "missing summand");
}

std::uint64_t SumCurve::eval(Duration Delta) const {
  std::uint64_t Sum = 0;
  for (const ArrivalCurvePtr &P : Parts)
    Sum += P->eval(Delta);
  return Sum;
}

std::string SumCurve::describe() const {
  return "sum(" + std::to_string(Parts.size()) + " curves)";
}

MinCurve::MinCurve(ArrivalCurvePtr A, ArrivalCurvePtr B)
    : A(std::move(A)), B(std::move(B)) {
  assert(this->A && this->B && "missing operand");
}

std::uint64_t MinCurve::eval(Duration Delta) const {
  return std::min(A->eval(Delta), B->eval(Delta));
}

std::string MinCurve::describe() const {
  return "min(" + A->describe() + ", " + B->describe() + ")";
}

ScaledCurve::ScaledCurve(ArrivalCurvePtr Inner, std::uint64_t Factor)
    : Inner(std::move(Inner)), Factor(Factor) {
  assert(this->Inner && "missing inner curve");
  assert(Factor > 0 && "zero scale makes a zero curve; use ZeroCurve");
}

std::uint64_t ScaledCurve::eval(Duration Delta) const {
  return Factor * Inner->eval(Delta);
}

std::string ScaledCurve::describe() const {
  return std::to_string(Factor) + "x(" + Inner->describe() + ")";
}

Duration rprosa::minWindowAdmitting(const ArrivalCurve &Curve,
                                    std::uint64_t Count, Duration SearchCap) {
  if (Count == 0)
    return 0;
  // Doubling phase: find some window admitting Count.
  Duration Hi = 1;
  while (Curve.eval(Hi) < Count) {
    if (Hi >= SearchCap)
      return TimeInfinity;
    Hi = satMul(Hi, 2);
    if (Hi > SearchCap)
      Hi = SearchCap;
  }
  // Binary search for the smallest such window.
  Duration Lo = 1;
  while (Lo < Hi) {
    Duration Mid = Lo + (Hi - Lo) / 2;
    if (Curve.eval(Mid) >= Count)
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  return Hi;
}

ShiftedCurve::ShiftedCurve(ArrivalCurvePtr Inner, Duration Shift)
    : Inner(std::move(Inner)), Shift(Shift) {
  assert(this->Inner && "inner curve required");
}

std::uint64_t ShiftedCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  return Inner->eval(satAdd(Delta, Shift));
}

std::string ShiftedCurve::describe() const {
  return Inner->describe() + "+shift(" + std::to_string(Shift) + ")";
}
