//===- core/arrival_curve.cpp ---------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/arrival_curve.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <string>

using namespace rprosa;

CheckResult ArrivalCurve::validate(Duration Horizon) const {
  CheckResult R;
  R.noteCheck();
  if (eval(0) != 0)
    R.addFailure("arrival curve violates eval(0) == 0: " + describe());
  // Probe a coarse grid for monotonicity; a full scan is infeasible for
  // ns-granularity horizons, and curve implementations are simple enough
  // that grid probing catches sign errors.
  std::uint64_t Prev = 0;
  Duration Step = Horizon / 256 + 1;
  for (Duration D = 0; D <= Horizon; D = satAdd(D, Step)) {
    R.noteCheck();
    std::uint64_t V = eval(D);
    if (V < Prev) {
      R.addFailure("arrival curve not monotone at Delta=" +
                   std::to_string(D) + ": " + describe());
      break;
    }
    Prev = V;
    if (D == TimeInfinity)
      break;
  }
  return R;
}

PeriodicCurve::PeriodicCurve(Duration Period) : Period(Period) {
  assert(Period > 0 && "period must be positive");
}

std::uint64_t PeriodicCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  // ⌈Δ/T⌉ without overflow.
  return (Delta - 1) / Period + 1;
}

std::string PeriodicCurve::describe() const {
  return "periodic(T=" + std::to_string(Period) + ")";
}

std::optional<CurveTail> PeriodicCurve::tail() const {
  // ⌈(Δ+T)/T⌉ = ⌈Δ/T⌉ + 1, and Δ + T never overflows below the bound.
  return CurveTail{Period, 1, 0, TimeInfinity - Period};
}

LeakyBucketCurve::LeakyBucketCurve(std::uint64_t Burst, Duration Rate)
    : Burst(Burst), Rate(Rate) {
  assert(Burst > 0 && "burst must admit at least one arrival");
  assert(Rate > 0 && "rate separation must be positive");
}

std::uint64_t LeakyBucketCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  return Burst + Delta / Rate;
}

std::string LeakyBucketCurve::describe() const {
  return "leaky-bucket(b=" + std::to_string(Burst) +
         ", r=1/" + std::to_string(Rate) + ")";
}

std::optional<CurveTail> LeakyBucketCurve::tail() const {
  // B + (Δ+R)/R = eval(Δ) + 1 — from 1 (the Δ = 0 special case breaks
  // the step at the origin). The sum B + Δ/R wraps mod 2^64 just like
  // extrapolated table values do, so the recurrence is exact everywhere.
  return CurveTail{Rate, 1, 1, TimeInfinity - Rate};
}

StaircaseCurve::StaircaseCurve(std::vector<Step> Steps, Duration TailPeriod)
    : Steps(std::move(Steps)), TailPeriod(TailPeriod) {
  assert(!this->Steps.empty() && "need at least one step");
  for (std::size_t I = 1; I < this->Steps.size(); ++I) {
    assert(this->Steps[I - 1].UpToLength < this->Steps[I].UpToLength &&
           "steps must be sorted by window length");
    assert(this->Steps[I - 1].Bound <= this->Steps[I].Bound &&
           "bounds must be non-decreasing");
  }
}

std::uint64_t StaircaseCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  const Step *Best = nullptr;
  for (const Step &S : Steps) {
    if (Delta <= S.UpToLength) {
      Best = &S;
      break;
    }
  }
  if (Best)
    return Best->Bound;
  const Step &Last = Steps.back();
  if (TailPeriod == 0)
    return Last.Bound;
  return Last.Bound + (Delta - Last.UpToLength) / TailPeriod;
}

std::string StaircaseCurve::describe() const {
  return "staircase(" + std::to_string(Steps.size()) + " steps)";
}

std::optional<CurveTail> StaircaseCurve::tail() const {
  const Step &Last = Steps.back();
  // Beyond the last explicit step the curve is Last.Bound plus one
  // arrival per TailPeriod (or constant when TailPeriod == 0).
  Duration From = satAdd(Last.UpToLength, 1);
  if (From == TimeInfinity)
    return std::nullopt;
  if (TailPeriod == 0)
    return CurveTail{1, 0, From, TimeInfinity - 1};
  if (TimeInfinity - TailPeriod < From)
    return std::nullopt;
  return CurveTail{TailPeriod, 1, From, TimeInfinity - TailPeriod};
}

PeriodicJitterCurve::PeriodicJitterCurve(Duration Period, Duration Jit)
    : Period(Period), Jit(Jit) {
  assert(Period > 0 && "period must be positive");
}

std::uint64_t PeriodicJitterCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  // ⌈(Δ + Jit)/T⌉.
  Duration Num = satAdd(Delta, Jit);
  return (Num - 1) / Period + 1;
}

std::string PeriodicJitterCurve::describe() const {
  return "periodic-jitter(T=" + std::to_string(Period) +
         ", J=" + std::to_string(Jit) + ")";
}

std::optional<CurveTail> PeriodicJitterCurve::tail() const {
  // ⌈(Δ+T+Jit)/T⌉ = ⌈(Δ+Jit)/T⌉ + 1 — valid only while Δ + Jit is
  // computed exactly; past ValidTo the internal satAdd clamps and the
  // recurrence breaks, so the tail stops there.
  Duration Slack = satAdd(Period, Jit);
  if (Slack == TimeInfinity)
    return std::nullopt;
  return CurveTail{Period, 1, 1, TimeInfinity - Slack};
}

SumCurve::SumCurve(std::vector<ArrivalCurvePtr> Parts)
    : Parts(std::move(Parts)) {
  assert(!this->Parts.empty() && "sum of zero curves");
  for ([[maybe_unused]] const ArrivalCurvePtr &P : this->Parts)
    assert(P && "missing summand");
}

std::uint64_t SumCurve::eval(Duration Delta) const {
  std::uint64_t Sum = 0;
  for (const ArrivalCurvePtr &P : Parts)
    Sum += P->eval(Delta);
  return Sum;
}

std::string SumCurve::describe() const {
  return "sum(" + std::to_string(Parts.size()) + " curves)";
}

std::optional<CurveTail> SumCurve::tail() const {
  // The sum steps by the lcm of the part periods, gaining each part's
  // increment once per part period. Addition commutes with reduction
  // mod 2^64, so the combined recurrence is as exact as the parts'.
  Duration Period = 1;
  Duration From = 0;
  Duration ValidTo = TimeInfinity;
  constexpr Duration MaxPeriod = 1ull << 42;
  std::vector<CurveTail> Tails;
  for (const ArrivalCurvePtr &P : Parts) {
    std::optional<CurveTail> T = P->tail();
    if (!T)
      return std::nullopt;
    Duration G = std::gcd(Period, T->Period);
    Duration Lcm = Period / G;
    if (Lcm > MaxPeriod / T->Period)
      return std::nullopt; // lcm blow-up: not worth a table this wide.
    Period = Lcm * T->Period;
    From = std::max(From, T->From);
    ValidTo = std::min(ValidTo, T->ValidTo);
    Tails.push_back(*T);
  }
  std::uint64_t Increment = 0;
  for (const CurveTail &T : Tails) {
    Increment += (Period / T.Period) * T.Increment;
    // One combined step applies a part's recurrence Period/T.Period
    // times, the last at Delta + Period - T.Period: shrink the window
    // so every intermediate application stays within the part's.
    Duration Overhang = Period - T.Period;
    if (T.ValidTo < Overhang)
      return std::nullopt;
    ValidTo = std::min(ValidTo, T.ValidTo - Overhang);
  }
  if (ValidTo < From)
    return std::nullopt;
  return CurveTail{Period, Increment, From, ValidTo};
}

MinCurve::MinCurve(ArrivalCurvePtr A, ArrivalCurvePtr B)
    : A(std::move(A)), B(std::move(B)) {
  assert(this->A && this->B && "missing operand");
}

std::uint64_t MinCurve::eval(Duration Delta) const {
  return std::min(A->eval(Delta), B->eval(Delta));
}

std::string MinCurve::describe() const {
  return "min(" + A->describe() + ", " + B->describe() + ")";
}

ScaledCurve::ScaledCurve(ArrivalCurvePtr Inner, std::uint64_t Factor)
    : Inner(std::move(Inner)), Factor(Factor) {
  assert(this->Inner && "missing inner curve");
  assert(Factor > 0 && "zero scale makes a zero curve; use ZeroCurve");
}

std::uint64_t ScaledCurve::eval(Duration Delta) const {
  return Factor * Inner->eval(Delta);
}

std::string ScaledCurve::describe() const {
  return std::to_string(Factor) + "x(" + Inner->describe() + ")";
}

std::optional<CurveTail> ScaledCurve::tail() const {
  std::optional<CurveTail> T = Inner->tail();
  if (!T)
    return std::nullopt;
  // Factor * (v + Inc) = Factor*v + Factor*Inc, mod 2^64 exactly as
  // eval() computes it.
  return CurveTail{T->Period, Factor * T->Increment, T->From, T->ValidTo};
}

Duration rprosa::minWindowAdmitting(const ArrivalCurve &Curve,
                                    std::uint64_t Count, Duration SearchCap) {
  return minWindowAdmittingIn(Curve, Count, SearchCap);
}

ShiftedCurve::ShiftedCurve(ArrivalCurvePtr Inner, Duration Shift)
    : Inner(std::move(Inner)), Shift(Shift) {
  assert(this->Inner && "inner curve required");
}

std::uint64_t ShiftedCurve::eval(Duration Delta) const {
  if (Delta == 0)
    return 0;
  return Inner->eval(satAdd(Delta, Shift));
}

std::string ShiftedCurve::describe() const {
  return Inner->describe() + "+shift(" + std::to_string(Shift) + ")";
}

std::optional<CurveTail> ShiftedCurve::tail() const {
  std::optional<CurveTail> T = Inner->tail();
  if (!T)
    return std::nullopt;
  // eval(Δ) = Inner(Δ + Shift) for Δ > 0, so the inner recurrence
  // window translates left by Shift. Stay below both the inner window
  // and the point where our own satAdd would clamp.
  Duration From = T->From > Shift ? T->From - Shift : 1;
  From = std::max<Duration>(From, 1);
  Duration ValidTo = T->ValidTo > Shift ? T->ValidTo - Shift : 0;
  ValidTo = std::min(ValidTo, TimeInfinity - Shift >= T->Period
                                  ? TimeInfinity - Shift - T->Period
                                  : 0);
  if (ValidTo < From)
    return std::nullopt;
  return CurveTail{T->Period, T->Increment, From, ValidTo};
}
