//===- core/ids.h - Identifier types for tasks, jobs, sockets -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier conventions:
///  - TaskId indexes a task type in a TaskSet.
///  - SocketId indexes an input socket of the scheduler.
///  - MsgId uniquely identifies a message as created by the environment.
///  - JobId uniquely identifies a *read* job. Following §3.2 of the
///    paper, the read step assigns a fresh JobId from a monotonically
///    increasing counter, because message payloads may repeat and thus
///    cannot serve as identities (Def. 3.2, third property).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_IDS_H
#define RPROSA_CORE_IDS_H

#include <cstdint>

namespace rprosa {

using TaskId = std::uint32_t;
using SocketId = std::uint32_t;
using MsgId = std::uint64_t;
using JobId = std::uint64_t;

/// Sentinel for "no job" (e.g., the Idle processor state).
inline constexpr JobId InvalidJobId = ~0ull;

/// Sentinel for "no task".
inline constexpr TaskId InvalidTaskId = ~0u;

/// Task priority. Convention used throughout this code base: a larger
/// numeric value means a *higher* priority (dispatched first).
using Priority = std::uint32_t;

} // namespace rprosa

#endif // RPROSA_CORE_IDS_H
