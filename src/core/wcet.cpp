//===- core/wcet.cpp ------------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/wcet.h"

using namespace rprosa;

CheckResult BasicActionWcets::validate() const {
  CheckResult R;
  R.noteCheck(6);
  // Thm. 5.1: WcetSel, WcetDisp, WcetCompl and WcetIdling are strictly
  // positive and 1 < WcetFR, 1 < WcetSR.
  if (FailedRead <= 1)
    R.addFailure("WcetFR must be > 1 (Thm. 5.1 side condition)");
  if (SuccessfulRead <= 1)
    R.addFailure("WcetSR must be > 1 (Thm. 5.1 side condition)");
  if (Selection == 0)
    R.addFailure("WcetSel must be strictly positive");
  if (Dispatch == 0)
    R.addFailure("WcetDisp must be strictly positive");
  if (Completion == 0)
    R.addFailure("WcetCompl must be strictly positive");
  if (Idling == 0)
    R.addFailure("WcetIdling must be strictly positive");
  // Substrate assumption (see sim/cost_model.h): a successful read does
  // at least as much work as a failed one (poll + copy).
  R.noteCheck();
  if (SuccessfulRead < FailedRead)
    R.addFailure("WcetSR must be >= WcetFR (a successful read subsumes "
                 "the availability poll of a failed one)");
  return R;
}

BasicActionWcets BasicActionWcets::typicalDeployment() {
  BasicActionWcets W;
  W.FailedRead = 400 * TickNs;
  W.SuccessfulRead = 900 * TickNs;
  W.Selection = 300 * TickNs;
  W.Dispatch = 250 * TickNs;
  W.Completion = 350 * TickNs;
  W.Idling = 2 * TickUs;
  return W;
}
