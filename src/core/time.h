//===- core/time.h - The discrete time model ------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time in RefinedProsa is discrete and arbitrarily fine-grained (§2.3,
/// footnote 3: "the unit of timestamps is arbitrary and can be
/// instantiated with any arbitrarily fine-grained units such as processor
/// cycles"). We fix the convention 1 tick = 1 nanosecond for the helpers
/// below; all analysis code is unit-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_TIME_H
#define RPROSA_CORE_TIME_H

#include <cstdint>
#include <optional>
#include <string>

namespace rprosa {

/// An instant on the (discrete, non-negative) time line.
using Time = std::uint64_t;

/// A length of a time interval, in the same unit as Time.
using Duration = std::uint64_t;

/// A horizon value meaning "no bound found below the search cap".
inline constexpr Duration TimeInfinity = ~0ull;

// Convenience constants under the 1 tick = 1 ns convention.
inline constexpr Duration TickNs = 1;
inline constexpr Duration TickUs = 1000 * TickNs;
inline constexpr Duration TickMs = 1000 * TickUs;
inline constexpr Duration TickSec = 1000 * TickMs;

/// Saturating addition on times: anything involving TimeInfinity stays
/// at TimeInfinity, and overflow clamps instead of wrapping.
inline Time satAdd(Time A, Time B) {
  if (A == TimeInfinity || B == TimeInfinity)
    return TimeInfinity;
  Time Sum = A + B;
  return Sum < A ? TimeInfinity : Sum;
}

/// Parses a time literal ("400", "400ns", "2us", "10ms", "1s"; a bare
/// number is ticks = ns); nullopt on malformed input. Shared by the
/// system-spec and arrival-log text formats.
std::optional<Duration> parseTimeLiteral(const std::string &Text);

/// Saturating multiplication on durations with the same conventions.
inline Duration satMul(Duration A, Duration B) {
  if (A == 0 || B == 0)
    return 0;
  if (A == TimeInfinity || B == TimeInfinity)
    return TimeInfinity;
  if (A > TimeInfinity / B)
    return TimeInfinity;
  return A * B;
}

} // namespace rprosa

#endif // RPROSA_CORE_TIME_H
