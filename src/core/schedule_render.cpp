//===- core/schedule_render.cpp -------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/schedule_render.h"

#include <algorithm>
#include <map>

using namespace rprosa;

char rprosa::timelineGlyph(ProcStateKind K) {
  switch (K) {
  case ProcStateKind::Idle:
    return '.';
  case ProcStateKind::Executes:
    return '#';
  case ProcStateKind::ReadOvh:
    return 'r';
  case ProcStateKind::PollingOvh:
    return 'p';
  case ProcStateKind::SelectionOvh:
    return 's';
  case ProcStateKind::DispatchOvh:
    return 'd';
  case ProcStateKind::CompletionOvh:
    return 'c';
  }
  return '?';
}

std::string rprosa::renderScheduleTimeline(const Schedule &S,
                                           std::size_t Width, Time From,
                                           Time To) {
  if (From == 0 && To == 0) {
    From = S.startTime();
    To = S.endTime();
  }
  if (Width == 0 || To <= From)
    return "(empty timeline)\n";

  Duration Span = To - From;
  std::string Row;
  Row.reserve(Width);
  for (std::size_t Col = 0; Col < Width; ++Col) {
    // The bucket of time this column summarizes.
    Time BFrom = From + Span * Col / Width;
    Time BTo = From + Span * (Col + 1) / Width;
    if (BTo <= BFrom)
      BTo = BFrom + 1;
    // Dominant state kind within the bucket.
    std::map<ProcStateKind, Duration> InBucket;
    for (const ScheduleSegment &Seg : S.segments()) {
      if (Seg.end() <= BFrom)
        continue;
      if (Seg.Start >= BTo)
        break;
      Time Lo = std::max(Seg.Start, BFrom);
      Time Hi = std::min(Seg.end(), BTo);
      InBucket[Seg.State.Kind] += Hi - Lo;
    }
    Duration Covered = 0;
    for (const auto &[K, L] : InBucket)
      Covered += L;
    if (Covered < BTo - BFrom)
      InBucket[ProcStateKind::Idle] += (BTo - BFrom) - Covered;
    ProcStateKind Best = ProcStateKind::Idle;
    Duration BestLen = 0;
    for (const auto &[K, L] : InBucket) {
      if (L > BestLen) {
        Best = K;
        BestLen = L;
      }
    }
    Row += timelineGlyph(Best);
  }

  std::string Out = "t=" + std::to_string(From) + "\n" + Row + "\n";
  // Right-align the end label under the row.
  std::string EndLabel = "t=" + std::to_string(To);
  if (EndLabel.size() < Width)
    Out += std::string(Width - EndLabel.size(), ' ');
  Out += EndLabel + "\n";
  Out += "legend: . idle  # executing  r read  p polling  s selection  "
         "d dispatch  c completion\n";
  return Out;
}
