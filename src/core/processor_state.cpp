//===- core/processor_state.cpp -------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/processor_state.h"

using namespace rprosa;

std::string rprosa::toString(ProcStateKind K) {
  switch (K) {
  case ProcStateKind::Idle:
    return "Idle";
  case ProcStateKind::Executes:
    return "Executes";
  case ProcStateKind::ReadOvh:
    return "ReadOvh";
  case ProcStateKind::PollingOvh:
    return "PollingOvh";
  case ProcStateKind::SelectionOvh:
    return "SelectionOvh";
  case ProcStateKind::DispatchOvh:
    return "DispatchOvh";
  case ProcStateKind::CompletionOvh:
    return "CompletionOvh";
  }
  return "?";
}

std::string rprosa::toString(const ProcState &S) {
  if (S.Kind == ProcStateKind::Idle)
    return "Idle";
  return toString(S.Kind) + "(j" + std::to_string(S.Job) + ")";
}
