//===- core/time.cpp ------------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/time.h"

using namespace rprosa;

std::optional<Duration> rprosa::parseTimeLiteral(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  std::size_t Pos = 0;
  while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
    ++Pos;
  if (Pos == 0 || Pos > 19)
    return std::nullopt;
  Duration Num = std::stoull(Text.substr(0, Pos));
  std::string Suffix = Text.substr(Pos);
  if (Suffix.empty() || Suffix == "ns")
    return Num;
  if (Suffix == "us")
    return satMul(Num, TickUs);
  if (Suffix == "ms")
    return satMul(Num, TickMs);
  if (Suffix == "s")
    return satMul(Num, TickSec);
  return std::nullopt;
}
