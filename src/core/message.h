//===- core/message.h - Messages on sockets -------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A message is what arrives on a socket; reading it creates a job
/// (§2.1). In the paper a message is raw data and the client's
/// msg_to_task / msg_identify_type functions infer the task type
/// (Def. 3.3). We carry the payload as an opaque length plus the task
/// tag the client's classifier would compute, and a MsgId assigned by
/// the environment so consistency checks can match reads to arrivals.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_MESSAGE_H
#define RPROSA_CORE_MESSAGE_H

#include "core/ids.h"
#include "core/time.h"

namespace rprosa {

/// A datagram enqueued on an input socket by the environment.
struct Message {
  /// Environment-assigned identity (distinct even for identical payloads).
  MsgId Id = 0;
  /// The task type msg_to_task infers from the payload.
  TaskId Task = InvalidTaskId;
  /// Payload length in bytes (only used for realism in examples; the
  /// analysis never looks at it).
  std::uint32_t PayloadLen = 0;
};

} // namespace rprosa

#endif // RPROSA_CORE_MESSAGE_H
