//===- core/schedule_render.h - ASCII timelines for schedules -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a schedule as a fixed-width ASCII timeline — a terminal
/// stand-in for the Fig. 3-style diagrams. Each column summarizes one
/// bucket of time by the state that dominates it:
///
///   .  Idle        #  Executes     r  ReadOvh      p  PollingOvh
///   s  SelectionOvh  d  DispatchOvh  c  CompletionOvh
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_SCHEDULE_RENDER_H
#define RPROSA_CORE_SCHEDULE_RENDER_H

#include "core/schedule.h"

#include <string>

namespace rprosa {

/// Renders [From, To) of \p S into \p Width columns, with an axis line
/// and the legend. From/To default to the schedule's own extent.
std::string renderScheduleTimeline(const Schedule &S, std::size_t Width = 72,
                                   Time From = 0, Time To = 0);

/// The one-character glyph used for \p K in the timeline.
char timelineGlyph(ProcStateKind K);

} // namespace rprosa

#endif // RPROSA_CORE_SCHEDULE_RENDER_H
