//===- core/curve_table.cpp -----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/curve_table.h"

#include "support/check.h"

#include <algorithm>

using namespace rprosa;

FlatCurveTable::FlatCurveTable(ArrivalCurvePtr Curve, Duration Horizon,
                               FlatCompileOptions Opts)
    : Source(std::move(Curve)) {
  RPROSA_CHECK(Source != nullptr, "FlatCurveTable requires a curve");

  // With a certified tail, one tail period of breakpoints is enough for
  // the whole domain: compile through From + Period and extrapolate.
  // Without one, compile to the requested horizon and fall back beyond.
  std::optional<CurveTail> Tail = Source->tail();
  Duration End = Horizon;
  if (Tail && Tail->Period > 0) {
    Duration TailEnd = satAdd(Tail->From, Tail->Period);
    if (TailEnd < TimeInfinity)
      End = TailEnd;
    else
      Tail.reset();
  }

  // Scan the breakpoints: from each known (Delta, value) pair, binary
  // search for the least larger Delta whose value increases. The curve
  // is monotone, so this enumerates exactly the steps in [0, End].
  Breaks.push_back(0);
  Vals.push_back(Source->eval(0));
  Duration Cur = 0;
  std::uint64_t CurVal = Vals.back();
  const std::uint64_t EndVal = Source->eval(End);
  bool Complete = true;
  while (Cur < End) {
    if (CurVal == EndVal) {
      Cur = End; // Flat through End: no further breakpoints.
      break;
    }
    if (Breaks.size() >= Opts.MaxBreakpoints) {
      Complete = false; // Table budget exhausted; exact through Cur.
      break;
    }
    Duration Lo = Cur + 1, Hi = End;
    while (Lo < Hi) {
      Duration Mid = Lo + (Hi - Lo) / 2;
      if (Source->eval(Mid) > CurVal)
        Hi = Mid;
      else
        Lo = Mid + 1;
    }
    Cur = Lo;
    CurVal = Source->eval(Lo);
    Breaks.push_back(Lo);
    Vals.push_back(CurVal);
  }
  Covered = Complete ? End : Breaks.back();

  if (Tail && Complete && Covered == satAdd(Tail->From, Tail->Period) &&
      Tail->ValidTo >= Covered) {
    HasTail = true;
    TailPeriod = Tail->Period;
    TailIncrement = Tail->Increment;
    TailValidTo = Tail->ValidTo;
  }

  if (Complete && Covered < Opts.DenseLimit) {
    DenseVals.resize(static_cast<std::size_t>(Covered) + 1);
    std::size_t B = 0;
    for (Duration D = 0; D <= Covered; ++D) {
      while (B + 1 < Breaks.size() && Breaks[B + 1] <= D)
        ++B;
      DenseVals[static_cast<std::size_t>(D)] = Vals[B];
    }
  }
}

std::uint64_t FlatCurveTable::evalBeyond(Duration Delta) const {
  // Reduce Delta by whole tail periods into (Covered - Period, Covered]
  // and add the per-period increments. The recurrence chain runs over
  // Base, Base+P, ..., Delta-P, all ≤ ValidTo since Delta is; the
  // arithmetic wraps mod 2^64 exactly like the source's own (the tail
  // contract, arrival_curve.h).
  if (HasTail && Delta <= TailValidTo) {
    Duration Span = Delta - Covered;
    Duration Rem = Span % TailPeriod;
    std::uint64_t K = Span / TailPeriod;
    Duration Base = Covered;
    if (Rem != 0) {
      Base = Covered - (TailPeriod - Rem);
      ++K;
    }
    return evalSearch(Base) + K * TailIncrement;
  }
  return Source->eval(Delta);
}

FlatReleaseSet::FlatReleaseSet(const std::vector<ArrivalCurvePtr> &Alphas,
                               Duration ShiftIn, Duration Horizon)
    : Shift(ShiftIn) {
  Tables.reserve(Alphas.size());
  Duration ShiftedHorizon = satAdd(Horizon, Shift);
  for (const ArrivalCurvePtr &A : Alphas)
    Tables.emplace_back(A, ShiftedHorizon);
}
