//===- core/schedule.h - Schedules of processor states (§4.1) -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A schedule maps each time instant to a processor state (§2.4, §4.1:
/// sched : N → ProcessorState). Prosa works with possibly-infinite
/// schedules; a concrete run yields a *finite* schedule over
/// [startTime, endTime), which we represent run-length encoded. Queries
/// (service, blackout, completion) all operate on half-open windows.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_SCHEDULE_H
#define RPROSA_CORE_SCHEDULE_H

#include "core/processor_state.h"
#include "core/time.h"
#include "support/check.h"

#include <optional>
#include <utility>
#include <vector>

namespace rprosa {

/// A maximal run of instants in the same processor state.
struct ScheduleSegment {
  Time Start = 0;
  Duration Len = 0;
  ProcState State;

  Time end() const { return Start + Len; }
};

/// A finite, contiguous, run-length encoded schedule.
class Schedule {
public:
  explicit Schedule(Time StartTime = 0) : StartTime(StartTime) {}

  /// Appends \p Len instants of \p State at the current end. Zero-length
  /// appends are ignored; adjacent equal states are coalesced.
  void append(ProcState State, Duration Len);

  Time startTime() const { return StartTime; }
  Time endTime() const {
    return Segments.empty() ? StartTime : Segments.back().end();
  }
  Duration length() const { return endTime() - StartTime; }
  bool empty() const { return Segments.empty(); }

  const std::vector<ScheduleSegment> &segments() const { return Segments; }

  /// The state at instant \p T; Idle outside the covered range (the
  /// finite-to-infinite extension convention used when interfacing with
  /// the Prosa-style analysis, cf. §6 "manually scheduling the
  /// completion of pending jobs": callers must ensure all relevant jobs
  /// completed within range before extending with Idle).
  ProcState stateAt(Time T) const;

  /// Number of instants t in [From, To) with sched t == \p S (exact
  /// state match, including the attributed job).
  Duration timeInState(const ProcState &S, Time From, Time To) const;

  /// Number of instants in [From, To) spent in overhead states
  /// ("blackout" in aRSA terms, §4.2).
  Duration blackoutIn(Time From, Time To) const;

  /// Number of instants in [From, To) that provide supply (idle or
  /// executing).
  Duration supplyIn(Time From, Time To) const;

  /// Number of instants in [From, To) executing job \p J.
  Duration serviceIn(JobId J, Time From, Time To) const;

  /// The instant right after the last Executes(J) instant, i.e. the
  /// job's completion time; nullopt if J never executes in range.
  std::optional<Time> completionTime(JobId J) const;

  /// The first instant at which J executes; nullopt if never.
  std::optional<Time> startOfExecution(JobId J) const;

  /// All jobs that appear in an Executes segment, in order of first
  /// execution.
  std::vector<JobId> executedJobs() const;

  /// Busy-window anchors: the schedule start plus every Idle→non-Idle
  /// transition instant. The SBF of §4.4 lower-bounds supply only in
  /// windows anchored at such quiet points, so both the empirical
  /// soundness checks (E4) and the analysis reason from these anchors.
  std::vector<Time> busyWindowAnchors() const;

  /// Maximal non-Idle intervals [first, second) — the observed busy
  /// periods. Every one must fit inside the analysis's busy-window
  /// bound for the lowest-priority task (which accounts for the whole
  /// workload), a property the test suite asserts.
  std::vector<std::pair<Time, Time>> busyPeriods() const;

  /// Structural invariants: contiguity, positive lengths, coalesced
  /// neighbours.
  CheckResult validateStructure() const;

private:
  Time StartTime;
  std::vector<ScheduleSegment> Segments;
};

} // namespace rprosa

#endif // RPROSA_CORE_SCHEDULE_H
