//===- core/job.h - Jobs: runtime instances of tasks ----------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A job is a runtime instance of a task (§4.1): concretely, a message
/// that has been read from a socket and assigned a unique JobId by the
/// read step (§3.2, READ-STEP-SUCCESS).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_JOB_H
#define RPROSA_CORE_JOB_H

#include "core/ids.h"
#include "core/message.h"
#include "core/time.h"

namespace rprosa {

/// A read job. ArrivalTime is carried for the benefit of the *analysis
/// and checkers only* — the scheduler implementation never inspects it
/// (it cannot know it), mirroring how the paper keeps arrival times out
/// of the C code and in the assumed arrival sequence.
struct Job {
  JobId Id = InvalidJobId;
  MsgId Msg = 0;
  TaskId Task = InvalidTaskId;
  SocketId Socket = 0;
  /// The instant the read system call returned this job. The scheduler
  /// legitimately knows this (unlike the arrival time); the EDF policy
  /// derives the job's absolute deadline from it (ReadAt + D_i).
  Time ReadAt = 0;
};

} // namespace rprosa

#endif // RPROSA_CORE_JOB_H
