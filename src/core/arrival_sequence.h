//===- core/arrival_sequence.h - Arrival sequences (dynamics, §4.1) -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An arrival sequence models one run's workload: it maps each time
/// instant and socket to the messages that arrive there (§2.3:
/// arr : sock → T → list Job). The analysis assumes the sequence
/// respects each task's arrival curve (Eq. 2); respectsCurves() checks
/// exactly that property on a concrete finite sequence.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_ARRIVAL_SEQUENCE_H
#define RPROSA_CORE_ARRIVAL_SEQUENCE_H

#include "core/ids.h"
#include "core/message.h"
#include "core/task.h"
#include "core/time.h"
#include "support/check.h"

#include <optional>
#include <vector>

namespace rprosa {

/// One arrival: message \p Msg becomes available on socket \p Socket at
/// instant \p At (i.e., a read issued at any time > At can return it).
struct Arrival {
  Time At = 0;
  SocketId Socket = 0;
  Message Msg;
};

/// The earliest instant >= \p Proposed at which one more arrival of a
/// task with arrival curve \p Curve may be appended after the ascending
/// times in \p Prev without violating Eq. 2 on any window anchored at a
/// previous arrival; TimeInfinity when the curve admits no further
/// arrival at all. The workload generator (sim/workload) and the SAG
/// counterexample realizer (sag/backtrack) both push proposed instants
/// through this function, so every sequence they emit passes
/// respectsCurves by construction.
Time earliestCompliantArrival(const ArrivalCurve &Curve,
                              const std::vector<Time> &Prev, Time Proposed);

/// A finite arrival sequence for one run.
class ArrivalSequence {
public:
  explicit ArrivalSequence(std::uint32_t NumSockets = 1)
      : NumSockets(NumSockets) {}

  /// Records an arrival. MsgIds must be unique across the sequence;
  /// addArrival asserts monotonically non-decreasing insertion time per
  /// call site convenience is NOT required — the container sorts lazily.
  void addArrival(Time At, SocketId Socket, Message Msg);

  /// Convenience: creates the message inline with a fresh MsgId.
  MsgId addArrival(Time At, SocketId Socket, TaskId Task,
                   std::uint32_t PayloadLen = 16);

  /// All arrivals sorted by (time, socket, msg id).
  const std::vector<Arrival> &arrivals() const;

  /// Arrivals on one socket, sorted by time.
  std::vector<Arrival> arrivalsOn(SocketId Socket) const;

  /// The arrival record for a message id, if present.
  std::optional<Arrival> findMsg(MsgId Id) const;

  /// Number of arrivals of \p Task in the half-open window [From, To).
  std::uint64_t countInWindow(TaskId Task, Time From, Time To) const;

  std::size_t size() const { return Sorted ? Items.size() : Items.size(); }
  std::uint32_t numSockets() const { return NumSockets; }

  /// The latest arrival instant (0 when empty).
  Time lastArrivalTime() const;

  /// Checks Eq. 2: for every task and every window anchored at an
  /// arrival, the number of arrivals within the window is bounded by the
  /// task's curve. (Checking windows anchored at arrivals is sufficient:
  /// the count in an arbitrary window is dominated by the count in the
  /// window anchored at its first contained arrival.)
  CheckResult respectsCurves(const TaskSet &Tasks) const;

  /// Checks that message ids are globally unique.
  CheckResult uniqueMsgIds() const;

private:
  void ensureSorted() const;

  std::uint32_t NumSockets;
  mutable std::vector<Arrival> Items;
  mutable bool Sorted = true;
  MsgId NextMsgId = 1;
};

} // namespace rprosa

#endif // RPROSA_CORE_ARRIVAL_SEQUENCE_H
