//===- core/arrival_curve.h - Arrival curves (workload model) -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arrival curves α_i bound the job arrival rate per task (§4.1): α_i(Δ)
/// is an upper bound on the number of jobs of task τ_i that may arrive
/// in *any* half-open time window of length Δ. Required properties:
///   - α(0) = 0,
///   - α is monotonically non-decreasing.
///
/// The paper supports arbitrary arrival curves (a key generalization over
/// ProKOS's periodic tasks, §6). We provide the standard shapes:
/// periodic/sporadic (min-separation), leaky-bucket (burst + rate), an
/// explicit staircase, and combinators.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_ARRIVAL_CURVE_H
#define RPROSA_CORE_ARRIVAL_CURVE_H

#include "core/time.h"
#include "support/check.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace rprosa {

/// An exact eventually-periodic description of a curve's long-run
/// behavior, used by FlatCurveTable (core/curve_table.h) to extrapolate
/// beyond its compiled breakpoint table:
///
///   for every Delta with From <= Delta <= ValidTo:
///     eval(Delta + Period) == eval(Delta) + Increment
///
/// where the addition is the same plain wrapping uint64 arithmetic the
/// curve itself computes with (SumCurve/ScaledCurve accumulate without
/// saturation, so a recurrence that holds in Z holds mod 2^64 as well).
/// ValidTo guards curves whose eval saturates internally (satAdd in
/// PeriodicJitterCurve/ShiftedCurve): beyond it the recurrence may be
/// broken by clamping and callers must fall back to eval(). A curve
/// with no exact tail (or none it can prove) returns nullopt.
struct CurveTail {
  Duration Period = 0;            ///< Recurrence period (> 0).
  std::uint64_t Increment = 0;    ///< Value gained per period.
  Duration From = 0;              ///< First Delta the recurrence holds at.
  Duration ValidTo = TimeInfinity;///< Last Delta it may be applied at.
};

/// Abstract arrival curve. Implementations must be monotone with
/// eval(0) == 0; validate() spot-checks this.
class ArrivalCurve {
public:
  virtual ~ArrivalCurve() = default;

  /// Returns an upper bound on the number of arrivals in any half-open
  /// window of length \p Delta.
  virtual std::uint64_t eval(Duration Delta) const = 0;

  /// A human-readable description of the curve ("periodic(T=10ms)").
  virtual std::string describe() const = 0;

  /// The curve's exact eventually-periodic tail, if it has one it can
  /// prove (see CurveTail). Purely an acceleration hint: FlatCurveTable
  /// compiles only one tail period of breakpoints and extrapolates; a
  /// nullopt tail merely costs table size, never correctness.
  virtual std::optional<CurveTail> tail() const { return std::nullopt; }

  /// Spot-checks the curve axioms (eval(0)==0, monotonicity on a probe
  /// grid up to \p Horizon).
  CheckResult validate(Duration Horizon) const;
};

using ArrivalCurvePtr = std::shared_ptr<const ArrivalCurve>;

/// Periodic / sporadic arrivals with minimum separation T:
/// α(Δ) = ⌈Δ/T⌉.
class PeriodicCurve : public ArrivalCurve {
public:
  explicit PeriodicCurve(Duration Period);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;
  std::optional<CurveTail> tail() const override;

  Duration period() const { return Period; }

private:
  Duration Period;
};

/// Leaky-bucket arrivals: α(Δ) = 0 for Δ = 0, else Burst + ⌊Δ/Rate⌋
/// where Rate is the steady-state minimum separation. Models a bursty
/// source that may deliver up to Burst back-to-back messages.
class LeakyBucketCurve : public ArrivalCurve {
public:
  LeakyBucketCurve(std::uint64_t Burst, Duration Rate);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;
  std::optional<CurveTail> tail() const override;

  std::uint64_t burst() const { return Burst; }
  Duration rate() const { return Rate; }

private:
  std::uint64_t Burst;
  Duration Rate;
};

/// An explicit staircase given as (window length, bound) breakpoints.
/// eval(Δ) = the bound of the largest breakpoint with length ≤ Δ.
class StaircaseCurve : public ArrivalCurve {
public:
  struct Step {
    Duration UpToLength; ///< Window lengths ≤ this get...
    std::uint64_t Bound; ///< ...this arrival bound.
  };

  /// \p Steps must be sorted by UpToLength with non-decreasing bounds;
  /// windows longer than the last step extrapolate linearly using
  /// \p TailPeriod extra arrivals per TailPeriod ticks (0 = constant).
  StaircaseCurve(std::vector<Step> Steps, Duration TailPeriod = 0);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;
  std::optional<CurveTail> tail() const override;

private:
  std::vector<Step> Steps;
  Duration TailPeriod;
};

/// The curve shifted by a constant window extension: eval(Δ) =
/// Inner(Δ + Shift) for Δ > 0, and 0 at Δ = 0. This is exactly the
/// *release curve* construction of §4.3: β_i(Δ) = α_i(Δ + J_i).
class ShiftedCurve : public ArrivalCurve {
public:
  ShiftedCurve(ArrivalCurvePtr Inner, Duration Shift);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;
  std::optional<CurveTail> tail() const override;

  const ArrivalCurvePtr &inner() const { return Inner; }
  Duration shift() const { return Shift; }

private:
  ArrivalCurvePtr Inner;
  Duration Shift;
};

/// The zero curve (no arrivals); useful for disabled tasks in tests.
class ZeroCurve : public ArrivalCurve {
public:
  std::uint64_t eval(Duration) const override { return 0; }
  std::string describe() const override { return "zero"; }
  std::optional<CurveTail> tail() const override {
    return CurveTail{1, 0, 0, TimeInfinity - 1};
  }
};

/// Periodic arrivals subject to release jitter at the *source*:
/// α(Δ) = ⌈(Δ + Jit)/T⌉. The classic "periodic with jitter" event
/// model (Audsley et al.); jitter squeezes events closer together, so
/// small windows admit more arrivals than the plain periodic curve.
class PeriodicJitterCurve : public ArrivalCurve {
public:
  PeriodicJitterCurve(Duration Period, Duration Jit);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;
  std::optional<CurveTail> tail() const override;

private:
  Duration Period;
  Duration Jit;
};

/// Pointwise sum of several curves: a task fed by independent sources.
class SumCurve : public ArrivalCurve {
public:
  explicit SumCurve(std::vector<ArrivalCurvePtr> Parts);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;
  std::optional<CurveTail> tail() const override;

private:
  std::vector<ArrivalCurvePtr> Parts;
};

/// Pointwise minimum of two curves: when two independent bounds are
/// known (e.g. a burst limit and a long-run rate), their minimum is
/// also a valid — and tighter — arrival curve.
///
/// Deliberately reports no tail(): min does not commute with the
/// wrapping arithmetic the tail contract is stated in (an operand's
/// value can wrap while the min stays small), so an exact recurrence
/// cannot be certified in general. FlatCurveTable falls back to eval()
/// beyond its compiled horizon, which is always exact.
class MinCurve : public ArrivalCurve {
public:
  MinCurve(ArrivalCurvePtr A, ArrivalCurvePtr B);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;

private:
  ArrivalCurvePtr A, B;
};

/// K identical sources: α(Δ) = K · Inner(Δ).
class ScaledCurve : public ArrivalCurve {
public:
  ScaledCurve(ArrivalCurvePtr Inner, std::uint64_t Factor);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;
  std::optional<CurveTail> tail() const override;

private:
  ArrivalCurvePtr Inner;
  std::uint64_t Factor;
};

/// The smallest window length Delta with Eval.eval(Delta) >= Count, for
/// any monotone evaluator with eval(0) == 0 (an ArrivalCurve, a
/// FlatCurveTable, a FlatReleaseView). Doubling + binary search;
/// TimeInfinity if no window below \p SearchCap admits Count arrivals.
template <typename EvalT>
Duration minWindowAdmittingIn(const EvalT &Eval, std::uint64_t Count,
                              Duration SearchCap) {
  if (Count == 0)
    return 0;
  // Doubling phase: find some window admitting Count.
  Duration Hi = 1;
  while (Eval.eval(Hi) < Count) {
    if (Hi >= SearchCap)
      return TimeInfinity;
    Hi = satMul(Hi, 2);
    if (Hi > SearchCap)
      Hi = SearchCap;
  }
  // Binary search for the smallest such window.
  Duration Lo = 1;
  while (Lo < Hi) {
    Duration Mid = Lo + (Hi - Lo) / 2;
    if (Eval.eval(Mid) >= Count)
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  return Hi;
}

/// The smallest window length Delta with Curve.eval(Delta) >= Count
/// (doubling + binary search over the monotone curve; TimeInfinity if
/// no window below \p SearchCap admits Count arrivals). Used by the
/// workload generators (earliest compliant arrival times) and by the
/// RTA (release offsets A_q within a busy window).
Duration minWindowAdmitting(const ArrivalCurve &Curve, std::uint64_t Count,
                            Duration SearchCap = 365ull * 24 * 3600 *
                                                 TickSec);

} // namespace rprosa

#endif // RPROSA_CORE_ARRIVAL_CURVE_H
