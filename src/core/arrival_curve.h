//===- core/arrival_curve.h - Arrival curves (workload model) -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arrival curves α_i bound the job arrival rate per task (§4.1): α_i(Δ)
/// is an upper bound on the number of jobs of task τ_i that may arrive
/// in *any* half-open time window of length Δ. Required properties:
///   - α(0) = 0,
///   - α is monotonically non-decreasing.
///
/// The paper supports arbitrary arrival curves (a key generalization over
/// ProKOS's periodic tasks, §6). We provide the standard shapes:
/// periodic/sporadic (min-separation), leaky-bucket (burst + rate), an
/// explicit staircase, and combinators.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_ARRIVAL_CURVE_H
#define RPROSA_CORE_ARRIVAL_CURVE_H

#include "core/time.h"
#include "support/check.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace rprosa {

/// Abstract arrival curve. Implementations must be monotone with
/// eval(0) == 0; validate() spot-checks this.
class ArrivalCurve {
public:
  virtual ~ArrivalCurve() = default;

  /// Returns an upper bound on the number of arrivals in any half-open
  /// window of length \p Delta.
  virtual std::uint64_t eval(Duration Delta) const = 0;

  /// A human-readable description of the curve ("periodic(T=10ms)").
  virtual std::string describe() const = 0;

  /// Spot-checks the curve axioms (eval(0)==0, monotonicity on a probe
  /// grid up to \p Horizon).
  CheckResult validate(Duration Horizon) const;
};

using ArrivalCurvePtr = std::shared_ptr<const ArrivalCurve>;

/// Periodic / sporadic arrivals with minimum separation T:
/// α(Δ) = ⌈Δ/T⌉.
class PeriodicCurve : public ArrivalCurve {
public:
  explicit PeriodicCurve(Duration Period);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;

  Duration period() const { return Period; }

private:
  Duration Period;
};

/// Leaky-bucket arrivals: α(Δ) = 0 for Δ = 0, else Burst + ⌊Δ/Rate⌋
/// where Rate is the steady-state minimum separation. Models a bursty
/// source that may deliver up to Burst back-to-back messages.
class LeakyBucketCurve : public ArrivalCurve {
public:
  LeakyBucketCurve(std::uint64_t Burst, Duration Rate);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;

  std::uint64_t burst() const { return Burst; }
  Duration rate() const { return Rate; }

private:
  std::uint64_t Burst;
  Duration Rate;
};

/// An explicit staircase given as (window length, bound) breakpoints.
/// eval(Δ) = the bound of the largest breakpoint with length ≤ Δ.
class StaircaseCurve : public ArrivalCurve {
public:
  struct Step {
    Duration UpToLength; ///< Window lengths ≤ this get...
    std::uint64_t Bound; ///< ...this arrival bound.
  };

  /// \p Steps must be sorted by UpToLength with non-decreasing bounds;
  /// windows longer than the last step extrapolate linearly using
  /// \p TailPeriod extra arrivals per TailPeriod ticks (0 = constant).
  StaircaseCurve(std::vector<Step> Steps, Duration TailPeriod = 0);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;

private:
  std::vector<Step> Steps;
  Duration TailPeriod;
};

/// The curve shifted by a constant window extension: eval(Δ) =
/// Inner(Δ + Shift) for Δ > 0, and 0 at Δ = 0. This is exactly the
/// *release curve* construction of §4.3: β_i(Δ) = α_i(Δ + J_i).
class ShiftedCurve : public ArrivalCurve {
public:
  ShiftedCurve(ArrivalCurvePtr Inner, Duration Shift);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;

private:
  ArrivalCurvePtr Inner;
  Duration Shift;
};

/// The zero curve (no arrivals); useful for disabled tasks in tests.
class ZeroCurve : public ArrivalCurve {
public:
  std::uint64_t eval(Duration) const override { return 0; }
  std::string describe() const override { return "zero"; }
};

/// Periodic arrivals subject to release jitter at the *source*:
/// α(Δ) = ⌈(Δ + Jit)/T⌉. The classic "periodic with jitter" event
/// model (Audsley et al.); jitter squeezes events closer together, so
/// small windows admit more arrivals than the plain periodic curve.
class PeriodicJitterCurve : public ArrivalCurve {
public:
  PeriodicJitterCurve(Duration Period, Duration Jit);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;

private:
  Duration Period;
  Duration Jit;
};

/// Pointwise sum of several curves: a task fed by independent sources.
class SumCurve : public ArrivalCurve {
public:
  explicit SumCurve(std::vector<ArrivalCurvePtr> Parts);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;

private:
  std::vector<ArrivalCurvePtr> Parts;
};

/// Pointwise minimum of two curves: when two independent bounds are
/// known (e.g. a burst limit and a long-run rate), their minimum is
/// also a valid — and tighter — arrival curve.
class MinCurve : public ArrivalCurve {
public:
  MinCurve(ArrivalCurvePtr A, ArrivalCurvePtr B);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;

private:
  ArrivalCurvePtr A, B;
};

/// K identical sources: α(Δ) = K · Inner(Δ).
class ScaledCurve : public ArrivalCurve {
public:
  ScaledCurve(ArrivalCurvePtr Inner, std::uint64_t Factor);

  std::uint64_t eval(Duration Delta) const override;
  std::string describe() const override;

private:
  ArrivalCurvePtr Inner;
  std::uint64_t Factor;
};

/// The smallest window length Delta with Curve.eval(Delta) >= Count
/// (doubling + binary search over the monotone curve; TimeInfinity if
/// no window below \p SearchCap admits Count arrivals). Used by the
/// workload generators (earliest compliant arrival times) and by the
/// RTA (release offsets A_q within a busy window).
Duration minWindowAdmitting(const ArrivalCurve &Curve, std::uint64_t Count,
                            Duration SearchCap = 365ull * 24 * 3600 *
                                                 TickSec);

} // namespace rprosa

#endif // RPROSA_CORE_ARRIVAL_CURVE_H
