//===- core/processor_state.h - Abstract processor states (§2.4) ----------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract processor-state model of §2.4:
///
///   ProcessorState ≜ Idle | Executes j | ReadOvh j | PollingOvh j
///                  | SelectionOvh j | DispatchOvh j | CompletionOvh j
///
/// States split into three categories: idle, executing a job, and
/// *overheads* — work that is not directly executing a job. Every
/// overhead is attributed to a job so the total overhead time can be
/// bounded by bounding the number of jobs (§4.4).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_PROCESSOR_STATE_H
#define RPROSA_CORE_PROCESSOR_STATE_H

#include "core/ids.h"

#include <string>

namespace rprosa {

/// The discriminator of a processor state.
enum class ProcStateKind : std::uint8_t {
  Idle,          ///< Waiting for new jobs; no pending work.
  Executes,      ///< Running the callback of the attributed job.
  ReadOvh,       ///< Reading the attributed job (incl. failed reads
                 ///< preceding its successful read in the polling phase).
  PollingOvh,    ///< The final all-failed polling round before the
                 ///< attributed job executes.
  SelectionOvh,  ///< Selecting the attributed job.
  DispatchOvh,   ///< Dispatching (initiating) the attributed job.
  CompletionOvh, ///< Cleaning up after the attributed job.
};

/// A processor state: a kind plus the job it is attributed to (Idle has
/// no job).
struct ProcState {
  ProcStateKind Kind = ProcStateKind::Idle;
  JobId Job = InvalidJobId;

  static ProcState idle() { return ProcState{ProcStateKind::Idle,
                                             InvalidJobId}; }
  static ProcState executes(JobId J) {
    return ProcState{ProcStateKind::Executes, J};
  }
  static ProcState overhead(ProcStateKind K, JobId J) {
    return ProcState{K, J};
  }

  /// Overheads are the blackout states of the aRSA instantiation (§4.2):
  /// "we model all overhead states as blackouts".
  bool isOverhead() const {
    return Kind != ProcStateKind::Idle && Kind != ProcStateKind::Executes;
  }
  bool isIdle() const { return Kind == ProcStateKind::Idle; }
  bool isExecuting() const { return Kind == ProcStateKind::Executes; }

  /// Supply is the time usable for executing jobs: execution and idle
  /// instants provide supply; overheads do not (§4.2). Idle counts as
  /// supply because the processor *could* have run a job then.
  bool providesSupply() const { return !isOverhead(); }

  bool operator==(const ProcState &O) const {
    return Kind == O.Kind && Job == O.Job;
  }
};

/// Short printable name ("Executes(j3)").
std::string toString(const ProcState &S);
std::string toString(ProcStateKind K);

} // namespace rprosa

#endif // RPROSA_CORE_PROCESSOR_STATE_H
