//===- core/wcet.h - WCET parameters of the basic actions -----------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worst-case execution times of Rössl's basic actions (Fig. 4).
/// Exactly as in the paper (§2.3), these are *parameters* of the
/// verification: "we simply assume the WCET bounds on basic actions as a
/// parameter". Theorem 5.1 additionally constrains them: Selection,
/// Dispatch, Completion and Idling are strictly positive, and
/// 1 < WcetFR, 1 < WcetSR.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_WCET_H
#define RPROSA_CORE_WCET_H

#include "core/time.h"
#include "support/check.h"

namespace rprosa {

/// WCET bounds for each basic action of the scheduler (not including the
/// per-task callback WCETs C_i, which live in Task).
struct BasicActionWcets {
  /// A read system call that returns without data (M_ReadE sock ⊥).
  Duration FailedRead = 0;
  /// A read system call that returns a message (M_ReadE sock j).
  Duration SuccessfulRead = 0;
  /// Selecting the highest-priority pending job (M_Selection segment).
  Duration Selection = 0;
  /// Initiating the callback for the selected job (M_Dispatch segment).
  Duration Dispatch = 0;
  /// Cleaning up after a callback finished (M_Completion segment).
  Duration Completion = 0;
  /// One idling wait: the bound on how long the scheduler may linger in
  /// the Idling state before it polls again (the wake-up latency).
  Duration Idling = 0;

  /// Checks the side conditions of Thm. 5.1 on the WCET parameters.
  CheckResult validate() const;

  /// A plausible "typical deployment" (§2.4): basic actions take a few
  /// hundred ns to a few µs on an embedded-class CPU.
  static BasicActionWcets typicalDeployment();
};

} // namespace rprosa

#endif // RPROSA_CORE_WCET_H
