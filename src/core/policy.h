//===- core/policy.h - Scheduling policies ---------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling policies supported by this reproduction. Rössl's
/// policy in the paper is NPFP (non-preemptive fixed priority); the EDF
/// and FIFO variants are the natural extensions suggested by the
/// related work (ProKOS verifies FP *and* EDF, §6; Prosa ships a
/// verified FIFO RTA). All three are non-preemptive and interrupt-free:
/// only the selection rule of npfp_dequeue changes.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_CORE_POLICY_H
#define RPROSA_CORE_POLICY_H

#include <cstdint>
#include <string>

namespace rprosa {

enum class SchedPolicy : std::uint8_t {
  /// Non-preemptive fixed priority (the paper's Rössl).
  Npfp,
  /// Non-preemptive earliest deadline first; a job's absolute deadline
  /// is its read time plus the task's relative deadline.
  Edf,
  /// Non-preemptive FIFO by read order.
  Fifo,
};

inline std::string toString(SchedPolicy P) {
  switch (P) {
  case SchedPolicy::Npfp:
    return "NPFP";
  case SchedPolicy::Edf:
    return "NP-EDF";
  case SchedPolicy::Fifo:
    return "NP-FIFO";
  }
  return "?";
}

} // namespace rprosa

#endif // RPROSA_CORE_POLICY_H
