//===- adequacy/report.cpp ------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "adequacy/report.h"

#include "support/table.h"

#include <algorithm>

using namespace rprosa;

std::vector<TaskStats> rprosa::aggregatePerTask(const AdequacyReport &Rep,
                                                const TaskSet &Tasks) {
  std::vector<TaskStats> Stats(Tasks.size());
  for (std::size_t I = 0; I < Tasks.size(); ++I) {
    Stats[I].Task = static_cast<TaskId>(I);
    if (I < Rep.Rta.PerTask.size() && Rep.Rta.PerTask[I].Bounded)
      Stats[I].Bound = Rep.Rta.PerTask[I].ResponseBound;
  }
  for (const JobVerdict &V : Rep.Jobs) {
    if (V.Task >= Stats.size())
      continue;
    TaskStats &S = Stats[V.Task];
    ++S.Arrivals;
    if (V.WithinHorizon)
      ++S.InHorizon;
    if (V.Completed) {
      ++S.Completed;
      if (V.ResponseTime > S.MaxResponse)
        S.MaxResponse = V.ResponseTime;
    }
    if (!V.Holds)
      ++S.Violations;
  }
  return Stats;
}

std::string AdequacyReport::summary() const {
  auto Line = [](const char *Name, const CheckResult &R) {
    std::string S = "  ";
    S += Name;
    S += R.passed() ? ": ok (" : ": FAILED (";
    S += std::to_string(R.checksPerformed());
    S += " checks)\n";
    if (!R.passed())
      S += R.describe();
    return S;
  };
  std::string Out = "adequacy run up to t_hrzn=" + std::to_string(Horizon) +
                    " (" + formatTicksAsNs(Horizon) + "), " +
                    std::to_string(Markers) + " markers, " +
                    std::to_string(NumJobs) + " jobs\n";
  Out += Line("client/static", StaticOk);
  Out += Line("arrival curves", ArrivalOk);
  Out += Line("timestamps", TimestampsOk);
  Out += Line("scheduler protocol", ProtocolOk);
  Out += Line("functional correctness", FunctionalOk);
  Out += Line("trace/arrival consistency", ConsistencyOk);
  Out += Line("WCET respected", WcetOk);
  Out += Line("schedule structure", ScheduleOk);
  Out += Line("validity (a)-(e)", ValidityOk);
  Out += std::string("  theorem 5.1: ") +
         (theoremHolds() ? (assumptionsHold() ? "holds"
                                              : "vacuous (assumptions "
                                                "violated)")
                         : "VIOLATED") +
         "\n";
  return Out;
}

std::string rprosa::renderTaskTable(const AdequacyReport &Rep,
                                    const TaskSet &Tasks) {
  TableWriter T({"task", "prio", "C_i", "bound R_i+J_i", "worst observed",
                 "bound/observed", "jobs", "violations"});
  for (const TaskStats &S : aggregatePerTask(Rep, Tasks)) {
    const Task &Tk = Tasks.task(S.Task);
    std::string Bound = S.Bound == TimeInfinity
                            ? "unbounded"
                            : formatTicksAsNs(S.Bound);
    T.addRow({Tk.Name, std::to_string(Tk.Prio), formatTicksAsNs(Tk.Wcet),
              Bound, formatTicksAsNs(S.MaxResponse),
              S.Bound == TimeInfinity
                  ? "-"
                  : formatRatio(S.Bound, S.MaxResponse),
              std::to_string(S.Arrivals), std::to_string(S.Violations)});
  }
  return T.renderAscii();
}

ResponseStats rprosa::responseStats(const AdequacyReport &Rep,
                                    TaskId Task) {
  std::vector<Duration> Samples;
  for (const JobVerdict &V : Rep.Jobs)
    if (V.Completed && (Task == InvalidTaskId || V.Task == Task))
      Samples.push_back(V.ResponseTime);
  ResponseStats S;
  S.Count = Samples.size();
  if (Samples.empty())
    return S;
  std::sort(Samples.begin(), Samples.end());
  auto Pct = [&](double P) {
    std::size_t I = static_cast<std::size_t>(P * (Samples.size() - 1));
    return Samples[I];
  };
  S.Min = Samples.front();
  S.P50 = Pct(0.50);
  S.P90 = Pct(0.90);
  S.P99 = Pct(0.99);
  S.Max = Samples.back();
  return S;
}

std::string rprosa::renderResponseHistogram(const AdequacyReport &Rep,
                                            const TaskSet &Tasks,
                                            TaskId Task,
                                            std::size_t Buckets,
                                            std::size_t BarWidth) {
  if (Task >= Tasks.size() || Buckets == 0)
    return "(no such task)\n";
  Duration Bound = Task < Rep.Rta.PerTask.size() &&
                           Rep.Rta.forTask(Task).Bounded
                       ? Rep.Rta.forTask(Task).ResponseBound
                       : 0;
  std::vector<Duration> Samples;
  for (const JobVerdict &V : Rep.Jobs)
    if (V.Completed && V.Task == Task)
      Samples.push_back(V.ResponseTime);
  if (Samples.empty())
    return "(no completed jobs for " + Tasks.task(Task).Name + ")\n";

  Duration Top = Bound;
  for (Duration S : Samples)
    Top = std::max(Top, S);
  if (Top == 0)
    Top = 1;

  std::vector<std::uint64_t> Counts(Buckets, 0);
  for (Duration S : Samples) {
    std::size_t B = static_cast<std::size_t>(
        (static_cast<unsigned long long>(S) * Buckets) / (Top + 1));
    ++Counts[std::min(B, Buckets - 1)];
  }
  std::uint64_t MaxCount = 1;
  for (std::uint64_t C : Counts)
    MaxCount = std::max(MaxCount, C);

  std::string Out = "response times of " + Tasks.task(Task).Name + " (" +
                    std::to_string(Samples.size()) + " jobs, bound " +
                    formatTicksAsNs(Bound) + "):\n";
  for (std::size_t B = 0; B < Buckets; ++B) {
    Duration Lo = Top * B / Buckets;
    Duration Hi = Top * (B + 1) / Buckets;
    std::string Bar(static_cast<std::size_t>(Counts[B] * BarWidth /
                                             MaxCount),
                    '#');
    Out += "  [" + formatTicksAsNs(Lo) + ", " + formatTicksAsNs(Hi) +
           ") " + Bar + " " + std::to_string(Counts[B]) + "\n";
  }
  return Out;
}
