//===- adequacy/pipeline.h - The end-to-end Thm. 5.1 pipeline -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable counterpart of Theorem 5.1 (timing correctness). One
/// call to runAdequacy():
///
///  1. validates the client (Def. 3.3) and WCET side conditions;
///  2. validates the arrival sequence against the arrival curves (Eq. 2)
///     and the message-id uniqueness assumption;
///  3. runs Rössl on the simulated substrate, producing a timed trace;
///  4. checks the trace invariants the paper proves with RefinedC:
///     scheduler protocol (Def. 3.1), functional correctness (Def. 3.2),
///     consistency with arr (Def. 2.1), WCET respect (§2.3), timestamp
///     sanity;
///  5. converts the trace to a schedule (§2.4) and checks the validity
///     constraints (a)–(e);
///  6. runs the overhead-aware RTA (§4) to obtain R_i + J_i;
///  7. renders the per-job verdicts of Thm. 5.1: every job of τ_i with
///     t_arr + R_i + J_i < t_hrzn must have its M_Completion marker by
///     t_arr + R_i + J_i.
///
/// The *guarantee* is conditional exactly as in the paper (§2.5): if any
/// assumption check fails (e.g. a violating cost model exceeded a WCET),
/// the verdicts are reported but carry no claim.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_ADEQUACY_PIPELINE_H
#define RPROSA_ADEQUACY_PIPELINE_H

#include "convert/trace_to_schedule.h"
#include "core/arrival_sequence.h"
#include "rossl/client.h"
#include "rossl/scheduler.h"
#include "rta/rta_npfp.h"
#include "sim/cost_model.h"
#include "support/check.h"

#include <optional>
#include <string>
#include <vector>

namespace rprosa {

/// Everything one adequacy run needs.
struct AdequacySpec {
  ClientConfig Client;
  ArrivalSequence Arr{1};
  CostModelKind Cost = CostModelKind::AlwaysWcet;
  std::uint64_t Seed = 1;
  RunLimits Limits;
  RtaConfig Rta;
  /// When set, step 6's RTA draws its overhead WCETs and callback WCETs
  /// from these (e.g. statically derived by analysis/timing) instead of
  /// Client.Wcets / the task table. NPFP-only: other policies fall back
  /// to the hand-supplied tables.
  std::optional<TimingInputs> StaticTiming;
};

/// The Thm. 5.1 verdict for one job (arrival).
struct JobVerdict {
  MsgId Msg = 0;
  TaskId Task = InvalidTaskId;
  Time ArrivalAt = 0;
  /// R_i + J_i (TimeInfinity when the RTA found no bound).
  Duration Bound = TimeInfinity;
  /// Whether t_arr + bound < t_hrzn — only then does Thm. 5.1 promise
  /// completion.
  bool WithinHorizon = false;
  /// Whether an M_Completion for this job appears on the trace.
  bool Completed = false;
  Time CompletedAt = 0;
  /// CompletedAt - ArrivalAt (0 when not completed).
  Duration ResponseTime = 0;
  /// The theorem's claim for this job: vacuous outside the horizon,
  /// otherwise completed within the bound.
  bool Holds = false;
};

/// The aggregated outcome of one adequacy run.
struct AdequacyReport {
  // Assumption checks (§2.5): static model + workload.
  CheckResult StaticOk;
  CheckResult ArrivalOk;
  // Trace invariants (the RefinedC-proved properties, §3).
  CheckResult TimestampsOk;
  CheckResult ProtocolOk;
  CheckResult FunctionalOk;
  CheckResult ConsistencyOk;
  CheckResult WcetOk;
  // Schedule-level checks (§2.4).
  CheckResult ScheduleOk;
  CheckResult ValidityOk;

  RtaResult Rta;
  std::vector<JobVerdict> Jobs;
  /// The materialized trace and conversion — batch driver only; the
  /// streaming driver leaves both empty (that is its point).
  ConversionResult Conv;
  TimedTrace TT;
  /// t_hrzn: the horizon up to which the scheduler is known to have run.
  Time Horizon = 0;
  /// Markers emitted / jobs admitted over the run (filled by both
  /// drivers; summary() reads these, not TT/Conv).
  std::size_t Markers = 0;
  std::size_t NumJobs = 0;

  /// All of Thm. 5.1's assumptions held on this run.
  bool assumptionsHold() const;
  /// All trace/schedule invariant checks passed.
  bool invariantsHold() const;
  /// Thm. 5.1's conclusion: every in-horizon job completed in bound.
  bool conclusionHolds() const;
  /// The full theorem on this run: assumptions ⟹ conclusion.
  bool theoremHolds() const {
    return !assumptionsHold() || (invariantsHold() && conclusionHolds());
  }

  /// Total elementary checks performed (experiment E9).
  std::size_t totalChecks() const;

  /// A multi-line human-readable summary.
  std::string summary() const;
};

/// Runs the full pipeline, materializing the trace and the conversion
/// (Rep.TT / Rep.Conv) along the way.
AdequacyReport runAdequacy(const AdequacySpec &Spec);

/// The single-pass form of runAdequacy: one simulator run drives every
/// trace checker, the incremental §2.4 converter, and the validity
/// constraints through a TraceFanout, keeping O(tasks + open jobs)
/// state — Rep.TT and Rep.Conv stay empty, so memory is independent of
/// the horizon. Reports (summary() bytes included) are identical to
/// runAdequacy()'s; tests/stream_equivalence_test.cpp enforces this.
AdequacyReport runAdequacyStreaming(const AdequacySpec &Spec);

} // namespace rprosa

#endif // RPROSA_ADEQUACY_PIPELINE_H
