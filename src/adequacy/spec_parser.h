//===- adequacy/spec_parser.h - Text format for system models -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small text format describing a system to analyze — what a user of
/// the library would keep next to their scheduler deployment (see
/// examples/rp_analyze.cpp):
///
///   # comments and blank lines are ignored
///   system lidar-node           # optional
///   sockets 4
///   policy npfp                  # npfp | edf | fifo (default npfp)
///   wcets fr 400ns sr 900ns sel 300ns disp 250ns compl 350ns idle 2us
///   task lidar  wcet 800us prio 4 curve periodic 25ms
///   task diag   wcet 500us prio 1 curve bucket 3 200ms
///   task fused  wcet 1ms   prio 2 deadline 10ms curve periodic-jitter 20ms 1ms
///
/// Time literals accept the suffixes ns, us, ms, s (bare numbers are
/// ticks = ns).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_ADEQUACY_SPEC_PARSER_H
#define RPROSA_ADEQUACY_SPEC_PARSER_H

#include "rossl/client.h"
#include "support/check.h"

#include <optional>
#include <string>

namespace rprosa {

/// A parsed system description.
struct SystemSpec {
  std::string Name = "unnamed";
  ClientConfig Client;
};

/// Parses the spec format; nullopt on error with the reason appended to
/// \p Diags when non-null.
std::optional<SystemSpec> parseSystemSpec(const std::string &Text,
                                          CheckResult *Diags = nullptr);

} // namespace rprosa

#endif // RPROSA_ADEQUACY_SPEC_PARSER_H
