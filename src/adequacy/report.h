//===- adequacy/report.h - Rendering adequacy reports ---------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers that render an AdequacyReport for the examples and the
/// benchmark harnesses: a per-task table (bound vs. worst observed
/// response) and aggregate statistics.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_ADEQUACY_REPORT_H
#define RPROSA_ADEQUACY_REPORT_H

#include "adequacy/pipeline.h"

#include <string>
#include <vector>

namespace rprosa {

/// Per-task aggregation of the job verdicts.
struct TaskStats {
  TaskId Task = InvalidTaskId;
  std::uint64_t Arrivals = 0;
  std::uint64_t Completed = 0;
  std::uint64_t InHorizon = 0;
  std::uint64_t Violations = 0;
  Duration MaxResponse = 0;
  Duration Bound = TimeInfinity;
};

/// Aggregates the verdicts of \p Rep per task.
std::vector<TaskStats> aggregatePerTask(const AdequacyReport &Rep,
                                        const TaskSet &Tasks);

/// Renders the per-task table (task, priority, C_i, bound, worst
/// observed, tightness ratio, verdict).
std::string renderTaskTable(const AdequacyReport &Rep, const TaskSet &Tasks);

/// Percentiles of a sample of observed response times.
struct ResponseStats {
  std::uint64_t Count = 0;
  Duration Min = 0;
  Duration P50 = 0;
  Duration P90 = 0;
  Duration P99 = 0;
  Duration Max = 0;
};

/// Computes percentiles over the completed jobs of \p Task (all tasks
/// when Task == InvalidTaskId).
ResponseStats responseStats(const AdequacyReport &Rep,
                            TaskId Task = InvalidTaskId);

/// A text histogram of \p Task's response times between 0 and the
/// task's bound, one row per bucket ('#' bars), with the bound marked.
/// Useful for eyeballing how much headroom the analysis leaves.
std::string renderResponseHistogram(const AdequacyReport &Rep,
                                    const TaskSet &Tasks, TaskId Task,
                                    std::size_t Buckets = 10,
                                    std::size_t BarWidth = 40);

} // namespace rprosa

#endif // RPROSA_ADEQUACY_REPORT_H
