//===- adequacy/spec_parser.cpp -------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "adequacy/spec_parser.h"

#include <memory>
#include <sstream>

using namespace rprosa;

namespace {

/// Tokenized view of one directive line.
class Tokens {
public:
  explicit Tokens(const std::string &Line) : In(Line) {}

  std::optional<std::string> word() {
    std::string W;
    if (In >> W)
      return W;
    return std::nullopt;
  }

  std::optional<Duration> time() {
    std::optional<std::string> W = word();
    return W ? parseTimeLiteral(*W) : std::nullopt;
  }

  std::optional<std::uint64_t> number() {
    std::optional<std::string> W = word();
    if (!W)
      return std::nullopt;
    for (char C : *W)
      if (C < '0' || C > '9')
        return std::nullopt;
    if (W->empty() || W->size() > 19)
      return std::nullopt;
    return std::stoull(*W);
  }

private:
  std::istringstream In;
};

/// Parses the "curve ..." tail of a task directive.
ArrivalCurvePtr parseCurve(Tokens &T, std::string &Err) {
  std::optional<std::string> Kind = T.word();
  if (!Kind) {
    Err = "missing curve kind";
    return nullptr;
  }
  if (*Kind == "periodic") {
    std::optional<Duration> Period = T.time();
    if (!Period || *Period == 0) {
      Err = "periodic curve needs a positive period";
      return nullptr;
    }
    return std::make_shared<PeriodicCurve>(*Period);
  }
  if (*Kind == "bucket") {
    std::optional<std::uint64_t> Burst = T.number();
    std::optional<Duration> Rate = T.time();
    if (!Burst || *Burst == 0 || !Rate || *Rate == 0) {
      Err = "bucket curve needs a positive burst and rate";
      return nullptr;
    }
    return std::make_shared<LeakyBucketCurve>(*Burst, *Rate);
  }
  if (*Kind == "periodic-jitter") {
    std::optional<Duration> Period = T.time();
    std::optional<Duration> Jit = T.time();
    if (!Period || *Period == 0 || !Jit) {
      Err = "periodic-jitter curve needs a period and a jitter";
      return nullptr;
    }
    return std::make_shared<PeriodicJitterCurve>(*Period, *Jit);
  }
  Err = "unknown curve kind '" + *Kind + "'";
  return nullptr;
}

} // namespace

std::optional<SystemSpec> rprosa::parseSystemSpec(const std::string &Text,
                                                  CheckResult *Diags) {
  auto Fail = [&](std::size_t LineNo,
                  const std::string &Why) -> std::optional<SystemSpec> {
    if (Diags)
      Diags->addFailure("spec error at line " + std::to_string(LineNo) +
                        ": " + Why);
    return std::nullopt;
  };

  SystemSpec Spec;
  bool SawWcets = false;

  std::istringstream In(Text);
  std::string Line;
  std::size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    Tokens T(Line);
    std::optional<std::string> Directive = T.word();
    if (!Directive)
      continue; // Blank / comment-only line.

    if (*Directive == "system") {
      std::optional<std::string> Name = T.word();
      if (!Name)
        return Fail(LineNo, "system needs a name");
      Spec.Name = *Name;
    } else if (*Directive == "sockets") {
      std::optional<std::uint64_t> N = T.number();
      if (!N || *N == 0 || *N > 4096)
        return Fail(LineNo, "sockets needs a count in [1, 4096]");
      Spec.Client.NumSockets = static_cast<std::uint32_t>(*N);
    } else if (*Directive == "policy") {
      std::optional<std::string> P = T.word();
      if (!P)
        return Fail(LineNo, "policy needs npfp|edf|fifo");
      if (*P == "npfp")
        Spec.Client.Policy = SchedPolicy::Npfp;
      else if (*P == "edf")
        Spec.Client.Policy = SchedPolicy::Edf;
      else if (*P == "fifo")
        Spec.Client.Policy = SchedPolicy::Fifo;
      else
        return Fail(LineNo, "unknown policy '" + *P + "'");
    } else if (*Directive == "wcets") {
      // Key-value pairs: fr/sr/sel/disp/compl/idle.
      while (std::optional<std::string> Key = T.word()) {
        std::optional<Duration> V = T.time();
        if (!V)
          return Fail(LineNo, "wcets: missing value for '" + *Key + "'");
        if (*Key == "fr")
          Spec.Client.Wcets.FailedRead = *V;
        else if (*Key == "sr")
          Spec.Client.Wcets.SuccessfulRead = *V;
        else if (*Key == "sel")
          Spec.Client.Wcets.Selection = *V;
        else if (*Key == "disp")
          Spec.Client.Wcets.Dispatch = *V;
        else if (*Key == "compl")
          Spec.Client.Wcets.Completion = *V;
        else if (*Key == "idle")
          Spec.Client.Wcets.Idling = *V;
        else
          return Fail(LineNo, "wcets: unknown key '" + *Key + "'");
      }
      SawWcets = true;
    } else if (*Directive == "task") {
      std::optional<std::string> Name = T.word();
      if (!Name)
        return Fail(LineNo, "task needs a name");
      Duration Wcet = 0, Deadline = 0;
      Priority Prio = 0;
      ArrivalCurvePtr Curve;
      while (std::optional<std::string> Key = T.word()) {
        if (*Key == "wcet") {
          std::optional<Duration> V = T.time();
          if (!V)
            return Fail(LineNo, "task: malformed wcet");
          Wcet = *V;
        } else if (*Key == "prio") {
          std::optional<std::uint64_t> V = T.number();
          if (!V)
            return Fail(LineNo, "task: malformed prio");
          Prio = static_cast<Priority>(*V);
        } else if (*Key == "deadline") {
          std::optional<Duration> V = T.time();
          if (!V)
            return Fail(LineNo, "task: malformed deadline");
          Deadline = *V;
        } else if (*Key == "curve") {
          std::string Err;
          Curve = parseCurve(T, Err);
          if (!Curve)
            return Fail(LineNo, "task: " + Err);
        } else {
          return Fail(LineNo, "task: unknown key '" + *Key + "'");
        }
      }
      if (Wcet == 0)
        return Fail(LineNo, "task '" + *Name + "' needs a positive wcet");
      if (!Curve)
        return Fail(LineNo, "task '" + *Name + "' needs a curve");
      Spec.Client.Tasks.addTask(*Name, Wcet, Prio, std::move(Curve),
                                Deadline);
    } else {
      return Fail(LineNo, "unknown directive '" + *Directive + "'");
    }
  }

  if (!SawWcets)
    return Fail(LineNo, "missing 'wcets' directive");
  if (Spec.Client.Tasks.empty())
    return Fail(LineNo, "no tasks declared");
  return Spec;
}
