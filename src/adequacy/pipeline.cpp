//===- adequacy/pipeline.cpp ----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"

#include "convert/schedule_builder.h"
#include "convert/validity.h"
#include "convert/validity_stream.h"
#include "rta/rta_policies.h"
#include "sim/environment.h"
#include "trace/check_sinks.h"
#include "trace/consistency.h"
#include "trace/functional.h"
#include "trace/protocol.h"
#include "trace/wcet_check.h"

#include <map>
#include <optional>

using namespace rprosa;

bool AdequacyReport::assumptionsHold() const {
  return StaticOk.passed() && ArrivalOk.passed() && WcetOk.passed() &&
         ConsistencyOk.passed() && TimestampsOk.passed();
}

bool AdequacyReport::invariantsHold() const {
  return ProtocolOk.passed() && FunctionalOk.passed() &&
         ScheduleOk.passed() && ValidityOk.passed();
}

bool AdequacyReport::conclusionHolds() const {
  for (const JobVerdict &V : Jobs)
    if (!V.Holds)
      return false;
  return true;
}

std::size_t AdequacyReport::totalChecks() const {
  std::size_t N = 0;
  for (const CheckResult *R :
       {&StaticOk, &ArrivalOk, &TimestampsOk, &ProtocolOk, &FunctionalOk,
        &ConsistencyOk, &WcetOk, &ScheduleOk, &ValidityOk})
    N += R->checksPerformed();
  return N + Jobs.size();
}

namespace {

/// Steps 1-2: assumptions on the model and the workload (shared by both
/// drivers).
void checkAssumptions(const AdequacySpec &Spec, AdequacyReport &Rep) {
  Rep.StaticOk = validateClient(Spec.Client);
  Rep.ArrivalOk = Spec.Arr.respectsCurves(Spec.Client.Tasks);
  Rep.ArrivalOk.merge(Spec.Arr.uniqueMsgIds());
}

/// Step 6: the RTA matching the client's policy. With StaticTiming set
/// the NPFP analysis runs from the derived timing inputs instead of the
/// hand-supplied tables.
void runRta(const AdequacySpec &Spec, AdequacyReport &Rep) {
  if (Spec.StaticTiming && Spec.Client.Policy == SchedPolicy::Npfp)
    Rep.Rta = analyzeNpfp(Spec.Client.Tasks, *Spec.StaticTiming,
                          Spec.Client.NumSockets, Spec.Rta);
  else
    Rep.Rta = analyzePolicy(Spec.Client.Tasks, Spec.Client.Wcets,
                            Spec.Client.NumSockets, Spec.Client.Policy,
                            Spec.Rta);
}

/// Step 7: per-job verdicts. Completion is matched by message identity
/// (job ids are assigned at read time, arrivals are identified by
/// MsgId); \p ByMsg maps each read message to the completion time of
/// the job that owns it — the *first* job in conversion-table order
/// that read it, mirroring the batch ByMsg.emplace.
void renderVerdicts(const AdequacySpec &Spec, AdequacyReport &Rep,
                    const std::map<MsgId, std::optional<Time>> &ByMsg) {
  for (const Arrival &A : Spec.Arr.arrivals()) {
    JobVerdict V;
    V.Msg = A.Msg.Id;
    V.Task = A.Msg.Task;
    V.ArrivalAt = A.At;
    if (V.Task < Rep.Rta.PerTask.size() &&
        Rep.Rta.forTask(V.Task).Bounded)
      V.Bound = Rep.Rta.forTask(V.Task).ResponseBound;
    Time Deadline = satAdd(V.ArrivalAt, V.Bound);
    V.WithinHorizon = Deadline != TimeInfinity && Deadline < Rep.Horizon;
    auto It = ByMsg.find(A.Msg.Id);
    if (It != ByMsg.end() && It->second) {
      V.Completed = true;
      V.CompletedAt = *It->second;
      V.ResponseTime = V.CompletedAt - V.ArrivalAt;
    }
    V.Holds = !V.WithinHorizon || (V.Completed && V.CompletedAt <= Deadline);
    Rep.Jobs.push_back(V);
  }
}

/// The streaming verdict source: remembers, per message, the completion
/// time of its owning job. Ownership follows the batch semantics — the
/// first-admitted job that read the message — so a completion from a
/// different (duplicate-message) job is ignored, exactly as the batch
/// ByMsg lookup would ignore it.
class CompletionIndex final : public ScheduleEventConsumer {
public:
  void onJobAdmitted(const ConvertedJob &CJ, std::size_t Index) override {
    ByMsg.emplace(CJ.J.Msg, Owner{Index, std::nullopt});
  }
  void onJobRetired(const ConvertedJob &CJ, std::size_t Index) override {
    auto It = ByMsg.find(CJ.J.Msg);
    if (It != ByMsg.end() && It->second.Admission == Index)
      It->second.CompletedAt = CJ.CompletedAt;
  }

  std::map<MsgId, std::optional<Time>> take() {
    std::map<MsgId, std::optional<Time>> Out;
    for (const auto &[M, O] : ByMsg)
      Out.emplace(M, O.CompletedAt);
    return Out;
  }

private:
  struct Owner {
    std::size_t Admission = 0;
    std::optional<Time> CompletedAt;
  };
  std::map<MsgId, Owner> ByMsg;
};

} // namespace

AdequacyReport rprosa::runAdequacy(const AdequacySpec &Spec) {
  AdequacyReport Rep;
  checkAssumptions(Spec, Rep);

  // 3: one run of Rössl on the substrate.
  Environment Env(Spec.Arr);
  CostModel Costs(Spec.Client.Wcets, Spec.Cost, Spec.Seed);
  FdScheduler Sched(Spec.Client, Env, Costs);
  Rep.TT = Sched.run(Spec.Limits);
  Rep.Horizon = Rep.TT.EndTime;
  Rep.Markers = Rep.TT.size();

  // 4: the trace invariants.
  Rep.TimestampsOk = checkTimestamps(Rep.TT);
  Rep.ProtocolOk = checkProtocol(Rep.TT.Tr, Spec.Client.NumSockets);
  Rep.FunctionalOk = checkFunctionalCorrectness(Rep.TT.Tr,
                                                Spec.Client.Tasks,
                                                Spec.Client.Policy);
  Rep.ConsistencyOk = checkConsistency(Rep.TT, Spec.Arr);
  Rep.WcetOk = checkWcetRespected(Rep.TT, Spec.Client.Tasks,
                                  Spec.Client.Wcets);

  // 5: schedule conversion and validity.
  Rep.Conv = convertTraceToSchedule(Rep.TT, Spec.Client.NumSockets,
                                    &Rep.ScheduleOk);
  Rep.ScheduleOk.merge(Rep.Conv.Sched.validateStructure());
  Rep.ValidityOk = checkValidity(Rep.Conv, Spec.Client.Tasks, Spec.Arr,
                                 Spec.Client.Wcets, Spec.Client.NumSockets,
                                 Spec.Client.Policy);
  Rep.NumJobs = Rep.Conv.Jobs.size();

  runRta(Spec, Rep);

  std::map<MsgId, std::optional<Time>> ByMsg;
  for (const ConvertedJob &CJ : Rep.Conv.Jobs)
    ByMsg.emplace(CJ.J.Msg, CJ.CompletedAt);
  renderVerdicts(Spec, Rep, ByMsg);
  return Rep;
}

AdequacyReport rprosa::runAdequacyStreaming(const AdequacySpec &Spec) {
  AdequacyReport Rep;
  checkAssumptions(Spec, Rep);

  Environment Env(Spec.Arr);
  CostModel Costs(Spec.Client.Wcets, Spec.Cost, Spec.Seed);
  FdScheduler Sched(Spec.Client, Env, Costs);

  // Steps 4-5 as sinks of one fan-out: the five trace invariants, and
  // behind the incremental converter the structure, validity, and
  // verdict consumers. The trace is never materialized.
  TimestampCheckSink Ts;
  ProtocolCheckSink Prot(Spec.Client.NumSockets);
  FunctionalCheckSink Fun(Spec.Client.Tasks, Spec.Client.Policy);
  ConsistencyCheckSink Cons(Spec.Arr);
  WcetCheckSink Wcet(Spec.Client.Tasks, Spec.Client.Wcets);

  StreamingValidity Val(Spec.Client.Tasks, Spec.Arr, Spec.Client.Wcets,
                        Spec.Client.NumSockets, Spec.Client.Policy);
  ScheduleStructureSink Struct;
  CompletionIndex Compl;
  ScheduleEventFanout Events;
  Events.add(Val);
  Events.add(Struct);
  Events.add(Compl);
  ScheduleBuilder Builder(Spec.Client.NumSockets, Events, &Rep.ScheduleOk);

  TraceFanout Fan;
  Fan.add(Ts);
  Fan.add(Prot);
  Fan.add(Fun);
  Fan.add(Cons);
  Fan.add(Wcet);
  Fan.add(Builder);

  Rep.Horizon = Sched.run(Spec.Limits, Fan);
  Rep.Markers = Ts.markers();
  Rep.NumJobs = Builder.admittedJobs();

  Rep.TimestampsOk = Ts.take();
  Rep.ProtocolOk = Prot.take();
  Rep.FunctionalOk = Fun.take();
  Rep.ConsistencyOk = Cons.take();
  Rep.WcetOk = Wcet.take();
  // ScheduleOk already carries the builder's conversion diagnostics, in
  // the batch order (diagnostics first, then the structure checks).
  Rep.ScheduleOk.merge(Struct.take());
  Rep.ValidityOk = Val.take();

  runRta(Spec, Rep);
  renderVerdicts(Spec, Rep, Compl.take());
  return Rep;
}
