//===- adequacy/pipeline.cpp ----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"

#include "convert/validity.h"
#include "rta/rta_policies.h"
#include "sim/environment.h"
#include "trace/consistency.h"
#include "trace/functional.h"
#include "trace/protocol.h"
#include "trace/wcet_check.h"

#include <map>

using namespace rprosa;

bool AdequacyReport::assumptionsHold() const {
  return StaticOk.passed() && ArrivalOk.passed() && WcetOk.passed() &&
         ConsistencyOk.passed() && TimestampsOk.passed();
}

bool AdequacyReport::invariantsHold() const {
  return ProtocolOk.passed() && FunctionalOk.passed() &&
         ScheduleOk.passed() && ValidityOk.passed();
}

bool AdequacyReport::conclusionHolds() const {
  for (const JobVerdict &V : Jobs)
    if (!V.Holds)
      return false;
  return true;
}

std::size_t AdequacyReport::totalChecks() const {
  std::size_t N = 0;
  for (const CheckResult *R :
       {&StaticOk, &ArrivalOk, &TimestampsOk, &ProtocolOk, &FunctionalOk,
        &ConsistencyOk, &WcetOk, &ScheduleOk, &ValidityOk})
    N += R->checksPerformed();
  return N + Jobs.size();
}

AdequacyReport rprosa::runAdequacy(const AdequacySpec &Spec) {
  AdequacyReport Rep;

  // 1-2: assumptions on the model and the workload.
  Rep.StaticOk = validateClient(Spec.Client);
  Rep.ArrivalOk = Spec.Arr.respectsCurves(Spec.Client.Tasks);
  Rep.ArrivalOk.merge(Spec.Arr.uniqueMsgIds());

  // 3: one run of Rössl on the substrate.
  Environment Env(Spec.Arr);
  CostModel Costs(Spec.Client.Wcets, Spec.Cost, Spec.Seed);
  FdScheduler Sched(Spec.Client, Env, Costs);
  Rep.TT = Sched.run(Spec.Limits);
  Rep.Horizon = Rep.TT.EndTime;

  // 4: the trace invariants.
  Rep.TimestampsOk = checkTimestamps(Rep.TT);
  Rep.ProtocolOk = checkProtocol(Rep.TT.Tr, Spec.Client.NumSockets);
  Rep.FunctionalOk = checkFunctionalCorrectness(Rep.TT.Tr,
                                                Spec.Client.Tasks,
                                                Spec.Client.Policy);
  Rep.ConsistencyOk = checkConsistency(Rep.TT, Spec.Arr);
  Rep.WcetOk = checkWcetRespected(Rep.TT, Spec.Client.Tasks,
                                  Spec.Client.Wcets);

  // 5: schedule conversion and validity.
  Rep.Conv = convertTraceToSchedule(Rep.TT, Spec.Client.NumSockets,
                                    &Rep.ScheduleOk);
  Rep.ScheduleOk.merge(Rep.Conv.Sched.validateStructure());
  Rep.ValidityOk = checkValidity(Rep.Conv, Spec.Client.Tasks, Spec.Arr,
                                 Spec.Client.Wcets, Spec.Client.NumSockets,
                                 Spec.Client.Policy);

  // 6: the RTA matching the client's policy. With StaticTiming set the
  // NPFP analysis runs from the derived timing inputs instead of the
  // hand-supplied tables.
  if (Spec.StaticTiming && Spec.Client.Policy == SchedPolicy::Npfp)
    Rep.Rta = analyzeNpfp(Spec.Client.Tasks, *Spec.StaticTiming,
                          Spec.Client.NumSockets, Spec.Rta);
  else
    Rep.Rta = analyzePolicy(Spec.Client.Tasks, Spec.Client.Wcets,
                            Spec.Client.NumSockets, Spec.Client.Policy,
                            Spec.Rta);

  // 7: per-job verdicts (completion by message identity: job ids are
  // assigned at read time, arrivals are identified by MsgId).
  std::map<MsgId, const ConvertedJob *> ByMsg;
  for (const ConvertedJob &CJ : Rep.Conv.Jobs)
    ByMsg.emplace(CJ.J.Msg, &CJ);

  for (const Arrival &A : Spec.Arr.arrivals()) {
    JobVerdict V;
    V.Msg = A.Msg.Id;
    V.Task = A.Msg.Task;
    V.ArrivalAt = A.At;
    if (V.Task < Rep.Rta.PerTask.size() &&
        Rep.Rta.forTask(V.Task).Bounded)
      V.Bound = Rep.Rta.forTask(V.Task).ResponseBound;
    Time Deadline = satAdd(V.ArrivalAt, V.Bound);
    V.WithinHorizon = Deadline != TimeInfinity && Deadline < Rep.Horizon;
    auto It = ByMsg.find(A.Msg.Id);
    if (It != ByMsg.end() && It->second->CompletedAt) {
      V.Completed = true;
      V.CompletedAt = *It->second->CompletedAt;
      V.ResponseTime = V.CompletedAt - V.ArrivalAt;
    }
    V.Holds = !V.WithinHorizon || (V.Completed && V.CompletedAt <= Deadline);
    Rep.Jobs.push_back(V);
  }
  return Rep;
}
