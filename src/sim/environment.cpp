//===- sim/environment.cpp ------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/environment.h"

#include <cassert>

using namespace rprosa;

Environment::Environment(const ArrivalSequence &Arr)
    : Sockets(Arr.numSockets()) {
  for (const Arrival &A : Arr.arrivals()) {
    assert(A.Socket < Sockets.size() && "arrival on unknown socket");
    Sockets[A.Socket].deliver(A.At, A.Msg);
  }
}

std::optional<Message> Environment::read(SocketId Sock, Time ReturnTime) {
  assert(Sock < Sockets.size() && "read on unknown socket");
  return Sockets[Sock].tryRead(ReturnTime);
}

std::optional<Time> Environment::nextArrival() const {
  std::optional<Time> Best;
  for (const SimSocket &S : Sockets) {
    std::optional<Time> T = S.nextArrival();
    if (T && (!Best || *T < *Best))
      Best = T;
  }
  return Best;
}

std::size_t Environment::queuedMessages() const {
  std::size_t N = 0;
  for (const SimSocket &S : Sockets)
    N += S.queued();
  return N;
}
