//===- sim/socket.h - Simulated non-blocking datagram sockets -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper axiomatizes read "for the specific case of non-blocking
/// message-based I/O on datagram sockets" (§3.2, footnote 4). SimSocket
/// is that axiomatization made executable: a FIFO of messages, each with
/// an availability instant; a read returning at instant t succeeds iff
/// a message arrived strictly before t (matching Def. 2.1's t_a < ts[i])
/// and pops the earliest one, else it fails.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SIM_SOCKET_H
#define RPROSA_SIM_SOCKET_H

#include "core/message.h"
#include "core/time.h"

#include <deque>
#include <optional>

namespace rprosa {

/// One simulated datagram socket.
class SimSocket {
public:
  /// Enqueues a message that becomes readable after instant \p At.
  /// Messages must be enqueued in non-decreasing arrival order.
  void deliver(Time At, Message Msg);

  /// Simulates the return of a non-blocking read at instant
  /// \p ReturnTime: pops and returns the earliest message with arrival
  /// strictly before ReturnTime, or nullopt (EWOULDBLOCK) if none.
  std::optional<Message> tryRead(Time ReturnTime);

  /// True if some queued message is readable at \p ReturnTime.
  bool readable(Time ReturnTime) const;

  /// Earliest arrival instant still queued (nullopt when drained).
  std::optional<Time> nextArrival() const;

  std::size_t queued() const { return Queue.size(); }

private:
  struct Entry {
    Time At;
    Message Msg;
  };
  std::deque<Entry> Queue;
};

} // namespace rprosa

#endif // RPROSA_SIM_SOCKET_H
