//===- sim/cost_model.h - Sampled execution times for basic actions -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper assumes every basic action and callback runs within its
/// WCET (§2.5). The cost model is the substrate's source of *actual*
/// durations: it samples each basic action's run time, by default never
/// exceeding the WCET. A deliberately violating mode exists for fault
/// injection (the WCET checker must flag such runs, and Thm. 5.1's
/// guarantee is void for them).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SIM_COST_MODEL_H
#define RPROSA_SIM_COST_MODEL_H

#include "core/task.h"
#include "core/wcet.h"
#include "support/rng.h"

namespace rprosa {

/// How actual durations relate to the WCETs.
enum class CostModelKind : std::uint8_t {
  /// Every action takes exactly its WCET (the adversarial case the
  /// analysis is calibrated against).
  AlwaysWcet,
  /// Uniformly distributed in [1, WCET] (a "realistic" run).
  Uniform,
  /// A fixed fraction of the WCET (deterministic, fast runs).
  HalfWcet,
  /// FAULT INJECTION: occasionally exceeds the WCET (~1 in 64 samples,
  /// by up to 2x). Violates the assumptions of Thm. 5.1 on purpose.
  ViolatingOccasionally,
};

/// Deterministic per-statement costs of the deep embedding's *non-marker*
/// steps (assignments, branch tests, the scheduler-queue builtins, frees).
/// The native C++ scheduler folds these into its basic-action WCETs; the
/// embedded interpreter can charge them explicitly so that the static
/// timing analysis (analysis/timing) has observable instruction-level
/// costs to bound. All zero by default, which keeps the embedded machine
/// bit-identical to the native scheduler (the E12 differential tests).
struct InstructionCosts {
  Duration Assign = 0;  ///< One SetReg statement.
  Duration Branch = 0;  ///< One If/While condition evaluation.
  Duration Enqueue = 0; ///< npfp_enqueue(&sched, buf).
  Duration Dequeue = 0; ///< npfp_dequeue(&sched, buf).
  Duration Free = 0;    ///< free(buf).

  bool allZero() const {
    return Assign == 0 && Branch == 0 && Enqueue == 0 && Dequeue == 0 &&
           Free == 0;
  }

  /// One tick per statement: the smallest model under which every
  /// non-marker step is visible on the clock (tests and benches).
  static InstructionCosts unit() { return {1, 1, 1, 1, 1}; }
};

/// Samples concrete durations for the basic actions of one run.
class CostModel {
public:
  CostModel(const BasicActionWcets &W, CostModelKind Kind,
            std::uint64_t Seed, const InstructionCosts &Instr = {});

  Duration failedRead() { return sample(Wcets.FailedRead); }
  Duration successfulRead() { return sample(Wcets.SuccessfulRead); }
  Duration selection() { return sample(Wcets.Selection); }
  Duration dispatch() { return sample(Wcets.Dispatch); }
  Duration completion() { return sample(Wcets.Completion); }
  Duration idling() { return sample(Wcets.Idling); }
  /// The callback run time of one job of \p T (bounded by C_i).
  Duration exec(const Task &T) { return sample(T.Wcet); }

  /// The extra time a *successful* read spends after the availability
  /// poll (copying the datagram, bookkeeping). The substrate models a
  /// successful read as: poll for \p Spent ticks (the failed-read part,
  /// which determines the availability threshold), then copy for the
  /// returned extra, so that the total stays within WcetSR. Requires
  /// WcetSR >= WcetFR (checked by BasicActionWcets::validate).
  Duration readCompletionExtra(Duration Spent);

  CostModelKind kind() const { return Kind; }

  /// The deterministic non-marker statement costs this run charges
  /// (zero unless explicitly configured).
  const InstructionCosts &instr() const { return Instr; }

private:
  Duration sample(Duration Wcet);

  BasicActionWcets Wcets;
  CostModelKind Kind;
  SplitMix64 Rng;
  InstructionCosts Instr;
};

std::string toString(CostModelKind K);

} // namespace rprosa

#endif // RPROSA_SIM_COST_MODEL_H
