//===- sim/cost_model.h - Sampled execution times for basic actions -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper assumes every basic action and callback runs within its
/// WCET (§2.5). The cost model is the substrate's source of *actual*
/// durations: it samples each basic action's run time, by default never
/// exceeding the WCET. A deliberately violating mode exists for fault
/// injection (the WCET checker must flag such runs, and Thm. 5.1's
/// guarantee is void for them).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SIM_COST_MODEL_H
#define RPROSA_SIM_COST_MODEL_H

#include "core/task.h"
#include "core/wcet.h"
#include "support/rng.h"

namespace rprosa {

/// How actual durations relate to the WCETs.
enum class CostModelKind : std::uint8_t {
  /// Every action takes exactly its WCET (the adversarial case the
  /// analysis is calibrated against).
  AlwaysWcet,
  /// Uniformly distributed in [1, WCET] (a "realistic" run).
  Uniform,
  /// A fixed fraction of the WCET (deterministic, fast runs).
  HalfWcet,
  /// FAULT INJECTION: occasionally exceeds the WCET (~1 in 64 samples,
  /// by up to 2x). Violates the assumptions of Thm. 5.1 on purpose.
  ViolatingOccasionally,
};

/// Samples concrete durations for the basic actions of one run.
class CostModel {
public:
  CostModel(const BasicActionWcets &W, CostModelKind Kind,
            std::uint64_t Seed);

  Duration failedRead() { return sample(Wcets.FailedRead); }
  Duration successfulRead() { return sample(Wcets.SuccessfulRead); }
  Duration selection() { return sample(Wcets.Selection); }
  Duration dispatch() { return sample(Wcets.Dispatch); }
  Duration completion() { return sample(Wcets.Completion); }
  Duration idling() { return sample(Wcets.Idling); }
  /// The callback run time of one job of \p T (bounded by C_i).
  Duration exec(const Task &T) { return sample(T.Wcet); }

  /// The extra time a *successful* read spends after the availability
  /// poll (copying the datagram, bookkeeping). The substrate models a
  /// successful read as: poll for \p Spent ticks (the failed-read part,
  /// which determines the availability threshold), then copy for the
  /// returned extra, so that the total stays within WcetSR. Requires
  /// WcetSR >= WcetFR (checked by BasicActionWcets::validate).
  Duration readCompletionExtra(Duration Spent);

  CostModelKind kind() const { return Kind; }

private:
  Duration sample(Duration Wcet);

  BasicActionWcets Wcets;
  CostModelKind Kind;
  SplitMix64 Rng;
};

std::string toString(CostModelKind K);

} // namespace rprosa

#endif // RPROSA_SIM_COST_MODEL_H
