//===- sim/socket.cpp -----------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/socket.h"

#include "support/check.h"

using namespace rprosa;

void SimSocket::deliver(Time At, Message Msg) {
  // Armed in every build type: an out-of-order delivery silently breaks
  // the FIFO invariant tryRead's "earliest message" contract rests on,
  // and a Release-mode workload generator would corrupt every trace
  // derived from this socket downstream of the mistake.
  RPROSA_CHECK(Queue.empty() || Queue.back().At <= At,
               "messages must be delivered in non-decreasing arrival order");
  Queue.push_back(Entry{At, Msg});
}

std::optional<Message> SimSocket::tryRead(Time ReturnTime) {
  if (!readable(ReturnTime))
    return std::nullopt;
  Message M = Queue.front().Msg;
  Queue.pop_front();
  return M;
}

bool SimSocket::readable(Time ReturnTime) const {
  return !Queue.empty() && Queue.front().At < ReturnTime;
}

std::optional<Time> SimSocket::nextArrival() const {
  if (Queue.empty())
    return std::nullopt;
  return Queue.front().At;
}
