//===- sim/socket.cpp -----------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/socket.h"

#include <cassert>

using namespace rprosa;

void SimSocket::deliver(Time At, Message Msg) {
  assert((Queue.empty() || Queue.back().At <= At) &&
         "messages must be delivered in arrival order");
  Queue.push_back(Entry{At, Msg});
}

std::optional<Message> SimSocket::tryRead(Time ReturnTime) {
  if (!readable(ReturnTime))
    return std::nullopt;
  Message M = Queue.front().Msg;
  Queue.pop_front();
  return M;
}

bool SimSocket::readable(Time ReturnTime) const {
  return !Queue.empty() && Queue.front().At < ReturnTime;
}

std::optional<Time> SimSocket::nextArrival() const {
  if (Queue.empty())
    return std::nullopt;
  return Queue.front().At;
}
