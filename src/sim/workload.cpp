//===- sim/workload.cpp ---------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/workload.h"

#include "support/rng.h"

#include <cassert>

using namespace rprosa;

namespace {

/// Generates compliant arrival times for one task.
class TaskArrivalBuilder {
public:
  TaskArrivalBuilder(const Task &T, SplitMix64 Rng)
      : T(T), Rng(Rng),
        // The minimum steady-state gap: how far apart two consecutive
        // arrivals must at least be once a long prefix exists. Derived
        // from the window needed for 2 arrivals.
        MinGap(minWindowAdmitting(*T.Curve, 2)) {}

  /// The earliest compliant time >= Proposed for the next arrival,
  /// given all previous arrival times (core's shared push rule).
  Time earliestCompliantAt(Time Proposed) const {
    return earliestCompliantArrival(*T.Curve, Times, Proposed);
  }

  void commit(Time T_) { Times.push_back(T_); }
  const std::vector<Time> &times() const { return Times; }

  /// A randomized next proposal after the last arrival.
  Time proposeRandom(std::uint64_t GapScaleNum, std::uint64_t GapScaleDen) {
    Duration Base = MinGap == TimeInfinity ? 1 : MinGap;
    Duration MeanGap = satMul(Base, GapScaleNum) / GapScaleDen + 1;
    Duration Gap = Rng.nextInRange(0, satMul(MeanGap, 2));
    Time Last = Times.empty() ? 0 : Times.back();
    return satAdd(Last, Gap);
  }

private:
  const Task &T;
  SplitMix64 Rng;
  Duration MinGap;
  std::vector<Time> Times;
};

} // namespace

ArrivalSequence rprosa::generateWorkload(
    const TaskSet &Tasks, const std::vector<SocketId> &TaskSocket,
    const WorkloadSpec &Spec) {
  assert(TaskSocket.size() == Tasks.size() && "one socket per task");
  ArrivalSequence Arr(Spec.NumSockets);
  SplitMix64 Root(Spec.Seed);

  for (const Task &T : Tasks.tasks()) {
    assert(TaskSocket[T.Id] < Spec.NumSockets && "socket out of range");
    TaskArrivalBuilder B(T, Root.fork());
    std::uint64_t Limit = Spec.MaxArrivalsPerTask;
    while (Limit == 0 || B.times().size() < Limit) {
      Time Proposed = 0;
      switch (Spec.Style) {
      case WorkloadStyle::GreedyDense:
        // As early as the curve allows (starting from the last arrival
        // time; simultaneous arrivals happen when the curve is bursty).
        Proposed = B.times().empty() ? 0 : B.times().back();
        break;
      case WorkloadStyle::Random:
        Proposed = B.proposeRandom(1, 1);
        break;
      case WorkloadStyle::Sparse:
        Proposed = B.proposeRandom(3, 1);
        break;
      }
      Time At = B.earliestCompliantAt(Proposed);
      if (At == TimeInfinity || At >= Spec.Horizon)
        break;
      B.commit(At);
      Arr.addArrival(At, TaskSocket[T.Id], T.Id);
    }
  }
  return Arr;
}

ArrivalSequence rprosa::generateWorkload(const TaskSet &Tasks,
                                         const WorkloadSpec &Spec) {
  std::vector<SocketId> TaskSocket(Tasks.size());
  for (std::size_t I = 0; I < TaskSocket.size(); ++I)
    TaskSocket[I] = static_cast<SocketId>(I % Spec.NumSockets);
  return generateWorkload(Tasks, TaskSocket, Spec);
}
