//===- sim/arrival_log.h - Recorded arrival logs --------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis quantifies over all curve-compliant arrival sequences,
/// but a deployment also wants to replay *recorded* traffic (e.g. a
/// captured ROS bag or a packet trace) through the verified pipeline.
/// This module reads and writes a line-oriented arrival log:
///
///   refinedprosa-arrivals v1
///   # time socket task [payload]
///   0ns    0 0 16
///   1200us 1 2
///   ...
///
/// Time literals accept the ns/us/ms/s suffixes. Whether a replayed log
/// respects the declared curves is checked by the usual
/// ArrivalSequence::respectsCurves — a log that does not is exactly the
/// situation where the response-time guarantee does not apply.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SIM_ARRIVAL_LOG_H
#define RPROSA_SIM_ARRIVAL_LOG_H

#include "core/arrival_sequence.h"
#include "support/check.h"

#include <optional>
#include <string>

namespace rprosa {

/// Parses the v1 arrival-log format; nullopt on malformed input with
/// the reason in \p Diags. \p NumSockets bounds the socket column.
std::optional<ArrivalSequence> parseArrivalLog(const std::string &Text,
                                               std::uint32_t NumSockets,
                                               CheckResult *Diags = nullptr);

/// Renders \p Arr in the v1 format (times in plain ticks).
std::string serializeArrivalLog(const ArrivalSequence &Arr);

} // namespace rprosa

#endif // RPROSA_SIM_ARRIVAL_LOG_H
