//===- sim/environment.h - The scheduler's environment --------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment owns the input sockets and pre-loads them with the
/// arrival sequence of the run (§2.3: "we model these arrivals as an
/// arbitrary arrival sequence arr"). The scheduler interacts with it
/// only through the read axiomatization (SimSocket::tryRead), mirroring
/// how Rössl's only interface to the outside world is the read system
/// call.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SIM_ENVIRONMENT_H
#define RPROSA_SIM_ENVIRONMENT_H

#include "sim/socket.h"

#include "core/arrival_sequence.h"

#include <optional>
#include <vector>

namespace rprosa {

/// The simulated outside world: sockets loaded with arrivals.
class Environment {
public:
  /// Pre-loads all arrivals of \p Arr onto the corresponding sockets.
  explicit Environment(const ArrivalSequence &Arr);

  std::uint32_t numSockets() const {
    return static_cast<std::uint32_t>(Sockets.size());
  }

  /// Simulates a read on \p Sock returning at instant \p ReturnTime.
  std::optional<Message> read(SocketId Sock, Time ReturnTime);

  /// Earliest queued arrival instant across all sockets (nullopt when
  /// everything has been read).
  std::optional<Time> nextArrival() const;

  /// Total messages still queued.
  std::size_t queuedMessages() const;

private:
  std::vector<SimSocket> Sockets;
};

} // namespace rprosa

#endif // RPROSA_SIM_ENVIRONMENT_H
