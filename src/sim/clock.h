//===- sim/clock.h - The virtual clock of the simulation substrate --------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate's notion of "now". The paper's timestamps come from an
/// assumed list ts consistent with the run (§2.3); in this executable
/// reproduction, the cost model advances this clock by the sampled
/// duration of each basic action, and the marker recorder snapshots it —
/// so the produced (tr, ts) is consistent with the WCET assumptions by
/// construction (unless a violating cost model is configured).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SIM_CLOCK_H
#define RPROSA_SIM_CLOCK_H

#include "core/time.h"

namespace rprosa {

/// A monotone virtual clock.
class VirtualClock {
public:
  explicit VirtualClock(Time Start = 0) : NowV(Start) {}

  Time now() const { return NowV; }
  void advance(Duration D) { NowV = satAdd(NowV, D); }

private:
  Time NowV;
};

} // namespace rprosa

#endif // RPROSA_SIM_CLOCK_H
