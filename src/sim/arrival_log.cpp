//===- sim/arrival_log.cpp ------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/arrival_log.h"

#include "core/time.h"

#include <sstream>

using namespace rprosa;

std::optional<ArrivalSequence>
rprosa::parseArrivalLog(const std::string &Text, std::uint32_t NumSockets,
                        CheckResult *Diags) {
  auto Fail = [&](std::size_t LineNo, const std::string &Why)
      -> std::optional<ArrivalSequence> {
    if (Diags)
      Diags->addFailure("arrival log error at line " +
                        std::to_string(LineNo) + ": " + Why);
    return std::nullopt;
  };

  std::istringstream In(Text);
  std::string Line;
  std::size_t LineNo = 0;
  if (!std::getline(In, Line) || Line != "refinedprosa-arrivals v1")
    return Fail(1, "missing or unknown header");
  ++LineNo;

  ArrivalSequence Arr(NumSockets);
  while (std::getline(In, Line)) {
    ++LineNo;
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream Tok(Line);
    std::string TimeWord;
    if (!(Tok >> TimeWord))
      continue; // Blank or comment-only.
    std::optional<Duration> At = parseTimeLiteral(TimeWord);
    if (!At)
      return Fail(LineNo, "malformed time '" + TimeWord + "'");
    std::uint64_t Sock = 0, Task = 0, Payload = 16;
    if (!(Tok >> Sock >> Task))
      return Fail(LineNo, "expected '<time> <socket> <task> [payload]'");
    Tok >> Payload; // Optional.
    if (Sock >= NumSockets)
      return Fail(LineNo, "socket " + std::to_string(Sock) +
                              " out of range (have " +
                              std::to_string(NumSockets) + ")");
    Arr.addArrival(*At, static_cast<SocketId>(Sock),
                   static_cast<TaskId>(Task),
                   static_cast<std::uint32_t>(Payload));
  }
  return Arr;
}

std::string rprosa::serializeArrivalLog(const ArrivalSequence &Arr) {
  std::string Out = "refinedprosa-arrivals v1\n# time socket task "
                    "payload\n";
  for (const Arrival &A : Arr.arrivals()) {
    Out += std::to_string(A.At);
    Out += ' ';
    Out += std::to_string(A.Socket);
    Out += ' ';
    Out += std::to_string(A.Msg.Task);
    Out += ' ';
    Out += std::to_string(A.Msg.PayloadLen);
    Out += '\n';
  }
  return Out;
}
