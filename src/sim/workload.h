//===- sim/workload.h - Curve-compliant workload generators ---------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis quantifies over all arrival sequences that respect the
/// arrival curves (Eq. 2). The experiments need concrete such sequences:
///
///  - Random: randomized inter-arrival gaps, pushed later until the
///    task's own curve admits the arrival (compliance is monotone in
///    the arrival time, so pushing always terminates);
///  - GreedyDense: every arrival as early as the curve allows — the
///    densest compliant sequence, maximizing the overhead pile-ups that
///    motivate the paper (§1.1 "a pile-up of newly arrived jobs can
///    lead to bursts of scheduling overhead").
///
/// Both generators are exact: the produced sequence always satisfies
/// ArrivalSequence::respectsCurves (a property test asserts this).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_SIM_WORKLOAD_H
#define RPROSA_SIM_WORKLOAD_H

#include "core/arrival_sequence.h"
#include "core/task.h"

#include <vector>

namespace rprosa {

enum class WorkloadStyle : std::uint8_t {
  Random,      ///< Randomized compliant gaps.
  GreedyDense, ///< Max-rate compliant arrivals (adversarial bursts).
  Sparse,      ///< Compliant arrivals at roughly 3x the minimum gaps.
};

struct WorkloadSpec {
  std::uint32_t NumSockets = 1;
  /// Arrivals are generated in [0, Horizon).
  Time Horizon = 10 * TickMs;
  std::uint64_t Seed = 1;
  WorkloadStyle Style = WorkloadStyle::Random;
  /// Safety valve on the number of arrivals per task (0 = unlimited).
  std::uint64_t MaxArrivalsPerTask = 0;
};

/// Generates a compliant arrival sequence. \p TaskSocket maps each task
/// to the socket its messages arrive on (size must equal Tasks.size();
/// socket ids must be < Spec.NumSockets).
ArrivalSequence generateWorkload(const TaskSet &Tasks,
                                 const std::vector<SocketId> &TaskSocket,
                                 const WorkloadSpec &Spec);

/// Convenience: tasks assigned to sockets round-robin.
ArrivalSequence generateWorkload(const TaskSet &Tasks,
                                 const WorkloadSpec &Spec);

} // namespace rprosa

#endif // RPROSA_SIM_WORKLOAD_H
