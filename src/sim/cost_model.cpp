//===- sim/cost_model.cpp -------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/cost_model.h"

#include <algorithm>

using namespace rprosa;

CostModel::CostModel(const BasicActionWcets &W, CostModelKind Kind,
                     std::uint64_t Seed, const InstructionCosts &Instr)
    : Wcets(W), Kind(Kind), Rng(Seed), Instr(Instr) {}

Duration CostModel::sample(Duration Wcet) {
  // Durations are at least one tick: a basic action occupies time.
  Duration Floor = 1;
  Duration Bound = std::max(Wcet, Floor);
  switch (Kind) {
  case CostModelKind::AlwaysWcet:
    return Bound;
  case CostModelKind::Uniform:
    return Rng.nextInRange(Floor, Bound);
  case CostModelKind::HalfWcet:
    return std::max<Duration>(Floor, Bound / 2);
  case CostModelKind::ViolatingOccasionally:
    if (Rng.nextBernoulli(1, 64))
      return Bound + Rng.nextInRange(1, Bound + 1);
    return Rng.nextInRange(Floor, Bound);
  }
  return Bound;
}

Duration CostModel::readCompletionExtra(Duration Spent) {
  Duration Sr = Wcets.SuccessfulRead;
  Duration Budget = Sr > Spent ? Sr - Spent : 0;
  switch (Kind) {
  case CostModelKind::AlwaysWcet:
    return Budget;
  case CostModelKind::Uniform:
    return Budget == 0 ? 0 : Rng.nextInRange(0, Budget);
  case CostModelKind::HalfWcet:
    return Budget / 2;
  case CostModelKind::ViolatingOccasionally:
    if (Rng.nextBernoulli(1, 64))
      return Budget + Rng.nextInRange(1, Sr + 1);
    return Budget == 0 ? 0 : Rng.nextInRange(0, Budget);
  }
  return Budget;
}

std::string rprosa::toString(CostModelKind K) {
  switch (K) {
  case CostModelKind::AlwaysWcet:
    return "always-wcet";
  case CostModelKind::Uniform:
    return "uniform";
  case CostModelKind::HalfWcet:
    return "half-wcet";
  case CostModelKind::ViolatingOccasionally:
    return "violating";
  }
  return "?";
}
