//===- trace/stream.h - The streaming event core (push model) -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The push-based spine of the single-pass pipeline (DESIGN.md §9).
///
/// A TraceSink consumes timestamped marker events as they are emitted;
/// a *trace source* is anything that drives sinks:
///
///  - FdScheduler::run(Limits, Sink)  — the live simulator,
///  - replayTimedTrace(TT, Sink)      — replay of a materialized trace,
///  - readTraceStream(In, Sink, ...)  — chunked files (trace/chunked_io.h).
///
/// TraceFanout tees one source into many sinks, so one pass over one
/// source feeds every checker, the schedule builder, the online monitor,
/// and a serializer simultaneously. VectorSink materializes the stream
/// back into a TimedTrace; it is the adapter that keeps the batch entry
/// points (and with them the whole existing test corpus) alive as
/// equivalence oracles for the streaming path.
///
/// ActionSegmenter is the incremental form of segmentBasicActions: it
/// closes a basic action as soon as the marker *after* it arrives (the
/// §2.2 one-marker look-ahead), so consumers see the same action stream
/// the batch parser produces while holding at most one open action.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_STREAM_H
#define RPROSA_TRACE_STREAM_H

#include "trace/basic_actions.h"
#include "trace/trace.h"

#include "support/check.h"

#include <cassert>
#include <functional>
#include <vector>

namespace rprosa {

/// Consumer interface of the streaming pipeline. Events must arrive in
/// trace order; onEnd closes the stream (exactly once, after the last
/// marker).
class TraceSink {
public:
  virtual ~TraceSink() = default;

  /// The next marker, stamped with its emission instant.
  virtual void onMarker(const MarkerEvent &E, Time At) = 0;

  /// End of the run at \p EndTime (the t_hrzn of Thm. 5.1).
  virtual void onEnd(Time EndTime) = 0;
};

/// Tees one event stream into several sinks (delivery in add() order).
class TraceFanout final : public TraceSink {
public:
  void add(TraceSink &S) { Sinks.push_back(&S); }

  void onMarker(const MarkerEvent &E, Time At) override {
    for (TraceSink *S : Sinks)
      S->onMarker(E, At);
  }
  void onEnd(Time EndTime) override {
    for (TraceSink *S : Sinks)
      S->onEnd(EndTime);
  }

private:
  std::vector<TraceSink *> Sinks;
};

/// Materializes the stream into a TimedTrace — the batch adapter.
class VectorSink final : public TraceSink {
public:
  void onMarker(const MarkerEvent &E, Time At) override {
    TT.Tr.push_back(E);
    TT.Ts.push_back(At);
  }
  void onEnd(Time EndTime) override {
    TT.EndTime = EndTime;
    Finished = true;
  }

  bool finished() const { return Finished; }
  const TimedTrace &trace() const { return TT; }
  /// Moves the trace out (valid after onEnd).
  TimedTrace take() { return std::move(TT); }

private:
  TimedTrace TT;
  bool Finished = false;
};

/// Replays a materialized trace through a sink (the batch -> streaming
/// bridge). Precondition: one timestamp per marker.
inline void replayTimedTrace(const TimedTrace &TT, TraceSink &Sink) {
  RPROSA_CHECK(TT.Tr.size() == TT.Ts.size(),
               "timed trace must carry one timestamp per marker");
  for (std::size_t I = 0; I < TT.Tr.size(); ++I)
    Sink.onMarker(TT.Tr[I], TT.Ts[I]);
  Sink.onEnd(TT.EndTime);
}

/// Incremental basic-action parser. Feeds each *closed* action to the
/// callback, in order, with the timestamp of the read result marker
/// (M_ReadE) for Read actions (0 otherwise) — the instant §2.4 uses as
/// the job's ReadAt. Holds at most one open action: the bounded
/// look-ahead window of the streaming converter sits on top of this.
class ActionSegmenter {
public:
  /// \p ReadEAt is the M_ReadE timestamp for Read actions, 0 otherwise.
  using ActionFn = std::function<void(const BasicAction &A, Time ReadEAt)>;

  explicit ActionSegmenter(ActionFn Fn) : Emit(std::move(Fn)) {}

  void onMarker(const MarkerEvent &E, Time At) {
    if (Open && AwaitReadE) {
      // The marker after M_ReadS is the read result (§2.2 coalescing;
      // protocol-conformant traces make it an M_ReadE).
      assert(E.Kind == MarkerKind::ReadE &&
             "M_ReadS must be followed by M_ReadE (protocol)");
      A.Socket = E.Socket;
      A.J = E.J;
      ReadEAt = At;
      AwaitReadE = false;
      ++Index;
      return;
    }
    if (Open) {
      if (A.Kind == BasicActionKind::Selection &&
          E.Kind == MarkerKind::Dispatch)
        A.J = E.J; // Selection j resolved by the one-marker look-ahead.
      close(At);
    }
    start(E, At);
    ++Index;
  }

  void onEnd(Time EndTime) {
    if (Open && AwaitReadE)
      AwaitReadE = false; // Trace ends on a bare M_ReadS: a failed read.
    if (Open)
      close(EndTime);
  }

  /// Markers consumed so far.
  std::size_t position() const { return Index; }

private:
  void close(Time End) {
    A.End = End;
    A.EndMarker = Index;
    Emit(A, ReadEAt);
    Open = false;
  }

  void start(const MarkerEvent &E, Time At) {
    A = BasicAction();
    A.FirstMarker = Index;
    A.Start = At;
    ReadEAt = 0;
    switch (E.Kind) {
    case MarkerKind::ReadS:
      A.Kind = BasicActionKind::Read;
      AwaitReadE = true;
      break;
    case MarkerKind::ReadE:
      // Dangling read result; the batch parser asserts here too. Kept
      // as the (defensive) default Idling action.
      assert(false && "dangling M_ReadE (protocol violation)");
      break;
    case MarkerKind::Selection:
      A.Kind = BasicActionKind::Selection;
      break;
    case MarkerKind::Dispatch:
      A.Kind = BasicActionKind::Disp;
      A.J = E.J;
      break;
    case MarkerKind::Execution:
      A.Kind = BasicActionKind::Exec;
      A.J = E.J;
      break;
    case MarkerKind::Completion:
      A.Kind = BasicActionKind::Compl;
      A.J = E.J;
      break;
    case MarkerKind::Idling:
      A.Kind = BasicActionKind::Idling;
      break;
    }
    Open = true;
  }

  ActionFn Emit;
  BasicAction A;
  Time ReadEAt = 0;
  std::size_t Index = 0;
  bool Open = false;
  bool AwaitReadE = false;
};

} // namespace rprosa

#endif // RPROSA_TRACE_STREAM_H
