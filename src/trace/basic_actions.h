//===- trace/basic_actions.h - Segmenting traces into basic actions -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The basic actions of Fig. 4:
///
///   basic_actions ≜ Read sock j⊥ | Selection j⊥ | Disp j | Exec j
///                 | Compl j | Idling
///
/// Marker functions mark the *start* of a basic action; "in some cases
/// it only becomes clear later which basic action it is" (§2.2): a
/// M_Selection opens either Selection j (next marker is M_Dispatch j) or
/// Selection ⊥ (next marker is M_Idling), and M_ReadS + M_ReadE coalesce
/// into one Read action. This parser performs that (one-marker
/// look-ahead) resolution and computes each action's time span.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_BASIC_ACTIONS_H
#define RPROSA_TRACE_BASIC_ACTIONS_H

#include "trace/trace.h"

#include <optional>
#include <vector>

namespace rprosa {

enum class BasicActionKind : std::uint8_t {
  Read,      ///< Read sock j⊥ — one read system call (success or failure).
  Selection, ///< Selection j⊥ — choosing the next job (or failing to).
  Disp,      ///< Disp j — initiating the callback.
  Exec,      ///< Exec j — the callback runs.
  Compl,     ///< Compl j — cleanup after the callback.
  Idling,    ///< Idling — one idle cycle (no pending jobs).
};

/// One basic action with its marker span and time span.
struct BasicAction {
  BasicActionKind Kind = BasicActionKind::Idling;
  /// The job parameter (⊥ for failed reads / failed selection / idling).
  std::optional<Job> J;
  /// The socket (Read only).
  SocketId Socket = 0;
  /// Marker index range [FirstMarker, EndMarker) covered by this action.
  std::size_t FirstMarker = 0;
  std::size_t EndMarker = 0;
  /// Time span [Start, End).
  Time Start = 0;
  Time End = 0;

  Duration len() const { return End - Start; }
};

/// Parses a protocol-conformant timed trace into its basic actions.
/// Precondition: checkProtocol(TT.Tr, ...) passed (asserted in debug
/// builds); the parse itself only relies on local marker shapes.
std::vector<BasicAction> segmentBasicActions(const TimedTrace &TT);

std::string toString(BasicActionKind K);

} // namespace rprosa

#endif // RPROSA_TRACE_BASIC_ACTIONS_H
