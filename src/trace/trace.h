//===- trace/trace.h - Traces and timed traces (§2.2, §2.3) ---------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace is the sequence of marker events a run of the scheduler
/// emits. A *timed trace* (tr, ts) additionally maps every marker to the
/// instant at which its marker function was called (§2.3); EndTime
/// closes the last basic action (the simulated run ends at a marker
/// boundary, and EndTime is the clock value at that point — the horizon
/// up to which the scheduler is known to have run, Thm. 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_TRACE_H
#define RPROSA_TRACE_TRACE_H

#include "trace/marker.h"

#include "core/time.h"

#include <set>
#include <vector>

namespace rprosa {

using Trace = std::vector<MarkerEvent>;

/// A trace of marker functions with one timestamp per marker.
struct TimedTrace {
  Trace Tr;
  std::vector<Time> Ts;
  /// The instant at which the run stopped; it ends the last marker's
  /// basic action.
  Time EndTime = 0;

  std::size_t size() const { return Tr.size(); }
  bool empty() const { return Tr.empty(); }

  /// The duration of the segment started by marker \p I (up to the next
  /// marker, or EndTime for the last one).
  Duration segmentLen(std::size_t I) const {
    Time Next = I + 1 < Ts.size() ? Ts[I + 1] : EndTime;
    return Next >= Ts[I] ? Next - Ts[I] : 0;
  }
};

/// Def. 3.2: read_jobs(i) — the jobs read by markers strictly before
/// index \p I.
std::vector<Job> readJobsBefore(const Trace &Tr, std::size_t I);

/// Def. 3.2: pending_jobs(i) — jobs read before \p I but not dispatched
/// before \p I.
std::vector<Job> pendingJobsAt(const Trace &Tr, std::size_t I);

/// The set of message ids read strictly before index \p I (used by the
/// Def. 2.1 consistency check, which matches reads to arrivals by
/// message identity).
std::set<MsgId> readMsgIdsBefore(const Trace &Tr, std::size_t I);

/// Renders a timed trace as one marker per line with timestamps;
/// \p MaxLines truncates long traces (0 = no limit).
std::string renderTimedTrace(const TimedTrace &TT, std::size_t MaxLines = 0);

} // namespace rprosa

#endif // RPROSA_TRACE_TRACE_H
