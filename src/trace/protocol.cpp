//===- trace/protocol.cpp -------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/protocol.h"

#include "trace/check_sinks.h"

#include <cassert>

using namespace rprosa;

ProtocolSts::ProtocolSts(std::uint32_t NumSockets) : NumSockets(NumSockets) {
  assert(NumSockets > 0 && "need at least one socket");
}

static bool reject(std::string *Why, std::string Message) {
  if (Why)
    *Why = std::move(Message);
  return false;
}

bool ProtocolSts::step(const MarkerEvent &E, std::string *Why) {
  switch (State) {
  case Phase::PollExpectReadS:
    if (E.Kind != MarkerKind::ReadS)
      return reject(Why, "expected M_ReadS (polling), got " + toString(E));
    State = Phase::PollExpectReadE;
    break;

  case Phase::PollExpectReadE: {
    if (E.Kind != MarkerKind::ReadE)
      return reject(Why, "expected M_ReadE, got " + toString(E));
    if (E.Socket != CurSock)
      return reject(Why, "read of socket " + std::to_string(E.Socket) +
                             " out of round-robin order (expected s" +
                             std::to_string(CurSock) + ")");
    if (E.isSuccessfulRead())
      AnySuccessThisRound = true;
    ++CurSock;
    RoundStart = false;
    if (CurSock == NumSockets) {
      // Round finished: another round while anything succeeded; the
      // polling phase ends with the first all-failed round.
      bool AllFailed = !AnySuccessThisRound;
      CurSock = 0;
      AnySuccessThisRound = false;
      RoundStart = true;
      State = AllFailed ? Phase::ExpectSelection : Phase::PollExpectReadS;
    } else {
      State = Phase::PollExpectReadS;
    }
    break;
  }

  case Phase::ExpectSelection:
    if (E.Kind != MarkerKind::Selection)
      return reject(Why, "expected M_Selection, got " + toString(E));
    State = Phase::ExpectDispatchOrIdling;
    break;

  case Phase::ExpectDispatchOrIdling:
    if (E.Kind == MarkerKind::Idling) {
      State = Phase::PollExpectReadS;
      break;
    }
    if (E.Kind == MarkerKind::Dispatch) {
      if (!E.J)
        return reject(Why, "M_Dispatch without a job");
      CurJob = E.J->Id;
      State = Phase::ExpectExecution;
      break;
    }
    return reject(Why,
                  "expected M_Dispatch or M_Idling, got " + toString(E));

  case Phase::ExpectExecution:
    if (E.Kind != MarkerKind::Execution || !E.J)
      return reject(Why, "expected M_Execution, got " + toString(E));
    if (E.J->Id != CurJob)
      return reject(Why, "M_Execution of j" + std::to_string(E.J->Id) +
                             " does not match dispatched j" +
                             std::to_string(CurJob));
    State = Phase::ExpectCompletion;
    break;

  case Phase::ExpectCompletion:
    if (E.Kind != MarkerKind::Completion || !E.J)
      return reject(Why, "expected M_Completion, got " + toString(E));
    if (E.J->Id != CurJob)
      return reject(Why, "M_Completion of j" + std::to_string(E.J->Id) +
                             " does not match dispatched j" +
                             std::to_string(CurJob));
    CurJob = InvalidJobId;
    State = Phase::PollExpectReadS;
    break;
  }
  ++Pos;
  return true;
}

bool ProtocolSts::atIterationBoundary() const {
  return State == Phase::PollExpectReadS && RoundStart;
}

CheckResult rprosa::checkProtocol(const Trace &Tr, std::uint32_t NumSockets) {
  // Batch adapter over the streaming sink (trace/check_sinks.h).
  ProtocolCheckSink S(NumSockets);
  for (const MarkerEvent &E : Tr)
    S.onMarker(E, 0); // Def. 3.1 is timestamp-independent.
  S.onEnd(0);
  return S.take();
}
