//===- trace/wcet_check.cpp -----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
// Batch adapters over the streaming sinks (trace/check_sinks.h): the
// materialized-trace entry points replay through the single-pass
// implementation, so both paths are one code path by construction.
//===----------------------------------------------------------------------===//

#include "trace/wcet_check.h"

#include "trace/check_sinks.h"

#include <string>

using namespace rprosa;

CheckResult rprosa::checkTimestamps(const TimedTrace &TT) {
  // The size mismatch is a property only the materialized form can
  // exhibit (a stream always pairs marker and timestamp); keep the
  // batch-only diagnostic here, before replaying.
  if (TT.Tr.size() != TT.Ts.size()) {
    CheckResult R;
    R.noteCheck();
    R.addFailure("timed trace has " + std::to_string(TT.Tr.size()) +
                 " markers but " + std::to_string(TT.Ts.size()) +
                 " timestamps");
    return R;
  }
  TimestampCheckSink S;
  replayTimedTrace(TT, S);
  return S.take();
}

CheckResult rprosa::checkWcetRespected(const TimedTrace &TT,
                                       const TaskSet &Tasks,
                                       const BasicActionWcets &W) {
  WcetCheckSink S(Tasks, W);
  replayTimedTrace(TT, S);
  return S.take();
}
