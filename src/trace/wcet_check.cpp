//===- trace/wcet_check.cpp -----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/wcet_check.h"

#include "trace/basic_actions.h"

#include <string>

using namespace rprosa;

CheckResult rprosa::checkTimestamps(const TimedTrace &TT) {
  CheckResult R;
  R.noteCheck();
  if (TT.Tr.size() != TT.Ts.size()) {
    R.addFailure("timed trace has " + std::to_string(TT.Tr.size()) +
                 " markers but " + std::to_string(TT.Ts.size()) +
                 " timestamps");
    return R;
  }
  for (std::size_t I = 1; I < TT.Ts.size(); ++I) {
    R.noteCheck();
    if (TT.Ts[I] < TT.Ts[I - 1]) {
      R.addFailure("timestamps decrease at marker " + std::to_string(I));
      return R;
    }
  }
  R.noteCheck();
  if (!TT.Ts.empty() && TT.EndTime < TT.Ts.back())
    R.addFailure("EndTime precedes the last marker");
  return R;
}

CheckResult rprosa::checkWcetRespected(const TimedTrace &TT,
                                       const TaskSet &Tasks,
                                       const BasicActionWcets &W) {
  CheckResult R;
  for (const BasicAction &A : segmentBasicActions(TT)) {
    R.noteCheck();
    Duration Bound = 0;
    std::string What;
    switch (A.Kind) {
    case BasicActionKind::Read:
      Bound = A.J ? W.SuccessfulRead : W.FailedRead;
      What = A.J ? "successful read" : "failed read";
      break;
    case BasicActionKind::Selection:
      Bound = W.Selection;
      What = "selection";
      break;
    case BasicActionKind::Disp:
      Bound = W.Dispatch;
      What = "dispatch";
      break;
    case BasicActionKind::Exec: {
      if (!A.J || A.J->Task >= Tasks.size()) {
        R.addFailure("execution action without a valid task at marker " +
                     std::to_string(A.FirstMarker));
        continue;
      }
      Bound = Tasks.task(A.J->Task).Wcet;
      What = "callback of task " + Tasks.task(A.J->Task).Name;
      break;
    }
    case BasicActionKind::Compl:
      Bound = W.Completion;
      What = "completion";
      break;
    case BasicActionKind::Idling:
      Bound = W.Idling;
      What = "idle cycle";
      break;
    }
    if (A.len() > Bound)
      R.addFailure(What + " at marker " + std::to_string(A.FirstMarker) +
                   " took " + std::to_string(A.len()) +
                   " ticks, exceeding its WCET of " + std::to_string(Bound));
  }
  return R;
}
