//===- trace/serialize.cpp ------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/serialize.h"

#include <charconv>
#include <sstream>

using namespace rprosa;

static void appendJobFields(std::string &Out, const Job &J) {
  Out += ' ';
  Out += std::to_string(J.Id);
  Out += ' ';
  Out += std::to_string(J.Msg);
  Out += ' ';
  Out += std::to_string(J.Task);
  Out += ' ';
  Out += std::to_string(J.ReadAt);
}

void rprosa::appendMarkerLine(std::string &Out, Time Ts,
                              const MarkerEvent &E) {
  Out += std::to_string(Ts);
  Out += ' ';
  switch (E.Kind) {
  case MarkerKind::ReadS:
    Out += "ReadS";
    break;
  case MarkerKind::ReadE:
    Out += "ReadE ";
    Out += std::to_string(E.Socket);
    if (E.J) {
      Out += " ok";
      appendJobFields(Out, *E.J);
    } else {
      Out += " fail";
    }
    break;
  case MarkerKind::Selection:
    Out += "Selection";
    break;
  case MarkerKind::Dispatch:
  case MarkerKind::Execution:
  case MarkerKind::Completion: {
    Out += E.Kind == MarkerKind::Dispatch
               ? "Dispatch"
               : (E.Kind == MarkerKind::Execution ? "Execution"
                                                  : "Completion");
    if (E.J) {
      appendJobFields(Out, *E.J);
      Out += ' ';
      Out += std::to_string(E.J->Socket);
    }
    break;
  }
  case MarkerKind::Idling:
    Out += "Idling";
    break;
  }
  Out += '\n';
}

std::string rprosa::serializeTimedTrace(const TimedTrace &TT) {
  std::string Out = "refinedprosa-trace v1\n";
  for (std::size_t I = 0; I < TT.size(); ++I)
    appendMarkerLine(Out, TT.Ts[I], TT.Tr[I]);
  Out += "end " + std::to_string(TT.EndTime) + "\n";
  return Out;
}

namespace {

/// Decimal u64 with explicit overflow rejection — stoull would throw
/// (and a 21-digit timestamp would crash the "returns diagnostics
/// instead of crashing" contract).
std::optional<std::uint64_t> parseU64(const std::string &Tok) {
  if (Tok.empty())
    return std::nullopt;
  for (char C : Tok)
    if (C < '0' || C > '9')
      return std::nullopt;
  std::uint64_t V = 0;
  auto [Ptr, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), V);
  if (Ec != std::errc() || Ptr != Tok.data() + Tok.size())
    return std::nullopt;
  return V;
}

/// Whitespace tokenizer over one line.
class LineTokens {
public:
  explicit LineTokens(const std::string &Line) : In(Line) {}

  std::optional<std::string> next() {
    std::string Tok;
    if (In >> Tok)
      return Tok;
    return std::nullopt;
  }

  std::optional<std::uint64_t> nextU64() {
    std::optional<std::string> Tok = next();
    if (!Tok)
      return std::nullopt;
    return parseU64(*Tok);
  }

private:
  std::istringstream In;
};

std::optional<Job> parseJobFields(LineTokens &T, bool WithSocket) {
  Job J;
  auto Id = T.nextU64();
  auto Msg = T.nextU64();
  auto Task = T.nextU64();
  auto ReadAt = T.nextU64();
  if (!Id || !Msg || !Task || !ReadAt)
    return std::nullopt;
  J.Id = *Id;
  J.Msg = *Msg;
  J.Task = static_cast<TaskId>(*Task);
  J.ReadAt = *ReadAt;
  if (WithSocket) {
    auto Sock = T.nextU64();
    if (!Sock)
      return std::nullopt;
    J.Socket = static_cast<SocketId>(*Sock);
  }
  return J;
}

bool lineFail(std::string *Why, std::string Message) {
  if (Why)
    *Why = std::move(Message);
  return false;
}

} // namespace

bool rprosa::parseMarkerLine(const std::string &Line, Time &Ts,
                             MarkerEvent &E, std::string *Why) {
  LineTokens T(Line);
  std::optional<std::string> First = T.next();
  if (!First)
    return lineFail(Why, "expected a timestamp");

  std::optional<std::uint64_t> Stamp = parseU64(*First);
  if (!Stamp)
    return lineFail(Why, "expected a timestamp");
  Ts = *Stamp;

  std::optional<std::string> Kind = T.next();
  if (!Kind)
    return lineFail(Why, "missing marker kind");

  if (*Kind == "ReadS") {
    E = MarkerEvent::readS();
  } else if (*Kind == "ReadE") {
    auto Sock = T.nextU64();
    std::optional<std::string> Status = T.next();
    if (!Sock || !Status)
      return lineFail(Why, "malformed ReadE");
    if (*Status == "ok") {
      std::optional<Job> J = parseJobFields(T, /*WithSocket=*/false);
      if (!J)
        return lineFail(Why, "malformed ReadE job fields");
      J->Socket = static_cast<SocketId>(*Sock);
      E = MarkerEvent::readE(static_cast<SocketId>(*Sock), *J);
    } else if (*Status == "fail") {
      E = MarkerEvent::readE(static_cast<SocketId>(*Sock), std::nullopt);
    } else {
      return lineFail(Why, "ReadE status must be ok/fail");
    }
  } else if (*Kind == "Selection") {
    E = MarkerEvent::selection();
  } else if (*Kind == "Idling") {
    E = MarkerEvent::idling();
  } else if (*Kind == "Dispatch" || *Kind == "Execution" ||
             *Kind == "Completion") {
    std::optional<Job> J = parseJobFields(T, /*WithSocket=*/true);
    if (!J)
      return lineFail(Why, "malformed " + *Kind + " job fields");
    if (*Kind == "Dispatch")
      E = MarkerEvent::dispatch(*J);
    else if (*Kind == "Execution")
      E = MarkerEvent::execution(*J);
    else
      E = MarkerEvent::completion(*J);
  } else {
    return lineFail(Why, "unknown marker kind '" + *Kind + "'");
  }
  return true;
}

std::optional<TimedTrace> rprosa::parseTimedTrace(const std::string &Text,
                                                  CheckResult *Diags) {
  auto Fail = [&](std::size_t LineNo, const std::string &Why)
      -> std::optional<TimedTrace> {
    if (Diags)
      Diags->addFailure("trace parse error at line " +
                        std::to_string(LineNo) + ": " + Why);
    return std::nullopt;
  };

  std::istringstream In(Text);
  std::string Line;
  std::size_t LineNo = 0;

  if (!std::getline(In, Line) || Line != "refinedprosa-trace v1")
    return Fail(1, "missing or unknown header");
  ++LineNo;

  TimedTrace TT;
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    {
      LineTokens T(Line);
      std::optional<std::string> First = T.next();
      if (!First)
        continue;
      if (*First == "end") {
        auto End = T.nextU64();
        if (!End)
          return Fail(LineNo, "malformed end time");
        TT.EndTime = *End;
        SawEnd = true;
        continue;
      }
    }
    if (SawEnd)
      return Fail(LineNo, "content after the end line");

    Time Ts = 0;
    MarkerEvent E;
    std::string Why;
    if (!parseMarkerLine(Line, Ts, E, &Why))
      return Fail(LineNo, Why);
    TT.Tr.push_back(std::move(E));
    TT.Ts.push_back(Ts);
  }
  if (!SawEnd)
    return Fail(LineNo, "missing end line");
  return TT;
}
