//===- trace/serialize.h - Timed-trace text serialization -----------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for timed traces, so runs can be stored,
/// diffed, and re-checked offline (see examples/trace_inspector.cpp).
///
///   refinedprosa-trace v1
///   <ts> ReadS
///   <ts> ReadE <sock> ok <jobid> <msgid> <task> <readat>
///   <ts> ReadE <sock> fail
///   <ts> Selection
///   <ts> Dispatch <jobid> <msgid> <task> <readat> <sock>
///   <ts> Execution ...            (same fields as Dispatch)
///   <ts> Completion ...
///   <ts> Idling
///   end <EndTime>
///
/// serialize/parse round-trip exactly; parse returns diagnostics for
/// malformed input instead of crashing.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_SERIALIZE_H
#define RPROSA_TRACE_SERIALIZE_H

#include "trace/trace.h"

#include "support/check.h"

#include <optional>
#include <string>

namespace rprosa {

/// Renders \p TT in the v1 text format.
std::string serializeTimedTrace(const TimedTrace &TT);

/// Parses the v1 text format; nullopt on malformed input, with the
/// reason appended to \p Diags when non-null.
std::optional<TimedTrace> parseTimedTrace(const std::string &Text,
                                          CheckResult *Diags = nullptr);

} // namespace rprosa

#endif // RPROSA_TRACE_SERIALIZE_H
