//===- trace/serialize.h - Timed-trace text serialization -----------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A line-oriented text format for timed traces, so runs can be stored,
/// diffed, and re-checked offline (see examples/trace_inspector.cpp).
///
///   refinedprosa-trace v1
///   <ts> ReadS
///   <ts> ReadE <sock> ok <jobid> <msgid> <task> <readat>
///   <ts> ReadE <sock> fail
///   <ts> Selection
///   <ts> Dispatch <jobid> <msgid> <task> <readat> <sock>
///   <ts> Execution ...            (same fields as Dispatch)
///   <ts> Completion ...
///   <ts> Idling
///   end <EndTime>
///
/// serialize/parse round-trip exactly; parse returns diagnostics for
/// malformed input instead of crashing (numeric fields that do not fit
/// in 64 bits included).
///
/// The per-line helpers (appendMarkerLine/parseMarkerLine) are shared
/// with the chunked stream format (trace/chunked_io.h), which groups
/// the same marker lines into bounded chunks for multi-GB replay.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_SERIALIZE_H
#define RPROSA_TRACE_SERIALIZE_H

#include "trace/trace.h"

#include "support/check.h"

#include <optional>
#include <string>

namespace rprosa {

/// Renders \p TT in the v1 text format.
std::string serializeTimedTrace(const TimedTrace &TT);

/// Parses the v1 text format; nullopt on malformed input, with the
/// reason appended to \p Diags when non-null.
std::optional<TimedTrace> parseTimedTrace(const std::string &Text,
                                          CheckResult *Diags = nullptr);

/// Appends one `<ts> <marker...>` line (with trailing newline) to
/// \p Out.
void appendMarkerLine(std::string &Out, Time Ts, const MarkerEvent &E);

/// Parses one marker line into (\p Ts, \p E). Returns false on
/// malformed input with the reason (sans line number) in \p Why.
bool parseMarkerLine(const std::string &Line, Time &Ts, MarkerEvent &E,
                     std::string *Why = nullptr);

} // namespace rprosa

#endif // RPROSA_TRACE_SERIALIZE_H
