//===- trace/online_monitor.cpp -------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/online_monitor.h"

using namespace rprosa;

std::string rprosa::toString(MonitorAlert::Kind K) {
  switch (K) {
  case MonitorAlert::Kind::Protocol:
    return "protocol";
  case MonitorAlert::Kind::Contract:
    return "contract";
  case MonitorAlert::Kind::Wcet:
    return "wcet";
  case MonitorAlert::Kind::Timestamp:
    return "timestamp";
  }
  return "?";
}

OnlineMonitor::OnlineMonitor(const TaskSet &Tasks,
                             const BasicActionWcets &W,
                             std::uint32_t NumSockets, SchedPolicy Policy,
                             AlertFn OnAlert)
    : Tasks(Tasks), Wcets(W), Sts(NumSockets), Contracts(Tasks, Policy),
      Policy(Policy), OnAlert(std::move(OnAlert)) {}

void OnlineMonitor::raise(MonitorAlert::Kind K, Time At,
                          std::string Message) {
  MonitorAlert A;
  A.MarkerIndex = Index;
  A.At = At;
  A.What = K;
  A.Message = std::move(Message);
  if (OnAlert)
    OnAlert(A);
  Alerts.push_back(std::move(A));
}

void OnlineMonitor::closeSegment(Time NextStart) {
  if (!Segment.Open || !Segment.BudgetKnown)
    return;
  Duration Len = NextStart >= Segment.Start ? NextStart - Segment.Start : 0;
  if (Len > Segment.Budget)
    raise(MonitorAlert::Kind::Wcet, NextStart,
          Segment.What + " ran for " + std::to_string(Len) +
              " ticks, exceeding its WCET of " +
              std::to_string(Segment.Budget));
  Segment.Open = false;
}

void OnlineMonitor::observe(const MarkerEvent &E, Time At) {
  // Timestamp sanity.
  if (HaveLast && At < LastTs)
    raise(MonitorAlert::Kind::Timestamp, At,
          "timestamps decrease at marker " + std::to_string(Index));
  LastTs = At;
  HaveLast = true;

  // WCET segmentation: every marker except M_ReadE starts a new basic
  // action (M_ReadE only fixes the in-flight read's budget; the read
  // action ends when the next marker begins — same convention as the
  // offline segmentation).
  if (E.Kind == MarkerKind::ReadE) {
    Segment.Budget = E.J ? Wcets.SuccessfulRead : Wcets.FailedRead;
    Segment.What = E.J ? "successful read" : "failed read";
    Segment.BudgetKnown = true;
  } else {
    closeSegment(At);
    Segment.Open = true;
    Segment.Start = At;
    switch (E.Kind) {
    case MarkerKind::ReadS:
      Segment.BudgetKnown = false; // Fixed by the coming M_ReadE.
      break;
    case MarkerKind::Selection:
      Segment.Budget = Wcets.Selection;
      Segment.What = "selection";
      Segment.BudgetKnown = true;
      break;
    case MarkerKind::Dispatch:
      Segment.Budget = Wcets.Dispatch;
      Segment.What = "dispatch";
      Segment.BudgetKnown = true;
      break;
    case MarkerKind::Execution:
      if (E.J && E.J->Task < Tasks.size()) {
        Segment.Budget = Tasks.task(E.J->Task).Wcet;
        Segment.What = "callback of " + Tasks.task(E.J->Task).Name;
        Segment.BudgetKnown = true;
      } else {
        Segment.BudgetKnown = false;
      }
      break;
    case MarkerKind::Completion:
      Segment.Budget = Wcets.Completion;
      Segment.What = "completion";
      Segment.BudgetKnown = true;
      break;
    case MarkerKind::Idling:
      Segment.Budget = Wcets.Idling;
      Segment.What = "idle cycle";
      Segment.BudgetKnown = true;
      break;
    case MarkerKind::ReadE:
      break; // Unreachable (handled above).
    }
  }

  // The scheduler protocol (Def. 3.1).
  std::string Why;
  if (!Sts.step(E, &Why))
    raise(MonitorAlert::Kind::Protocol, At, Why);

  // The §3.1 contracts (including Def. 3.2).
  Contracts.step(E);
  const auto &Failures = Contracts.result().failures();
  while (ContractFailures < Failures.size())
    raise(MonitorAlert::Kind::Contract, At,
          Failures[ContractFailures++]);

  ++Index;
}

void OnlineMonitor::finish(Time EndTime) { closeSegment(EndTime); }

std::vector<MonitorAlert> rprosa::monitorTrace(const TimedTrace &TT,
                                               const TaskSet &Tasks,
                                               const BasicActionWcets &W,
                                               std::uint32_t NumSockets,
                                               SchedPolicy Policy) {
  OnlineMonitor M(Tasks, W, NumSockets, Policy);
  replayTimedTrace(TT, M);
  return M.alerts();
}
