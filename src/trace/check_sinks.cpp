//===- trace/check_sinks.cpp ----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/check_sinks.h"

#include <limits>
#include <string>

using namespace rprosa;

//===----------------------------------------------------------------------===//
// TimestampCheckSink
//===----------------------------------------------------------------------===//

void TimestampCheckSink::onMarker(const MarkerEvent &E, Time At) {
  (void)E;
  if (Done) {
    ++Index;
    return;
  }
  if (Index >= 1) {
    R.noteCheck();
    if (At < Last) {
      R.addFailure("timestamps decrease at marker " + std::to_string(Index));
      Done = true; // The batch checker returns at the first decrease.
    }
  }
  Last = At;
  ++Index;
}

void TimestampCheckSink::onEnd(Time EndTime) {
  if (Done)
    return;
  R.noteCheck();
  if (Index > 0 && EndTime < Last)
    R.addFailure("EndTime precedes the last marker");
}

//===----------------------------------------------------------------------===//
// ProtocolCheckSink
//===----------------------------------------------------------------------===//

void ProtocolCheckSink::onMarker(const MarkerEvent &E, Time At) {
  (void)At;
  if (Done) {
    ++Index;
    return;
  }
  R.noteCheck();
  std::string Why;
  if (!Sts.step(E, &Why)) {
    R.addFailure("protocol violation at marker " + std::to_string(Index) +
                 ": " + Why);
    Done = true; // The batch checker stops at the first rejection.
  }
  ++Index;
}

//===----------------------------------------------------------------------===//
// FunctionalCheckSink
//===----------------------------------------------------------------------===//

namespace {

/// The policy's selection key: a dispatched job must have a key less
/// than or equal to every other pending job's key.
std::optional<std::uint64_t> selectionKey(const Job &J, const TaskSet &Tasks,
                                          SchedPolicy Policy) {
  if (J.Task >= Tasks.size())
    return std::nullopt;
  const Task &T = Tasks.task(J.Task);
  switch (Policy) {
  case SchedPolicy::Npfp:
    // Higher priority first: invert so that smaller = earlier.
    return std::numeric_limits<std::uint64_t>::max() - T.Prio;
  case SchedPolicy::Edf:
    if (T.Deadline == 0)
      return std::nullopt;
    return satAdd(J.ReadAt, T.Deadline);
  case SchedPolicy::Fifo:
    return J.Id; // Read order.
  }
  return std::nullopt;
}

const char *keyName(SchedPolicy Policy) {
  switch (Policy) {
  case SchedPolicy::Npfp:
    return "highest-priority";
  case SchedPolicy::Edf:
    return "earliest-deadline";
  case SchedPolicy::Fifo:
    return "first-read";
  }
  return "?";
}

} // namespace

std::size_t FunctionalCheckSink::pendingJobs() const {
  std::size_t N = 0;
  for (const auto &[K, Ids] : Pending)
    N += Ids.size();
  return N;
}

void FunctionalCheckSink::onMarker(const MarkerEvent &E, Time At) {
  (void)At;
  const std::size_t I = Index++;
  switch (E.Kind) {
  case MarkerKind::ReadE: {
    if (!E.J)
      break;
    R.noteCheck();
    // Property 3: unique identifiers.
    if (!SeenJobIds.insert(E.J->Id))
      R.addFailure("marker " + std::to_string(I) + ": job id j" +
                   std::to_string(E.J->Id) + " read twice (Def. 3.2 "
                   "uniqueness violated)");
    std::optional<std::uint64_t> K = selectionKey(*E.J, Tasks, Policy);
    if (!K) {
      R.addFailure("marker " + std::to_string(I) + ": read job of "
                   "unknown task or missing policy key");
      break;
    }
    Pending[*K].insert(E.J->Id);
    break;
  }
  case MarkerKind::Dispatch: {
    R.noteCheck(2);
    if (!E.J) {
      R.addFailure("marker " + std::to_string(I) + ": dispatch with no "
                   "job");
      break;
    }
    std::optional<std::uint64_t> K = selectionKey(*E.J, Tasks, Policy);
    if (!K) {
      R.addFailure("marker " + std::to_string(I) + ": dispatched job "
                   "of unknown task or missing policy key");
      break;
    }
    // Property 1a: the job must be pending.
    auto It = Pending.find(*K);
    bool IsPending = It != Pending.end() && It->second.count(E.J->Id);
    if (!IsPending) {
      R.addFailure("marker " + std::to_string(I) + ": dispatched j" +
                   std::to_string(E.J->Id) + " is not pending");
      break;
    }
    // Property 1b: no other pending job precedes it in policy order.
    auto First = Pending.begin();
    if (First->first < *K)
      R.addFailure("marker " + std::to_string(I) + ": dispatched j" +
                   std::to_string(E.J->Id) +
                   " although another pending job comes first under "
                   "the " + toString(Policy) + " policy (Def. 3.2 " +
                   keyName(Policy) + " violated)");
    // Retire the job's pending state (O(open jobs) discipline).
    It->second.erase(E.J->Id);
    if (It->second.empty())
      Pending.erase(It);
    break;
  }
  case MarkerKind::Idling: {
    R.noteCheck();
    // Property 2: idling only with no pending jobs.
    if (!Pending.empty())
      R.addFailure("marker " + std::to_string(I) + ": M_Idling while "
                   "jobs are pending (Def. 3.2 idling violated)");
    break;
  }
  default:
    break;
  }
}

//===----------------------------------------------------------------------===//
// ConsistencyCheckSink
//===----------------------------------------------------------------------===//

ConsistencyCheckSink::ConsistencyCheckSink(const ArrivalSequence &Arr)
    : PerSock(Arr.numSockets()), Verified(Arr.numSockets(), 0) {
  for (const Arrival &A : Arr.arrivals()) {
    ByMsg.emplace(A.Msg.Id, A);
    if (A.Socket < PerSock.size())
      PerSock[A.Socket].push_back(A); // arrivals() is time-sorted.
  }
}

void ConsistencyCheckSink::onMarker(const MarkerEvent &E, Time At) {
  const std::size_t I = Index++;
  if (E.Kind != MarkerKind::ReadE)
    return;
  if (E.Socket >= PerSock.size()) {
    R.addFailure("marker " + std::to_string(I) + ": read of socket s" +
                 std::to_string(E.Socket) + " outside the arrival "
                 "sequence's socket range");
    return;
  }

  if (E.isSuccessfulRead()) {
    R.noteCheck(3);
    const Job &J = *E.J;
    auto It = ByMsg.find(J.Msg);
    // Condition 1: the job must originate from the arrival sequence...
    if (It == ByMsg.end()) {
      R.addFailure("marker " + std::to_string(I) + ": read message m" +
                   std::to_string(J.Msg) + " never arrives in arr");
      return;
    }
    const Arrival &A = It->second;
    // ...on the same socket, with the task type the classifier infers...
    if (A.Socket != E.Socket)
      R.addFailure("marker " + std::to_string(I) + ": message m" +
                   std::to_string(J.Msg) + " read from s" +
                   std::to_string(E.Socket) + " but arrived on s" +
                   std::to_string(A.Socket));
    if (A.Msg.Task != J.Task)
      R.addFailure("marker " + std::to_string(I) + ": task type of read "
                   "job does not match the arrived message");
    // ...and strictly after its arrival: t_a < ts[i].
    if (A.At >= At)
      R.addFailure("marker " + std::to_string(I) + ": job j" +
                   std::to_string(J.Id) + " read at t=" +
                   std::to_string(At) + " but arrives only at t=" +
                   std::to_string(A.At) + " (Def. 2.1 cond. 1)");
    if (!ReadMsgs.insert(J.Msg))
      R.addFailure("marker " + std::to_string(I) + ": message m" +
                   std::to_string(J.Msg) + " read twice");
    return;
  }

  // Failed read: every arrival on this socket strictly before ts[i]
  // must already have been read (Def. 2.1 cond. 2).
  auto &Socks = PerSock[E.Socket];
  std::size_t &V = Verified[E.Socket];
  while (V < Socks.size() && Socks[V].At < At) {
    R.noteCheck();
    if (!ReadMsgs.contains(Socks[V].Msg.Id))
      R.addFailure("marker " + std::to_string(I) + ": failed read on s" +
                   std::to_string(E.Socket) + " at t=" +
                   std::to_string(At) + " although message m" +
                   std::to_string(Socks[V].Msg.Id) + " arrived at t=" +
                   std::to_string(Socks[V].At) + " and was not read "
                   "(Def. 2.1 cond. 2)");
    ++V;
  }
}

//===----------------------------------------------------------------------===//
// DeadlineCheckSink
//===----------------------------------------------------------------------===//

DeadlineCheckSink::DeadlineCheckSink(const TaskSet &Tasks,
                                     const ArrivalSequence &Arr)
    : Tasks(Tasks) {
  for (const Arrival &A : Arr.arrivals())
    ArrivalAt.emplace(A.Msg.Id, A.At);
}

void DeadlineCheckSink::onMarker(const MarkerEvent &E, Time At) {
  if (E.isSuccessfulRead()) {
    auto It = ArrivalAt.find(E.J->Msg);
    // Unknown messages are the consistency checker's business; a
    // deadline verdict needs the arrival instant, so skip them here.
    if (It != ArrivalAt.end())
      Open.emplace(E.J->Id, std::make_pair(E.J->Msg, It->second));
    return;
  }
  if (E.Kind != MarkerKind::Completion || !E.J)
    return;
  auto It = Open.find(E.J->Id);
  if (It == Open.end())
    return;
  auto [Msg, Arrived] = It->second;
  Open.erase(It);
  if (E.J->Task >= Tasks.size())
    return;
  const Task &T = Tasks.task(E.J->Task);
  if (T.Deadline == 0)
    return; // Unconstrained task.
  ++Completions;
  R.noteCheck();
  Duration Response = At >= Arrived ? At - Arrived : 0;
  if (Response > T.Deadline) {
    Misses.push_back(DeadlineMiss{E.J->Id, Msg, E.J->Task, Arrived, At,
                                  Response, T.Deadline});
    R.addFailure("job j" + std::to_string(E.J->Id) + " of task " + T.Name +
                 " (message m" + std::to_string(Msg) + ") arrived at t=" +
                 std::to_string(Arrived) + " and completed at t=" +
                 std::to_string(At) + ": response " +
                 std::to_string(Response) + " exceeds the deadline " +
                 std::to_string(T.Deadline));
  }
}

//===----------------------------------------------------------------------===//
// WcetCheckSink
//===----------------------------------------------------------------------===//

void WcetCheckSink::onAction(const BasicAction &A) {
  R.noteCheck();
  Duration Bound = 0;
  std::string What;
  switch (A.Kind) {
  case BasicActionKind::Read:
    Bound = A.J ? W.SuccessfulRead : W.FailedRead;
    What = A.J ? "successful read" : "failed read";
    break;
  case BasicActionKind::Selection:
    Bound = W.Selection;
    What = "selection";
    break;
  case BasicActionKind::Disp:
    Bound = W.Dispatch;
    What = "dispatch";
    break;
  case BasicActionKind::Exec: {
    if (!A.J || A.J->Task >= Tasks.size()) {
      R.addFailure("execution action without a valid task at marker " +
                   std::to_string(A.FirstMarker));
      return;
    }
    Bound = Tasks.task(A.J->Task).Wcet;
    What = "callback of task " + Tasks.task(A.J->Task).Name;
    break;
  }
  case BasicActionKind::Compl:
    Bound = W.Completion;
    What = "completion";
    break;
  case BasicActionKind::Idling:
    Bound = W.Idling;
    What = "idle cycle";
    break;
  }
  if (A.len() > Bound)
    R.addFailure(What + " at marker " + std::to_string(A.FirstMarker) +
                 " took " + std::to_string(A.len()) +
                 " ticks, exceeding its WCET of " + std::to_string(Bound));
}
