//===- trace/chunked_io.cpp -----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/chunked_io.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

using namespace rprosa;

ChunkedTraceWriter::ChunkedTraceWriter(std::ostream &Out,
                                       std::size_t EventsPerChunk)
    : Out(Out), EventsPerChunk(EventsPerChunk ? EventsPerChunk : 1) {
  Out << "refinedprosa-trace v2\n";
}

void ChunkedTraceWriter::flushChunk() {
  if (Buffered == 0)
    return;
  Out << "chunk " << Buffered << '\n' << Buffer;
  Buffer.clear();
  Buffered = 0;
}

void ChunkedTraceWriter::onMarker(const MarkerEvent &E, Time At) {
  appendMarkerLine(Buffer, At, E);
  ++Buffered;
  ++NumEvents;
  if (Buffered >= EventsPerChunk)
    flushChunk();
}

void ChunkedTraceWriter::onEnd(Time EndTime) {
  flushChunk();
  Out << "end " << EndTime << '\n';
  Out.flush();
  Finished = true;
}

namespace {

/// First whitespace-separated token of \p Line and the rest after it.
std::pair<std::string, std::string> splitFirst(const std::string &Line) {
  std::size_t B = Line.find_first_not_of(" \t");
  if (B == std::string::npos)
    return {"", ""};
  std::size_t E = Line.find_first_of(" \t", B);
  if (E == std::string::npos)
    return {Line.substr(B), ""};
  std::size_t R = Line.find_first_not_of(" \t", E);
  return {Line.substr(B, E - B),
          R == std::string::npos ? "" : Line.substr(R)};
}

std::optional<std::uint64_t> tokU64(const std::string &Tok) {
  if (Tok.empty())
    return std::nullopt;
  for (char C : Tok)
    if (C < '0' || C > '9')
      return std::nullopt;
  std::uint64_t V = 0;
  auto [Ptr, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), V);
  if (Ec != std::errc() || Ptr != Tok.data() + Tok.size())
    return std::nullopt;
  return V;
}

struct Reader {
  std::istream &In;
  TraceSink &Sink;
  CheckResult *Diags;
  TraceStreamStats *Stats;
  std::size_t LineNo = 0;

  bool fail(const std::string &Why) {
    if (Diags)
      Diags->addFailure("trace parse error at line " +
                        std::to_string(LineNo) + ": " + Why);
    return false;
  }

  /// Next non-empty line; false at end of stream. Only valid *between*
  /// records: inside a chunk body every line is an event, so blank
  /// lines must be diagnosed, not skipped (nextLineRaw).
  bool nextLine(std::string &Line) {
    while (std::getline(In, Line)) {
      ++LineNo;
      if (!Line.empty() &&
          Line.find_first_not_of(" \t\r") != std::string::npos)
        return true;
    }
    return false;
  }

  /// Next line verbatim (chunk bodies); false at end of stream.
  bool nextLineRaw(std::string &Line) {
    if (!std::getline(In, Line))
      return false;
    ++LineNo;
    return true;
  }

  void sawEvent() {
    if (Stats)
      ++Stats->Events;
  }

  bool finish(Time EndTime) {
    std::string Line;
    if (nextLine(Line))
      return fail("content after the end line");
    if (Stats)
      Stats->SawEnd = true;
    Sink.onEnd(EndTime);
    return true;
  }

  bool runV1() {
    std::string Line;
    while (nextLine(Line)) {
      auto [First, Rest] = splitFirst(Line);
      if (First == "end") {
        auto End = tokU64(splitFirst(Rest).first);
        if (!End)
          return fail("malformed end time");
        return finish(*End);
      }
      Time Ts = 0;
      MarkerEvent E;
      std::string Why;
      if (!parseMarkerLine(Line, Ts, E, &Why))
        return fail(Why);
      Sink.onMarker(E, Ts);
      sawEvent();
    }
    return fail("missing end line");
  }

  bool runV2() {
    std::string Line;
    // Parsed-but-undelivered events of the chunk in flight: delivery
    // happens only once the whole chunk parsed (no partial chunks).
    std::vector<std::pair<MarkerEvent, Time>> Chunk;
    while (nextLine(Line)) {
      auto [First, Rest] = splitFirst(Line);
      if (First == "end") {
        auto End = tokU64(splitFirst(Rest).first);
        if (!End)
          return fail("malformed end time");
        return finish(*End);
      }
      if (First != "chunk")
        return fail("expected a chunk or end line, got '" + First + "'");
      auto Count = tokU64(splitFirst(Rest).first);
      if (!Count)
        return fail("malformed chunk header");
      if (*Count == 0)
        return fail("chunk header announces zero events (the writer "
                    "never emits empty chunks; torn or corrupted "
                    "header?)");

      Chunk.clear();
      Chunk.reserve(static_cast<std::size_t>(
          std::min<std::uint64_t>(*Count, 1 << 20)));
      for (std::uint64_t I = 0; I < *Count; ++I) {
        // Chunk bodies are read verbatim: a blank line here is a torn
        // write blanking an event, and silently skipping it would
        // misattribute the damage to the next line's parse.
        if (!nextLineRaw(Line))
          return fail("truncated chunk (expected " +
                      std::to_string(*Count) + " events, got " +
                      std::to_string(I) + ")");
        if (Line.find_first_not_of(" \t\r") == std::string::npos)
          return fail("blank line inside a chunk body (event " +
                      std::to_string(I + 1) + " of " +
                      std::to_string(*Count) + "; torn write?)");
        Time Ts = 0;
        MarkerEvent E;
        std::string Why;
        if (!parseMarkerLine(Line, Ts, E, &Why))
          return fail(Why);
        Chunk.emplace_back(std::move(E), Ts);
      }
      for (const auto &[E, Ts] : Chunk) {
        Sink.onMarker(E, Ts);
        sawEvent();
      }
      if (Stats)
        ++Stats->Chunks;
    }
    return fail("missing end line");
  }
};

} // namespace

bool rprosa::readTraceStream(std::istream &In, TraceSink &Sink,
                             CheckResult *Diags, TraceStreamStats *Stats) {
  Reader R{In, Sink, Diags, Stats};
  std::string Header;
  if (!std::getline(In, Header)) {
    R.LineNo = 1;
    return R.fail("missing or unknown header");
  }
  R.LineNo = 1;
  if (!Header.empty() && Header.back() == '\r')
    Header.pop_back();
  if (Header == "refinedprosa-trace v2")
    return R.runV2();
  if (Header == "refinedprosa-trace v1")
    return R.runV1();
  return R.fail("missing or unknown header");
}

void rprosa::writeTraceStream(std::ostream &Out, const TimedTrace &TT,
                              std::size_t EventsPerChunk) {
  ChunkedTraceWriter W(Out, EventsPerChunk);
  replayTimedTrace(TT, W);
}

std::optional<TimedTrace> rprosa::readTimedTrace(std::istream &In,
                                                 CheckResult *Diags) {
  VectorSink V;
  if (!readTraceStream(In, V, Diags))
    return std::nullopt;
  return V.take();
}
