//===- trace/functional.h - Functional correctness of traces (Def. 3.2) ---===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Def. 3.2 (tr_valid tr): a trace is functionally correct iff
///  1. *Selected jobs come first in the policy order*: every dispatched
///     job is pending and precedes (or ties with) every other pending
///     job under the scheduling policy — for the paper's NPFP policy
///     this is exactly "selected jobs have the highest priority";
///  2. *Idling only if no jobs are pending*;
///  3. *Jobs have unique identifiers* across all successful reads.
///
/// In the paper these are proven with RefinedC; here they are checked on
/// concrete traces (executable analogue, see DESIGN.md). The policy
/// parameter extends the check to the NP-EDF and NP-FIFO variants.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_FUNCTIONAL_H
#define RPROSA_TRACE_FUNCTIONAL_H

#include "trace/trace.h"

#include "core/policy.h"
#include "core/task.h"
#include "support/check.h"

namespace rprosa {

/// Checks all three Def. 3.2 properties in one O(n log n) scan, with
/// property 1 instantiated for \p Policy.
CheckResult checkFunctionalCorrectness(const Trace &Tr, const TaskSet &Tasks,
                                       SchedPolicy Policy = SchedPolicy::Npfp);

} // namespace rprosa

#endif // RPROSA_TRACE_FUNCTIONAL_H
