//===- trace/basic_actions.cpp --------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/basic_actions.h"

#include <cassert>

using namespace rprosa;

std::string rprosa::toString(BasicActionKind K) {
  switch (K) {
  case BasicActionKind::Read:
    return "Read";
  case BasicActionKind::Selection:
    return "Selection";
  case BasicActionKind::Disp:
    return "Disp";
  case BasicActionKind::Exec:
    return "Exec";
  case BasicActionKind::Compl:
    return "Compl";
  case BasicActionKind::Idling:
    return "Idling";
  }
  return "?";
}

std::vector<BasicAction> rprosa::segmentBasicActions(const TimedTrace &TT) {
  std::vector<BasicAction> Out;
  const Trace &Tr = TT.Tr;
  std::size_t N = Tr.size();

  auto endOf = [&](std::size_t LastMarker) {
    return LastMarker + 1 < N ? TT.Ts[LastMarker + 1] : TT.EndTime;
  };

  for (std::size_t I = 0; I < N;) {
    BasicAction A;
    A.FirstMarker = I;
    A.Start = TT.Ts[I];
    switch (Tr[I].Kind) {
    case MarkerKind::ReadS: {
      // Coalesce M_ReadS with the following M_ReadE (§2.2).
      assert(I + 1 < N && Tr[I + 1].Kind == MarkerKind::ReadE &&
             "M_ReadS must be followed by M_ReadE (protocol)");
      A.Kind = BasicActionKind::Read;
      A.Socket = Tr[I + 1].Socket;
      A.J = Tr[I + 1].J;
      A.EndMarker = I + 2;
      A.End = endOf(I + 1);
      break;
    }
    case MarkerKind::Selection: {
      // Look ahead to resolve Selection j vs Selection ⊥.
      A.Kind = BasicActionKind::Selection;
      if (I + 1 < N && Tr[I + 1].Kind == MarkerKind::Dispatch)
        A.J = Tr[I + 1].J;
      A.EndMarker = I + 1;
      A.End = endOf(I);
      break;
    }
    case MarkerKind::Dispatch:
      A.Kind = BasicActionKind::Disp;
      A.J = Tr[I].J;
      A.EndMarker = I + 1;
      A.End = endOf(I);
      break;
    case MarkerKind::Execution:
      A.Kind = BasicActionKind::Exec;
      A.J = Tr[I].J;
      A.EndMarker = I + 1;
      A.End = endOf(I);
      break;
    case MarkerKind::Completion:
      A.Kind = BasicActionKind::Compl;
      A.J = Tr[I].J;
      A.EndMarker = I + 1;
      A.End = endOf(I);
      break;
    case MarkerKind::Idling:
      A.Kind = BasicActionKind::Idling;
      A.EndMarker = I + 1;
      A.End = endOf(I);
      break;
    case MarkerKind::ReadE:
      assert(false && "dangling M_ReadE (protocol violation)");
      A.EndMarker = I + 1;
      A.End = endOf(I);
      break;
    }
    I = A.EndMarker;
    Out.push_back(A);
  }
  return Out;
}
