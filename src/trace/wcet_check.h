//===- trace/wcet_check.h - WCET assumptions on timed traces (§2.3) -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §2.3: "our timing correctness property holds for all executions
/// where the actual run times of the basic actions and callbacks stay
/// below their WCETs", e.g.
///
///   ∀ i, j. tr[i] = M_Dispatch j ⟹ ts[i+1] − ts[i] ≤ WcetDisp.
///
/// checkWcetRespected() verifies this assumption for every basic action
/// of a concrete timed trace (the cost model can be configured to
/// violate it, which these checks then surface). checkTimestamps()
/// verifies the basic sanity of the timestamp list itself.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_WCET_CHECK_H
#define RPROSA_TRACE_WCET_CHECK_H

#include "trace/trace.h"

#include "core/task.h"
#include "core/wcet.h"
#include "support/check.h"

namespace rprosa {

/// Checks that timestamps are non-decreasing, one per marker, and that
/// EndTime does not precede the last marker.
CheckResult checkTimestamps(const TimedTrace &TT);

/// Checks that every basic action's duration is within its WCET:
/// failed/successful reads vs WcetFR/WcetSR, selection vs WcetSel,
/// dispatch vs WcetDisp, execution of a job of τ_i vs C_i, completion
/// vs WcetCompl, and each idle cycle vs WcetIdling.
CheckResult checkWcetRespected(const TimedTrace &TT, const TaskSet &Tasks,
                               const BasicActionWcets &W);

} // namespace rprosa

#endif // RPROSA_TRACE_WCET_CHECK_H
