//===- trace/consistency.cpp ----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/consistency.h"

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace rprosa;

CheckResult rprosa::checkConsistency(const TimedTrace &TT,
                                     const ArrivalSequence &Arr) {
  CheckResult R;

  // Arrival lookup by message id, and per-socket time-sorted lists for
  // the failed-read condition.
  std::map<MsgId, Arrival> ByMsg;
  std::vector<std::vector<Arrival>> PerSock(Arr.numSockets());
  for (const Arrival &A : Arr.arrivals()) {
    ByMsg.emplace(A.Msg.Id, A);
    if (A.Socket < PerSock.size())
      PerSock[A.Socket].push_back(A); // arrivals() is time-sorted.
  }

  std::set<MsgId> ReadMsgs;
  // For each socket, the prefix of PerSock[s] already verified as read.
  std::vector<std::size_t> Verified(Arr.numSockets(), 0);

  for (std::size_t I = 0; I < TT.size(); ++I) {
    const MarkerEvent &E = TT.Tr[I];
    if (E.Kind != MarkerKind::ReadE)
      continue;
    if (E.Socket >= Arr.numSockets()) {
      R.addFailure("marker " + std::to_string(I) + ": read of socket s" +
                   std::to_string(E.Socket) + " outside the arrival "
                   "sequence's socket range");
      continue;
    }

    if (E.isSuccessfulRead()) {
      R.noteCheck(3);
      const Job &J = *E.J;
      auto It = ByMsg.find(J.Msg);
      // Condition 1: the job must originate from the arrival sequence...
      if (It == ByMsg.end()) {
        R.addFailure("marker " + std::to_string(I) + ": read message m" +
                     std::to_string(J.Msg) + " never arrives in arr");
        continue;
      }
      const Arrival &A = It->second;
      // ...on the same socket, with the task type the classifier infers...
      if (A.Socket != E.Socket)
        R.addFailure("marker " + std::to_string(I) + ": message m" +
                     std::to_string(J.Msg) + " read from s" +
                     std::to_string(E.Socket) + " but arrived on s" +
                     std::to_string(A.Socket));
      if (A.Msg.Task != J.Task)
        R.addFailure("marker " + std::to_string(I) + ": task type of read "
                     "job does not match the arrived message");
      // ...and strictly after its arrival: t_a < ts[i].
      if (A.At >= TT.Ts[I])
        R.addFailure("marker " + std::to_string(I) + ": job j" +
                     std::to_string(J.Id) + " read at t=" +
                     std::to_string(TT.Ts[I]) + " but arrives only at t=" +
                     std::to_string(A.At) + " (Def. 2.1 cond. 1)");
      if (!ReadMsgs.insert(J.Msg).second)
        R.addFailure("marker " + std::to_string(I) + ": message m" +
                     std::to_string(J.Msg) + " read twice");
      continue;
    }

    // Failed read: every arrival on this socket strictly before ts[i]
    // must already have been read (Def. 2.1 cond. 2).
    auto &Socks = PerSock[E.Socket];
    std::size_t &V = Verified[E.Socket];
    while (V < Socks.size() && Socks[V].At < TT.Ts[I]) {
      R.noteCheck();
      if (!ReadMsgs.count(Socks[V].Msg.Id))
        R.addFailure("marker " + std::to_string(I) + ": failed read on s" +
                     std::to_string(E.Socket) + " at t=" +
                     std::to_string(TT.Ts[I]) + " although message m" +
                     std::to_string(Socks[V].Msg.Id) + " arrived at t=" +
                     std::to_string(Socks[V].At) + " and was not read "
                     "(Def. 2.1 cond. 2)");
      ++V;
    }
  }
  return R;
}
