//===- trace/consistency.cpp ----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
// Batch adapter over ConsistencyCheckSink (trace/check_sinks.h).
//===----------------------------------------------------------------------===//

#include "trace/consistency.h"

#include "trace/check_sinks.h"

using namespace rprosa;

CheckResult rprosa::checkConsistency(const TimedTrace &TT,
                                     const ArrivalSequence &Arr) {
  ConsistencyCheckSink S(Arr);
  replayTimedTrace(TT, S);
  return S.take();
}
