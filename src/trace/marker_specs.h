//===- trace/marker_specs.h - Marker-function specifications (§3.1) -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §3.1 specifies each marker function as a separation-logic triple
/// over two ghost assertions — current_trace tr (the trace emitted so
/// far) and currently_pending js (the read-but-undispatched jobs) —
/// e.g. for idling_start():
///
///   [[rc::parameters("tr : list marker", "js : gset job")]]
///   [[rc::requires("current_trace tr", "currently_pending js")]]
///   [[rc::requires("{last tr = M_Selection}", "{js = ∅}")]]
///   [[rc::ensures("current_trace (tr ++ [M_Idling])")]]
///
/// MarkerSpecChecker is the executable rendering: it owns the ghost
/// state and validates every marker call against its contract —
/// precondition on the last trace element and the pending set,
/// postcondition as the ghost-state update. RefinedC *proves* these
/// triples hold for Rössl's C code; here the contracts are *checked*
/// against each concrete call sequence, and fault-injection tests
/// confirm each contract rejects its specific violation.
///
/// Although the ghost current_trace assertion denotes the whole prefix,
/// every §3.1 precondition only ever inspects `last tr`, so the checker
/// carries just the last marker plus a call counter — together with the
/// pending set (retired at dispatch) and the freshness id-set (stored
/// as merged intervals), its state is O(open jobs), not O(trace). This
/// is what lets the online monitor run over unbounded streams.
///
/// (The global round-robin structure of the polling phase is the
/// protocol STS's business — Def. 3.1; the contracts here are the
/// local, per-call obligations of §3.1.)
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_MARKER_SPECS_H
#define RPROSA_TRACE_MARKER_SPECS_H

#include "trace/trace.h"

#include "core/policy.h"
#include "core/task.h"
#include "support/check.h"
#include "support/interval_set.h"

#include <map>
#include <optional>

namespace rprosa {

/// Replays marker calls against their §3.1 contracts.
class MarkerSpecChecker {
public:
  explicit MarkerSpecChecker(const TaskSet &Tasks,
                             SchedPolicy Policy = SchedPolicy::Npfp);

  /// Applies one marker call: checks its precondition, then performs
  /// the postcondition's ghost-state update (so later contracts are
  /// still meaningful after a violation).
  void step(const MarkerEvent &E);

  /// All contract violations found so far.
  const CheckResult &result() const { return Result; }

  /// Marker calls applied so far (|current_trace|).
  std::size_t position() const { return Pos; }

  /// The ghost currently_pending assertion (jobs, in read order).
  std::vector<Job> currentlyPending() const;

  /// |currently_pending| — the read-but-undispatched jobs held live.
  std::size_t pendingJobs() const { return Pending.size(); }

private:
  /// The policy key: a dispatch contract requires the dispatched job to
  /// be minimal under it.
  std::uint64_t keyOf(const Job &J) const;

  void fail(std::string Why);

  const TaskSet &Tasks;
  SchedPolicy Policy;
  CheckResult Result;
  std::optional<MarkerEvent> Last; // last current_trace element.
  std::size_t Pos = 0;             // |current_trace|.
  std::map<JobId, Job> Pending;    // Keyed by id; read order = id order.
  IdIntervalSet EverRead;
};

/// Replays a whole trace; passes iff every call met its contract.
CheckResult checkMarkerSpecs(const Trace &Tr, const TaskSet &Tasks,
                             SchedPolicy Policy = SchedPolicy::Npfp);

} // namespace rprosa

#endif // RPROSA_TRACE_MARKER_SPECS_H
