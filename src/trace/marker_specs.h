//===- trace/marker_specs.h - Marker-function specifications (§3.1) -------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §3.1 specifies each marker function as a separation-logic triple
/// over two ghost assertions — current_trace tr (the trace emitted so
/// far) and currently_pending js (the read-but-undispatched jobs) —
/// e.g. for idling_start():
///
///   [[rc::parameters("tr : list marker", "js : gset job")]]
///   [[rc::requires("current_trace tr", "currently_pending js")]]
///   [[rc::requires("{last tr = M_Selection}", "{js = ∅}")]]
///   [[rc::ensures("current_trace (tr ++ [M_Idling])")]]
///
/// MarkerSpecChecker is the executable rendering: it owns the ghost
/// state and validates every marker call against its contract —
/// precondition on the last trace element and the pending set,
/// postcondition as the ghost-state update. RefinedC *proves* these
/// triples hold for Rössl's C code; here the contracts are *checked*
/// against each concrete call sequence, and fault-injection tests
/// confirm each contract rejects its specific violation.
///
/// (The global round-robin structure of the polling phase is the
/// protocol STS's business — Def. 3.1; the contracts here are the
/// local, per-call obligations of §3.1.)
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_MARKER_SPECS_H
#define RPROSA_TRACE_MARKER_SPECS_H

#include "trace/trace.h"

#include "core/policy.h"
#include "core/task.h"
#include "support/check.h"

#include <map>
#include <set>

namespace rprosa {

/// Replays marker calls against their §3.1 contracts.
class MarkerSpecChecker {
public:
  explicit MarkerSpecChecker(const TaskSet &Tasks,
                             SchedPolicy Policy = SchedPolicy::Npfp);

  /// Applies one marker call: checks its precondition, then performs
  /// the postcondition's ghost-state update (so later contracts are
  /// still meaningful after a violation).
  void step(const MarkerEvent &E);

  /// All contract violations found so far.
  const CheckResult &result() const { return Result; }

  /// The ghost current_trace assertion.
  const Trace &currentTrace() const { return Tr; }

  /// The ghost currently_pending assertion (jobs, in read order).
  std::vector<Job> currentlyPending() const;

private:
  /// The policy key: a dispatch contract requires the dispatched job to
  /// be minimal under it.
  std::uint64_t keyOf(const Job &J) const;

  void fail(std::string Why);

  const TaskSet &Tasks;
  SchedPolicy Policy;
  CheckResult Result;
  Trace Tr;
  std::map<JobId, Job> Pending; // Keyed by id; read order = id order.
  std::set<JobId> EverRead;
};

/// Replays a whole trace; passes iff every call met its contract.
CheckResult checkMarkerSpecs(const Trace &Tr, const TaskSet &Tasks,
                             SchedPolicy Policy = SchedPolicy::Npfp);

} // namespace rprosa

#endif // RPROSA_TRACE_MARKER_SPECS_H
