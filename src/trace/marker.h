//===- trace/marker.h - Marker events (Fig. 4) ----------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The marker alphabet of Fig. 4:
///
///   marker ≜ M_ReadS | M_ReadE sock j⊥ | M_Selection | M_Dispatch j
///          | M_Execution j | M_Completion j | M_Idling
///
/// Marker functions are ghost code: they demarcate the start of a new
/// basic action. M_ReadE is the "pseudo marker" recording the result of
/// the read system call; in the STS it coalesces with the preceding
/// M_ReadS into one Read basic action (§2.2).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_MARKER_H
#define RPROSA_TRACE_MARKER_H

#include "core/job.h"

#include <optional>
#include <string>

namespace rprosa {

enum class MarkerKind : std::uint8_t {
  ReadS,      ///< M_ReadS: a read system call is issued.
  ReadE,      ///< M_ReadE sock j⊥: the read returned (job or ⊥).
  Selection,  ///< M_Selection: the selection phase begins.
  Dispatch,   ///< M_Dispatch j: job j was selected; dispatch begins.
  Execution,  ///< M_Execution j: the callback of j starts running.
  Completion, ///< M_Completion j: the callback of j finished; cleanup.
  Idling,     ///< M_Idling: no pending job; one idle cycle begins.
};

/// One event on the trace of marker functions.
struct MarkerEvent {
  MarkerKind Kind = MarkerKind::Idling;
  /// The socket read (ReadE only).
  SocketId Socket = 0;
  /// The job the event refers to. Present for: successful ReadE (the job
  /// just read), Dispatch, Execution, Completion. Absent for everything
  /// else; a ReadE without a job is a failed read (j⊥ = ⊥).
  std::optional<Job> J;

  static MarkerEvent readS() { return {MarkerKind::ReadS, 0, std::nullopt}; }
  static MarkerEvent readE(SocketId Sock, std::optional<Job> Read) {
    return {MarkerKind::ReadE, Sock, std::move(Read)};
  }
  static MarkerEvent selection() {
    return {MarkerKind::Selection, 0, std::nullopt};
  }
  static MarkerEvent dispatch(Job Jb) {
    return {MarkerKind::Dispatch, 0, Jb};
  }
  static MarkerEvent execution(Job Jb) {
    return {MarkerKind::Execution, 0, Jb};
  }
  static MarkerEvent completion(Job Jb) {
    return {MarkerKind::Completion, 0, Jb};
  }
  static MarkerEvent idling() { return {MarkerKind::Idling, 0, std::nullopt}; }

  bool isFailedRead() const { return Kind == MarkerKind::ReadE && !J; }
  bool isSuccessfulRead() const {
    return Kind == MarkerKind::ReadE && J.has_value();
  }
};

/// Printable form ("M_ReadE(s0, j3)").
std::string toString(const MarkerEvent &E);
std::string toString(MarkerKind K);

} // namespace rprosa

#endif // RPROSA_TRACE_MARKER_H
