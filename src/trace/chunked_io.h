//===- trace/chunked_io.h - Chunked trace files (streaming replay) --------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The v2 on-disk trace format: the v1 marker lines (trace/serialize.h)
/// grouped into bounded chunks, so multi-GB trace files replay through
/// TraceSinks without ever materializing the trace:
///
///   refinedprosa-trace v2
///   chunk <n>
///   <n marker lines, v1 shape>
///   chunk <m>
///   ...
///   end <EndTime>
///
/// ChunkedTraceWriter is a TraceSink, so the simulator (or any fan-out)
/// can serialize while checking in the same single pass.
///
/// readTraceStream drives a sink from either format: v2 files are read
/// a chunk at a time, v1 files line by line. A chunk is parsed
/// *completely* before any of its events is delivered — a truncated or
/// torn final chunk yields a clean diagnostic and delivers nothing from
/// that chunk (and no onEnd), never a partial chunk. This is the
/// crash-consistency story: everything a sink saw was durably framed.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_CHUNKED_IO_H
#define RPROSA_TRACE_CHUNKED_IO_H

#include "trace/serialize.h"
#include "trace/stream.h"

#include <cstddef>
#include <iosfwd>
#include <string>

namespace rprosa {

/// Streams markers into \p Out in the v2 chunked format. The header is
/// written on construction, each chunk when it fills, the end line at
/// onEnd.
class ChunkedTraceWriter final : public TraceSink {
public:
  explicit ChunkedTraceWriter(std::ostream &Out,
                              std::size_t EventsPerChunk = 4096);

  void onMarker(const MarkerEvent &E, Time At) override;
  void onEnd(Time EndTime) override;

  /// Events written so far (across all chunks).
  std::size_t written() const { return NumEvents; }
  bool finished() const { return Finished; }

private:
  void flushChunk();

  std::ostream &Out;
  std::size_t EventsPerChunk;
  std::string Buffer;
  std::size_t Buffered = 0;
  std::size_t NumEvents = 0;
  bool Finished = false;
};

/// Replay statistics of one readTraceStream call.
struct TraceStreamStats {
  std::size_t Events = 0; ///< Markers delivered to the sink.
  std::size_t Chunks = 0; ///< Chunks fully delivered (v2 only).
  bool SawEnd = false;    ///< The end line was reached (onEnd fired).
};

/// Drives \p Sink from a v1 or v2 trace stream. Returns true iff the
/// stream was well-formed through its end line (onEnd fires exactly
/// then); on malformed input a diagnostic lands in \p Diags and no
/// event of the offending chunk (v2) is delivered. \p Stats, when
/// non-null, reports how much was replayed either way.
bool readTraceStream(std::istream &In, TraceSink &Sink,
                     CheckResult *Diags = nullptr,
                     TraceStreamStats *Stats = nullptr);

/// Batch adapters: write a materialized trace in the v2 format / read
/// either format into a materialized trace (nullopt on malformed
/// input).
void writeTraceStream(std::ostream &Out, const TimedTrace &TT,
                      std::size_t EventsPerChunk = 4096);
std::optional<TimedTrace> readTimedTrace(std::istream &In,
                                         CheckResult *Diags = nullptr);

} // namespace rprosa

#endif // RPROSA_TRACE_CHUNKED_IO_H
