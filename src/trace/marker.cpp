//===- trace/marker.cpp ---------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/marker.h"

using namespace rprosa;

std::string rprosa::toString(MarkerKind K) {
  switch (K) {
  case MarkerKind::ReadS:
    return "M_ReadS";
  case MarkerKind::ReadE:
    return "M_ReadE";
  case MarkerKind::Selection:
    return "M_Selection";
  case MarkerKind::Dispatch:
    return "M_Dispatch";
  case MarkerKind::Execution:
    return "M_Execution";
  case MarkerKind::Completion:
    return "M_Completion";
  case MarkerKind::Idling:
    return "M_Idling";
  }
  return "?";
}

std::string rprosa::toString(const MarkerEvent &E) {
  std::string S = toString(E.Kind);
  if (E.Kind == MarkerKind::ReadE) {
    S += "(s" + std::to_string(E.Socket) + ", ";
    S += E.J ? ("j" + std::to_string(E.J->Id)) : std::string("⊥");
    S += ")";
    return S;
  }
  if (E.J)
    S += "(j" + std::to_string(E.J->Id) + ")";
  return S;
}
