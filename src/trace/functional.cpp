//===- trace/functional.cpp -----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/functional.h"

#include <limits>
#include <map>
#include <set>
#include <string>

using namespace rprosa;

namespace {

/// The policy's selection key: a dispatched job must have a key less
/// than or equal to every other pending job's key.
std::optional<std::uint64_t> selectionKey(const Job &J, const TaskSet &Tasks,
                                          SchedPolicy Policy) {
  if (J.Task >= Tasks.size())
    return std::nullopt;
  const Task &T = Tasks.task(J.Task);
  switch (Policy) {
  case SchedPolicy::Npfp:
    // Higher priority first: invert so that smaller = earlier.
    return std::numeric_limits<std::uint64_t>::max() - T.Prio;
  case SchedPolicy::Edf:
    if (T.Deadline == 0)
      return std::nullopt;
    return satAdd(J.ReadAt, T.Deadline);
  case SchedPolicy::Fifo:
    return J.Id; // Read order.
  }
  return std::nullopt;
}

const char *keyName(SchedPolicy Policy) {
  switch (Policy) {
  case SchedPolicy::Npfp:
    return "highest-priority";
  case SchedPolicy::Edf:
    return "earliest-deadline";
  case SchedPolicy::Fifo:
    return "first-read";
  }
  return "?";
}

} // namespace

CheckResult rprosa::checkFunctionalCorrectness(const Trace &Tr,
                                               const TaskSet &Tasks,
                                               SchedPolicy Policy) {
  CheckResult R;
  // Pending jobs keyed by selection key; begin() is the job the policy
  // must pick next (up to ties at the same key).
  std::map<std::uint64_t, std::set<JobId>> Pending;
  std::set<JobId> SeenJobIds;

  for (std::size_t I = 0; I < Tr.size(); ++I) {
    const MarkerEvent &E = Tr[I];
    switch (E.Kind) {
    case MarkerKind::ReadE: {
      if (!E.J)
        break;
      R.noteCheck();
      // Property 3: unique identifiers.
      if (!SeenJobIds.insert(E.J->Id).second)
        R.addFailure("marker " + std::to_string(I) + ": job id j" +
                     std::to_string(E.J->Id) + " read twice (Def. 3.2 "
                     "uniqueness violated)");
      std::optional<std::uint64_t> K = selectionKey(*E.J, Tasks, Policy);
      if (!K) {
        R.addFailure("marker " + std::to_string(I) + ": read job of "
                     "unknown task or missing policy key");
        break;
      }
      Pending[*K].insert(E.J->Id);
      break;
    }
    case MarkerKind::Dispatch: {
      R.noteCheck(2);
      if (!E.J) {
        R.addFailure("marker " + std::to_string(I) + ": dispatch with no "
                     "job");
        break;
      }
      std::optional<std::uint64_t> K = selectionKey(*E.J, Tasks, Policy);
      if (!K) {
        R.addFailure("marker " + std::to_string(I) + ": dispatched job "
                     "of unknown task or missing policy key");
        break;
      }
      // Property 1a: the job must be pending.
      auto It = Pending.find(*K);
      bool IsPending = It != Pending.end() && It->second.count(E.J->Id);
      if (!IsPending) {
        R.addFailure("marker " + std::to_string(I) + ": dispatched j" +
                     std::to_string(E.J->Id) + " is not pending");
        break;
      }
      // Property 1b: no other pending job precedes it in policy order.
      auto First = Pending.begin();
      if (First->first < *K)
        R.addFailure("marker " + std::to_string(I) + ": dispatched j" +
                     std::to_string(E.J->Id) +
                     " although another pending job comes first under "
                     "the " + toString(Policy) + " policy (Def. 3.2 " +
                     keyName(Policy) + " violated)");
      It->second.erase(E.J->Id);
      if (It->second.empty())
        Pending.erase(It);
      break;
    }
    case MarkerKind::Idling: {
      R.noteCheck();
      // Property 2: idling only with no pending jobs.
      if (!Pending.empty())
        R.addFailure("marker " + std::to_string(I) + ": M_Idling while "
                     "jobs are pending (Def. 3.2 idling violated)");
      break;
    }
    default:
      break;
    }
  }
  return R;
}
