//===- trace/functional.cpp -----------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
// Batch adapter over FunctionalCheckSink (trace/check_sinks.h).
//===----------------------------------------------------------------------===//

#include "trace/functional.h"

#include "trace/check_sinks.h"

using namespace rprosa;

CheckResult rprosa::checkFunctionalCorrectness(const Trace &Tr,
                                               const TaskSet &Tasks,
                                               SchedPolicy Policy) {
  FunctionalCheckSink S(Tasks, Policy);
  for (const MarkerEvent &E : Tr)
    S.onMarker(E, 0); // Def. 3.2 is timestamp-independent.
  S.onEnd(0);
  return S.take();
}
