//===- trace/check_sinks.h - Streaming trace checkers ---------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace invariants of §2-§3 as streaming consumers (DESIGN.md §9).
/// Each sink is the incremental form of one batch checker and produces a
/// CheckResult *identical* to it — same failure messages, same order,
/// same checksPerformed — on any trace whose markers arrive in order
/// with one timestamp each. The batch functions (checkTimestamps,
/// checkProtocol, checkFunctionalCorrectness, checkConsistency,
/// checkWcetRespected) are thin replay adapters over these sinks, so
/// the whole existing test corpus exercises this code.
///
/// State discipline: every sink keeps O(tasks + open jobs) live state;
/// history sets (ever-read job/message ids) use IdIntervalSet, which
/// collapses the simulator's monotone ids into O(1) fragments. Per-job
/// state is retired when the job leaves the pending set.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_CHECK_SINKS_H
#define RPROSA_TRACE_CHECK_SINKS_H

#include "trace/protocol.h"
#include "trace/stream.h"

#include "core/arrival_sequence.h"
#include "core/policy.h"
#include "core/task.h"
#include "core/wcet.h"
#include "support/check.h"
#include "support/interval_set.h"

#include <map>
#include <set>

namespace rprosa {

/// Streaming checkTimestamps: monotone timestamps, EndTime after the
/// last marker. O(1) state.
class TimestampCheckSink final : public TraceSink {
public:
  TimestampCheckSink() { R.noteCheck(); }

  void onMarker(const MarkerEvent &E, Time At) override;
  void onEnd(Time EndTime) override;

  /// Markers seen so far — the stream's length, for free.
  std::size_t markers() const { return Index; }

  const CheckResult &result() const { return R; }
  CheckResult take() { return std::move(R); }

private:
  CheckResult R;
  Time Last = 0;
  std::size_t Index = 0;
  bool Done = false;
};

/// Streaming checkProtocol (Def. 3.1): feeds the STS; stops checking at
/// the first rejection, like the batch checker. O(1) state.
class ProtocolCheckSink final : public TraceSink {
public:
  explicit ProtocolCheckSink(std::uint32_t NumSockets) : Sts(NumSockets) {}

  void onMarker(const MarkerEvent &E, Time At) override;
  void onEnd(Time EndTime) override { (void)EndTime; }

  const ProtocolSts &sts() const { return Sts; }
  const CheckResult &result() const { return R; }
  CheckResult take() { return std::move(R); }

private:
  ProtocolSts Sts;
  CheckResult R;
  std::size_t Index = 0;
  bool Done = false;
};

/// Streaming checkFunctionalCorrectness (Def. 3.2). Pending jobs are
/// retired at dispatch; ever-read ids live in an IdIntervalSet.
class FunctionalCheckSink final : public TraceSink {
public:
  FunctionalCheckSink(const TaskSet &Tasks, SchedPolicy Policy)
      : Tasks(Tasks), Policy(Policy) {}

  void onMarker(const MarkerEvent &E, Time At) override;
  void onEnd(Time EndTime) override { (void)EndTime; }

  /// Jobs currently pending (read, not yet dispatched).
  std::size_t pendingJobs() const;

  const CheckResult &result() const { return R; }
  CheckResult take() { return std::move(R); }

private:
  const TaskSet &Tasks;
  SchedPolicy Policy;
  CheckResult R;
  std::map<std::uint64_t, std::set<JobId>> Pending;
  IdIntervalSet SeenJobIds;
  std::size_t Index = 0;
};

/// Streaming checkConsistency (Def. 2.1). The arrival tables are
/// input-sized (they mirror the arrival sequence); the per-trace state
/// is the verified prefix per socket plus an IdIntervalSet of read
/// message ids.
class ConsistencyCheckSink final : public TraceSink {
public:
  explicit ConsistencyCheckSink(const ArrivalSequence &Arr);

  void onMarker(const MarkerEvent &E, Time At) override;
  void onEnd(Time EndTime) override { (void)EndTime; }

  const CheckResult &result() const { return R; }
  CheckResult take() { return std::move(R); }

private:
  CheckResult R;
  std::map<MsgId, Arrival> ByMsg;
  std::vector<std::vector<Arrival>> PerSock;
  std::vector<std::size_t> Verified;
  IdIntervalSet ReadMsgs;
  std::size_t Index = 0;
};

/// One observed deadline miss on a trace: job of \p Task, arrived at
/// \p ArrivalAt, completed at \p CompletedAt with
/// Response = CompletedAt - ArrivalAt > Deadline.
struct DeadlineMiss {
  JobId Job = InvalidJobId;
  MsgId Msg = 0;
  TaskId Task = InvalidTaskId;
  Time ArrivalAt = 0;
  Time CompletedAt = 0;
  Duration Response = 0;
  Duration Deadline = 0;
};

/// Streaming deadline observer: joins each job's completion instant
/// (M_Completion timestamp) with its message's arrival instant from the
/// arrival sequence and records every job whose response time exceeds
/// its task's relative deadline (tasks with Deadline == 0 are
/// unconstrained). This is the oracle behind the SAG replay gate
/// (sag/backtrack): an Unschedulable verdict must present a trace this
/// sink flags. Per-job state is retired at completion — O(open jobs).
class DeadlineCheckSink final : public TraceSink {
public:
  DeadlineCheckSink(const TaskSet &Tasks, const ArrivalSequence &Arr);

  void onMarker(const MarkerEvent &E, Time At) override;
  void onEnd(Time EndTime) override { (void)EndTime; }

  const std::vector<DeadlineMiss> &misses() const { return Misses; }
  /// Completions of deadline-constrained jobs observed so far.
  std::size_t checkedCompletions() const { return Completions; }

  const CheckResult &result() const { return R; }
  CheckResult take() { return std::move(R); }

private:
  const TaskSet &Tasks;
  CheckResult R;
  /// Message id -> arrival instant (input-sized, mirrors the sequence).
  std::map<MsgId, Time> ArrivalAt;
  /// Open jobs: job id -> (msg id, arrival instant).
  std::map<JobId, std::pair<MsgId, Time>> Open;
  std::vector<DeadlineMiss> Misses;
  std::size_t Completions = 0;
};

/// Streaming checkWcetRespected (§2.3): checks each basic action's
/// duration as soon as the action closes. O(1) state (one open action).
class WcetCheckSink final : public TraceSink {
public:
  WcetCheckSink(const TaskSet &Tasks, const BasicActionWcets &W)
      : Tasks(Tasks), W(W),
        Seg([this](const BasicAction &A, Time) { onAction(A); }) {}

  void onMarker(const MarkerEvent &E, Time At) override {
    Seg.onMarker(E, At);
  }
  void onEnd(Time EndTime) override { Seg.onEnd(EndTime); }

  const CheckResult &result() const { return R; }
  CheckResult take() { return std::move(R); }

private:
  void onAction(const BasicAction &A);

  const TaskSet &Tasks;
  BasicActionWcets W;
  CheckResult R;
  ActionSegmenter Seg;
};

} // namespace rprosa

#endif // RPROSA_TRACE_CHECK_SINKS_H
