//===- trace/online_monitor.h - Incremental runtime verification ----------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline checkers validate a finished trace; OnlineMonitor
/// consumes marker events *as they are emitted* and raises each
/// violation at the earliest marker that manifests it. This is the
/// runtime-verification deployment mode of the framework: a production
/// system can feed its (cheap) marker stream into the monitor and trap
/// on the first protocol/functional/WCET violation instead of failing
/// an offline audit — turning the paper's proved invariants into a
/// live watchdog.
///
/// Incrementally checked:
///  - the scheduler protocol (Def. 3.1, via the STS);
///  - the §3.1 marker-function contracts (incl. Def. 3.2);
///  - the WCET assumptions (§2.3) on every completed basic action;
///  - timestamp monotonicity.
///
/// The monitor's verdicts agree with the offline checkers on complete
/// traces (asserted by the test suite).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_ONLINE_MONITOR_H
#define RPROSA_TRACE_ONLINE_MONITOR_H

#include "trace/marker_specs.h"
#include "trace/protocol.h"
#include "trace/stream.h"
#include "trace/trace.h"

#include "core/task.h"
#include "core/wcet.h"

#include <functional>
#include <string>

namespace rprosa {

/// A violation surfaced by the monitor.
struct MonitorAlert {
  /// Index of the marker that manifested the violation.
  std::size_t MarkerIndex = 0;
  /// The instant it was observed.
  Time At = 0;
  /// Which invariant class fired.
  enum class Kind : std::uint8_t {
    Protocol,
    Contract,
    Wcet,
    Timestamp,
  } What = Kind::Protocol;
  std::string Message;
};

std::string toString(MonitorAlert::Kind K);

/// Feeds on (marker, timestamp) pairs; raises alerts through an
/// optional callback and accumulates them for inspection. As a
/// TraceSink it can hang off any streaming source (the simulator, a
/// chunked trace file, a fan-out); its state is O(tasks + open jobs) —
/// per-job ghost state is retired at the job's M_Completion — so it
/// runs over unbounded marker streams.
class OnlineMonitor final : public TraceSink {
public:
  using AlertFn = std::function<void(const MonitorAlert &)>;

  OnlineMonitor(const TaskSet &Tasks, const BasicActionWcets &W,
                std::uint32_t NumSockets,
                SchedPolicy Policy = SchedPolicy::Npfp,
                AlertFn OnAlert = nullptr);

  /// Observes the next marker call at instant \p At.
  void observe(const MarkerEvent &E, Time At);

  /// Closes the stream at \p EndTime, checking the final pending basic
  /// action's WCET.
  void finish(Time EndTime);

  // TraceSink: observe/finish under their streaming names.
  void onMarker(const MarkerEvent &E, Time At) override { observe(E, At); }
  void onEnd(Time EndTime) override { finish(EndTime); }

  const std::vector<MonitorAlert> &alerts() const { return Alerts; }
  bool clean() const { return Alerts.empty(); }
  std::size_t observed() const { return Index; }

  /// Jobs whose ghost state is currently held (read but undispatched);
  /// the retirement tests assert this stays O(open jobs).
  std::size_t openJobs() const { return Contracts.pendingJobs(); }

private:
  void raise(MonitorAlert::Kind K, Time At, std::string Message);

  /// Checks the duration of the basic action that \p NextStart closes.
  void closeSegment(Time NextStart);

  const TaskSet &Tasks;
  BasicActionWcets Wcets;
  ProtocolSts Sts;
  MarkerSpecChecker Contracts;
  SchedPolicy Policy;
  AlertFn OnAlert;

  std::vector<MonitorAlert> Alerts;
  std::size_t Index = 0;
  std::size_t ContractFailures = 0;
  Time LastTs = 0;
  bool HaveLast = false;

  /// The in-flight basic action: its WCET budget and a label. A read
  /// action's budget is fixed when its M_ReadE result arrives.
  struct InFlight {
    Time Start = 0;
    Duration Budget = 0;
    std::string What;
    bool Open = false;
    bool BudgetKnown = false;
  } Segment;
};

/// Convenience: replays a finished timed trace through the monitor.
std::vector<MonitorAlert> monitorTrace(const TimedTrace &TT,
                                       const TaskSet &Tasks,
                                       const BasicActionWcets &W,
                                       std::uint32_t NumSockets,
                                       SchedPolicy Policy =
                                           SchedPolicy::Npfp);

} // namespace rprosa

#endif // RPROSA_TRACE_ONLINE_MONITOR_H
