//===- trace/protocol.h - The scheduler-protocol STS (Fig. 5) -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler protocol (Def. 3.1): a trace of marker functions is
/// well-formed iff it is accepted by the state-transition system of
/// Fig. 5, starting in the Idling state. The paper's figure fixes two
/// sockets for presentation; this acceptor is parametric in the socket
/// count and additionally encodes the round-robin polling discipline of
/// check_sockets_until_empty (rounds over all sockets; the phase ends
/// with the first all-failed round).
///
/// In the paper this property is *proven* for all traces via RefinedC;
/// here it is *checked* on each concrete trace (see DESIGN.md §1 for the
/// substitution rationale).
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_PROTOCOL_H
#define RPROSA_TRACE_PROTOCOL_H

#include "trace/trace.h"

#include "support/check.h"

#include <string>

namespace rprosa {

/// Deterministic step machine accepting the marker-function language of
/// the scheduler protocol.
class ProtocolSts {
public:
  explicit ProtocolSts(std::uint32_t NumSockets);

  /// Feeds the next marker. Returns true if the transition is allowed;
  /// on rejection, \p Why (if non-null) receives a diagnostic and the
  /// machine stays in its pre-step state.
  bool step(const MarkerEvent &E, std::string *Why = nullptr);

  /// True when the machine sits at the boundary between loop
  /// iterations, i.e. a finite run may stop here (right before a new
  /// polling phase).
  bool atIterationBoundary() const;

  /// Number of markers accepted so far.
  std::size_t position() const { return Pos; }

  /// A finite fingerprint of the acceptor's control state: phase,
  /// round-robin cursor, round flags, and *whether* a job is currently
  /// dispatched (not which one). Two acceptors with equal keys accept
  /// exactly the same marker languages going forward, provided future
  /// Execution/Completion markers carry the job the acceptor recorded
  /// at its Dispatch — which every generator driving this STS does by
  /// construction. Position is deliberately excluded (it never affects
  /// transitions), so the key space is finite: the static verifier
  /// (analysis/verifier.h) uses it to cache product states.
  std::uint64_t abstractKey() const {
    return static_cast<std::uint64_t>(State) |
           (static_cast<std::uint64_t>(CurSock) << 8) |
           (static_cast<std::uint64_t>(AnySuccessThisRound) << 40) |
           (static_cast<std::uint64_t>(RoundStart) << 41) |
           (static_cast<std::uint64_t>(CurJob != InvalidJobId) << 42);
  }

private:
  enum class Phase : std::uint8_t {
    PollExpectReadS, ///< Next must be M_ReadS.
    PollExpectReadE, ///< Next must be M_ReadE on socket CurSock.
    ExpectSelection, ///< The all-failed round ended; next M_Selection.
    ExpectDispatchOrIdling,
    ExpectExecution,  ///< Of job CurJob.
    ExpectCompletion, ///< Of job CurJob.
  };

  std::uint32_t NumSockets;
  Phase State = Phase::PollExpectReadS;
  SocketId CurSock = 0;
  bool AnySuccessThisRound = false;
  bool RoundStart = true; ///< True right before the first read of a round.
  JobId CurJob = InvalidJobId;
  std::size_t Pos = 0;
};

/// Runs the acceptor over a whole trace (Def. 3.1: tr_prot tr).
CheckResult checkProtocol(const Trace &Tr, std::uint32_t NumSockets);

} // namespace rprosa

#endif // RPROSA_TRACE_PROTOCOL_H
