//===- trace/consistency.h - Trace/arrival consistency (Def. 2.1) ---------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Def. 2.1: a timed trace (tr, ts) is *consistent* with an arrival
/// sequence arr iff
///  1. each job is read only after it has arrived:
///     tr[i] = M_ReadE sock j  ⟹  ∃ t_a. j ∈ arr_sock(t_a) ∧ t_a < ts[i]
///  2. a failed read implies no unread arrived jobs on that socket:
///     tr[i] = M_ReadE sock ⊥ ∧ j ∈ arr_sock(t_arr) ∧ t_arr < ts[i]
///       ⟹  j ∈ read_jobs(i)
///
/// Reads are matched to arrivals by message identity; the check also
/// validates the socket and inferred task type of each read.
///
//===----------------------------------------------------------------------===//

#ifndef RPROSA_TRACE_CONSISTENCY_H
#define RPROSA_TRACE_CONSISTENCY_H

#include "trace/trace.h"

#include "core/arrival_sequence.h"
#include "support/check.h"

namespace rprosa {

/// Checks Def. 2.1 in one forward scan (O(n + m) for n markers and m
/// arrivals; requires non-decreasing timestamps).
CheckResult checkConsistency(const TimedTrace &TT, const ArrivalSequence &Arr);

} // namespace rprosa

#endif // RPROSA_TRACE_CONSISTENCY_H
