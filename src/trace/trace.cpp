//===- trace/trace.cpp ----------------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/trace.h"

#include <string>

using namespace rprosa;

std::vector<Job> rprosa::readJobsBefore(const Trace &Tr, std::size_t I) {
  std::vector<Job> Out;
  for (std::size_t K = 0; K < I && K < Tr.size(); ++K)
    if (Tr[K].isSuccessfulRead())
      Out.push_back(*Tr[K].J);
  return Out;
}

std::vector<Job> rprosa::pendingJobsAt(const Trace &Tr, std::size_t I) {
  std::set<JobId> Dispatched;
  for (std::size_t K = 0; K < I && K < Tr.size(); ++K)
    if (Tr[K].Kind == MarkerKind::Dispatch && Tr[K].J)
      Dispatched.insert(Tr[K].J->Id);
  std::vector<Job> Out;
  for (const Job &J : readJobsBefore(Tr, I))
    if (!Dispatched.count(J.Id))
      Out.push_back(J);
  return Out;
}

std::set<MsgId> rprosa::readMsgIdsBefore(const Trace &Tr, std::size_t I) {
  std::set<MsgId> Out;
  for (std::size_t K = 0; K < I && K < Tr.size(); ++K)
    if (Tr[K].isSuccessfulRead())
      Out.insert(Tr[K].J->Msg);
  return Out;
}

std::string rprosa::renderTimedTrace(const TimedTrace &TT,
                                     std::size_t MaxLines) {
  std::string Out;
  std::size_t N = TT.size();
  if (MaxLines != 0 && N > MaxLines)
    N = MaxLines;
  for (std::size_t I = 0; I < N; ++I) {
    Out += "t=" + std::to_string(TT.Ts[I]) + "  " + toString(TT.Tr[I]) + "\n";
  }
  if (N < TT.size())
    Out += "... (" + std::to_string(TT.size() - N) + " more)\n";
  Out += "end=" + std::to_string(TT.EndTime) + "\n";
  return Out;
}
