//===- trace/marker_specs.cpp ---------------------------------------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/marker_specs.h"

#include <limits>

using namespace rprosa;

MarkerSpecChecker::MarkerSpecChecker(const TaskSet &Tasks,
                                     SchedPolicy Policy)
    : Tasks(Tasks), Policy(Policy) {}

std::vector<Job> MarkerSpecChecker::currentlyPending() const {
  std::vector<Job> Out;
  for (const auto &[Id, J] : Pending)
    Out.push_back(J);
  return Out;
}

std::uint64_t MarkerSpecChecker::keyOf(const Job &J) const {
  switch (Policy) {
  case SchedPolicy::Npfp:
    return std::numeric_limits<std::uint64_t>::max() -
           (J.Task < Tasks.size() ? Tasks.task(J.Task).Prio : 0);
  case SchedPolicy::Edf:
    return satAdd(J.ReadAt,
                  J.Task < Tasks.size() ? Tasks.task(J.Task).Deadline : 0);
  case SchedPolicy::Fifo:
    return J.Id;
  }
  return J.Id;
}

void MarkerSpecChecker::fail(std::string Why) {
  Result.addFailure("call " + std::to_string(Pos) + ": " + std::move(Why));
}

void MarkerSpecChecker::step(const MarkerEvent &E) {
  auto LastIs = [&](MarkerKind K) { return Last && Last->Kind == K; };

  switch (E.Kind) {
  case MarkerKind::ReadS:
    // {last tr ∈ {ε, M_ReadE, M_Idling, M_Completion}} read_start()
    // {current_trace (tr ++ [M_ReadS])}
    Result.noteCheck();
    if (Last && !LastIs(MarkerKind::ReadE) &&
        !LastIs(MarkerKind::Idling) && !LastIs(MarkerKind::Completion))
      fail("read_start: a read may only follow a read result, an idle "
           "cycle, a completion, or start the trace");
    break;

  case MarkerKind::ReadE:
    // The pseudo marker of the read result (Fig. 6). Success extends
    // currently_pending with a *fresh* job.
    Result.noteCheck(2);
    if (!LastIs(MarkerKind::ReadS))
      fail("read_end: no read system call in flight");
    if (E.J) {
      if (!EverRead.insert(E.J->Id))
        fail("read_end: job id j" + std::to_string(E.J->Id) +
             " is not fresh (READ-STEP-SUCCESS uniqueness)");
      if (E.J->Task >= Tasks.size())
        fail("read_end: job of unknown task");
      Pending.emplace(E.J->Id, *E.J);
    }
    break;

  case MarkerKind::Selection:
    // {last tr = M_ReadE ⊥} selection_start() {tr ++ [M_Selection]}
    Result.noteCheck();
    if (!Last || !Last->isFailedRead())
      fail("selection_start: the polling phase ends with a failed read");
    break;

  case MarkerKind::Dispatch: {
    // {last tr = M_Selection * j ∈ currently_pending * j minimal in
    //  policy order} dispatch_start(j) {pending' = pending ∖ {j}}
    Result.noteCheck(3);
    if (!LastIs(MarkerKind::Selection))
      fail("dispatch_start: dispatch must follow a selection");
    if (!E.J) {
      fail("dispatch_start: no job argument");
      break;
    }
    auto It = Pending.find(E.J->Id);
    if (It == Pending.end()) {
      fail("dispatch_start: j" + std::to_string(E.J->Id) +
           " is not in currently_pending");
      break;
    }
    std::uint64_t K = keyOf(It->second);
    for (const auto &[Id, J] : Pending) {
      if (Id != E.J->Id && keyOf(J) < K) {
        fail("dispatch_start: j" + std::to_string(Id) +
             " precedes the dispatched job in " + toString(Policy) +
             " order");
        break;
      }
    }
    Pending.erase(It);
    break;
  }

  case MarkerKind::Execution:
    // {last tr = M_Dispatch j} execution_start(j).
    Result.noteCheck();
    if (!LastIs(MarkerKind::Dispatch) || !Last->J || !E.J ||
        Last->J->Id != E.J->Id)
      fail("execution_start: must follow the dispatch of the same job");
    break;

  case MarkerKind::Completion:
    // {last tr = M_Execution j} completion_start(j).
    Result.noteCheck();
    if (!LastIs(MarkerKind::Execution) || !Last->J || !E.J ||
        Last->J->Id != E.J->Id)
      fail("completion_start: must follow the execution of the same "
           "job");
    break;

  case MarkerKind::Idling:
    // The paper's worked example:
    // {last tr = M_Selection * currently_pending ∅} idling_start().
    Result.noteCheck(2);
    if (!LastIs(MarkerKind::Selection))
      fail("idling_start: must follow a selection (last tr = "
           "M_Selection)");
    if (!Pending.empty())
      fail("idling_start: currently_pending is not empty (" +
           std::to_string(Pending.size()) + " jobs)");
    break;
  }

  // Postcondition common to every marker function: current_trace
  // becomes tr ++ [marker] — of which only the last element and the
  // length are ever needed again.
  Last = E;
  ++Pos;
}

CheckResult rprosa::checkMarkerSpecs(const Trace &Tr, const TaskSet &Tasks,
                                     SchedPolicy Policy) {
  MarkerSpecChecker C(Tasks, Policy);
  for (const MarkerEvent &E : Tr)
    C.step(E);
  return C.result();
}
