//===- bench/fig7_jitter.cpp - Experiment E5: release jitter (Fig. 7) -----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces §4.3 / Def. 4.3 / Fig. 7 and the quantitative claim of
/// §2.4: "the jitter bound amounts to just a few microseconds and thus
/// does not undermine the final response-time bounds, which are
/// typically on the order of tens to hundreds of milliseconds."
///
/// Part 1 sweeps socket counts and measures the actual release jitter
/// of every job against J_i = 1 + max(PB+SB+DB, IB), split into the two
/// Fig. 7 cases (priority compliance / work conservation).
///
/// Part 2 evaluates a typical deployment (ms-scale callbacks) and
/// reports the ratio between J_i and the response-time bounds.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "rta/jitter.h"
#include "sim/workload.h"
#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace rprosa;

int main() {
  std::printf("=== E5: release jitter bound (Def. 4.3, Fig. 7) ===\n\n");

  bool AllSound = true;

  // --- Part 1: measured jitter vs J across socket counts. ---
  TableWriter T({"sockets", "J bound", "worst measured", "idle-residue "
                 "cases", "overlooked cases", "jobs", "sound"});
  for (std::uint32_t Socks : {1u, 2u, 4u, 8u, 16u}) {
    ClientConfig Client;
    Client.Tasks.addTask("hi", 500 * TickNs, 2,
                         std::make_shared<PeriodicCurve>(12 * TickUs));
    Client.Tasks.addTask("lo", 1500 * TickNs, 1,
                         std::make_shared<PeriodicCurve>(40 * TickUs));
    Client.NumSockets = Socks;
    Client.Wcets = BasicActionWcets::typicalDeployment();

    WorkloadSpec Spec;
    Spec.NumSockets = Socks;
    Spec.Horizon = 300 * TickUs;
    Spec.Seed = Socks;
    ArrivalSequence Arr = generateWorkload(Client.Tasks, Spec);

    AdequacySpec ASpec;
    ASpec.Client = Client;
    ASpec.Arr = Arr;
    ASpec.Limits.Horizon = 800 * TickUs;
    AdequacyReport Rep = runAdequacy(ASpec);

    OverheadBounds B = OverheadBounds::compute(Client.Wcets, Socks);
    Duration J = maxReleaseJitter(B);
    Duration Worst = 0;
    std::uint64_t IdleCase = 0, Overlooked = 0;
    for (const MeasuredJitter &M : measureReleaseJitter(Rep.Conv, Arr)) {
      Worst = std::max(Worst, M.Jitter);
      IdleCase += M.Case == JitterCase::IdleResidue;
      Overlooked += M.Case == JitterCase::Overlooked;
    }
    bool Sound = Worst <= J;
    AllSound &= Sound;
    T.addRow({std::to_string(Socks), formatTicksAsNs(J),
              formatTicksAsNs(Worst), std::to_string(IdleCase),
              std::to_string(Overlooked),
              std::to_string(Rep.Jobs.size()), Sound ? "yes" : "NO"});
  }
  std::printf("%s\n", T.renderAscii().c_str());

  // --- Part 2: the µs-vs-ms claim on a typical deployment. ---
  std::printf("--- typical deployment (§2.4 claim) ---\n");
  ClientConfig Client;
  Client.Tasks.addTask("control", 2 * TickMs, 3,
                       std::make_shared<PeriodicCurve>(50 * TickMs));
  Client.Tasks.addTask("vision", 12 * TickMs, 2,
                       std::make_shared<PeriodicCurve>(100 * TickMs));
  Client.Tasks.addTask("logging", 5 * TickMs, 1,
                       std::make_shared<PeriodicCurve>(200 * TickMs));
  Client.NumSockets = 4;
  Client.Wcets = BasicActionWcets::typicalDeployment();

  RtaResult R = analyzeNpfp(Client.Tasks, Client.Wcets, 4);
  OverheadBounds B = OverheadBounds::compute(Client.Wcets, 4);
  Duration J = maxReleaseJitter(B);

  TableWriter T2({"task", "bound R_i+J_i", "jitter J_i", "J_i share"});
  bool JitterTiny = true;
  for (const TaskRta &TR : R.PerTask) {
    if (!TR.Bounded)
      continue;
    T2.addRow({Client.Tasks.task(TR.Task).Name,
               formatTicksAsNs(TR.ResponseBound), formatTicksAsNs(J),
               formatRatio(10000 * J, TR.ResponseBound) + " bp"});
    // The claim: J is µs-scale, bounds are ms-scale (>= 1000x).
    JitterTiny &= J * 1000 <= TR.ResponseBound;
  }
  std::printf("%s\n", T2.renderAscii().c_str());
  std::printf("jitter bound J = %s; response bounds are ms-scale: the "
              "paper's \"a few microseconds\" vs \"tens to hundreds of "
              "milliseconds\" relationship %s.\n",
              formatTicksAsNs(J).c_str(),
              JitterTiny ? "holds" : "does NOT hold");

  if (!AllSound || !JitterTiny) {
    std::printf("E5 FAILED\n");
    return 1;
  }
  std::printf("E5 reproduced.\n");
  return 0;
}
