//===- bench/hotpath.cpp - Experiment E21: the RTA hot path ---------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the three hot-path optimizations of the flat-kernel rework
/// and gates on the wins they were built for:
///
///  1. single-point curve evaluation — the same nested release curve
///     evaluated through the virtual ArrivalCurve tree, through the
///     sweep engine's MemoCurve, and through FlatCurveTable. Gate:
///     flat ≥ 3× the memoized throughput on one thread (checksums
///     asserted identical, so the comparison is apples-to-apples);
///
///  2. warm-started fixpoints — a 10k-point neighbor grid (each point a
///     small perturbation of the last) analyzed cold (no seeding at
///     all) and warm (cross-point + intra-point seeding). Gate: warm
///     saves ≥ 30% of the fixpoint iterations, with byte-identical
///     results — iteration counts are deterministic, so this gate holds
///     on any machine;
///
///  3. sweep wall-clock at 3, 48, and 10k points, serial vs parallel,
///     with the adaptive chunking in effect (informational: wall-clock
///     speedups are hardware-dependent and gated by E18 instead).
///
/// Emits BENCH_hotpath.json. `--smoke` (or RPROSA_BENCH_SMOKE=1)
/// shrinks the workloads for CI; the two gates stay armed since both
/// are machine-independent ratios.
///
//===----------------------------------------------------------------------===//

#include "core/curve_table.h"
#include "rta/sweep.h"
#include "support/parallel.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

using namespace rprosa;

namespace {

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// The nested release-curve shape the analyses actually evaluate:
/// shifted sum of heterogeneous sources.
ArrivalCurvePtr nestedCurve() {
  std::vector<ArrivalCurvePtr> Parts = {
      std::make_shared<PeriodicCurve>(7 * TickUs),
      std::make_shared<LeakyBucketCurve>(3, 5 * TickUs),
      std::make_shared<ScaledCurve>(
          std::make_shared<PeriodicJitterCurve>(11 * TickUs, 2 * TickUs),
          2)};
  return std::make_shared<ShiftedCurve>(
      std::make_shared<SumCurve>(std::move(Parts)), 3 * TickUs);
}

/// A deterministic delta schedule shaped like fixpoint iteration:
/// clusters of nearby deltas with occasional jumps.
std::vector<Duration> deltaSchedule(std::size_t N, Duration Horizon) {
  std::vector<Duration> Deltas;
  Deltas.reserve(N);
  std::uint64_t X = 0x9E3779B97F4A7C15ull;
  Duration Base = 1;
  for (std::size_t I = 0; I < N; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    if (I % 64 == 0)
      Base = 1 + X % Horizon;
    Deltas.push_back(1 + (Base + X % (Horizon / 64)) % Horizon);
  }
  return Deltas;
}

/// Evaluations per second of \p Eval over the schedule; the checksum
/// both defeats dead-code elimination and proves the three paths
/// computed the same values.
template <typename EvalT>
double throughputPerSec(const EvalT &Eval,
                        const std::vector<Duration> &Deltas, int Reps,
                        std::uint64_t &Checksum) {
  std::uint64_t Sum = 0;
  auto T0 = std::chrono::steady_clock::now();
  for (int R = 0; R < Reps; ++R)
    for (Duration D : Deltas)
      Sum += Eval.eval(D);
  double Ms = msSince(T0);
  Checksum = Sum;
  return Ms > 0 ? (1000.0 * Reps * Deltas.size()) / Ms : 0;
}

/// The 10k-point neighbor grid: one shared task set whose WCETs drift
/// upward in small steps — the sensitivity-search shape warm starts
/// were built for.
std::vector<SweepPoint> neighborGrid(std::size_t N) {
  TaskSet Base;
  Base.addTask("ctrl", 1 * TickUs, 3,
               std::make_shared<PeriodicCurve>(10 * TickUs));
  Base.addTask("sensor", 800 * TickNs, 2,
               std::make_shared<LeakyBucketCurve>(3, 20 * TickUs));
  Base.addTask("log", 4 * TickUs, 1,
               std::make_shared<PeriodicCurve>(80 * TickUs));

  std::vector<SweepPoint> Points;
  Points.reserve(N);
  for (std::size_t I = 0; I < N; ++I) {
    SweepPoint P;
    for (const Task &T : Base.tasks())
      P.Tasks.addTask(T.Name, T.Wcet + (I / 100) * TickNs, T.Prio, T.Curve,
                      T.Deadline);
    P.Cfg.FixedPointCap = 1 * TickSec;
    P.Sbf.Wcets = BasicActionWcets::typicalDeployment();
    P.Sbf.NumSockets = 1 + static_cast<std::uint32_t>(I % 4);
    P.Policy = SchedPolicy::Npfp;
    Points.push_back(std::move(P));
  }
  return Points;
}

struct SweepRun {
  double Ms = 0;
  std::string Json;     ///< Plain rendering — the byte-compare currency.
  std::string TelJson;  ///< Telemetry-wrapped rendering (3-arg overload).
  CurveCacheStats Cache;
  FixpointCounts Counts;
};

SweepRun runSweep(const std::vector<SweepPoint> &Points, unsigned Threads,
                  std::size_t Chunk, bool Warm, bool IntraPoint) {
  SweepOptions Opts;
  Opts.Threads = Threads;
  Opts.ChunkSize = Chunk;
  Opts.WarmStarts = Warm;
  SweepRunner Runner(Opts);
  std::vector<SweepPoint> Local = Points;
  if (!IntraPoint)
    for (SweepPoint &P : Local)
      P.Cfg.WarmIntraPoint = false;
  auto T0 = std::chrono::steady_clock::now();
  std::vector<RtaResult> Results = Runner.run(Local);
  SweepRun Out;
  Out.Ms = msSince(T0);
  Out.Json = sweepResultsJson(Local, Results);
  Out.TelJson = sweepResultsJson(Local, Results, Runner.telemetry());
  Out.Cache = Runner.telemetry().Cache;
  Out.Counts = Runner.telemetry().Fixpoints;
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("=== E21: hot-path kernels — flat curves, warm starts, "
              "chunked sweeps ===\n\n");

  bool Smoke = envFlag("RPROSA_BENCH_SMOKE");
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  unsigned Threads = threadsFromArgs(argc, argv);
  std::size_t Chunk = chunkFromArgs(argc, argv);
  bool Ok = true;

  // 1. Single-point curve evaluation: virtual vs memo vs flat.
  ArrivalCurvePtr Virt = nestedCurve();
  auto Memo = std::make_shared<MemoCurve>(Virt);
  Duration Horizon = 100 * TickUs;
  FlatCurveTable Flat(Virt, Horizon);
  std::vector<Duration> Deltas = deltaSchedule(Smoke ? 20000 : 200000,
                                               2 * Horizon);
  int Reps = Smoke ? 3 : 10;

  std::uint64_t CkVirt = 0, CkMemo = 0, CkFlat = 0;
  double VirtPerSec = throughputPerSec(*Virt, Deltas, Reps, CkVirt);
  // One warm-up pass so the memo measures steady-state hits, its
  // favorable regime.
  for (Duration D : Deltas)
    (void)Memo->eval(D);
  double MemoPerSec = throughputPerSec(*Memo, Deltas, Reps, CkMemo);
  double FlatPerSec = throughputPerSec(Flat, Deltas, Reps, CkFlat);
  bool ChecksumsAgree = CkVirt == CkMemo && CkMemo == CkFlat;
  double FlatVsMemo = MemoPerSec > 0 ? FlatPerSec / MemoPerSec : 0;
  std::printf("curve eval (%zu deltas x %d reps):\n", Deltas.size(), Reps);
  std::printf("  virtual tree   %12.0f evals/s\n", VirtPerSec);
  std::printf("  MemoCurve      %12.0f evals/s (steady-state hits)\n",
              MemoPerSec);
  std::printf("  FlatCurveTable %12.0f evals/s -> %.1fx over memo; "
              "checksums %s\n\n",
              FlatPerSec, FlatVsMemo,
              ChecksumsAgree ? "identical" : "DIFFER");
  if (!ChecksumsAgree) {
    std::printf("E21 FAILED: eval paths disagree\n");
    Ok = false;
  }
  if (FlatVsMemo < 3.0) {
    std::printf("E21 FAILED: flat eval only %.2fx over MemoCurve "
                "(>= 3x required)\n",
                FlatVsMemo);
    Ok = false;
  }

  // 2. Warm vs cold fixpoint iterations on the neighbor grid.
  std::size_t GridN = Smoke ? 1000 : 10000;
  std::vector<SweepPoint> Grid = neighborGrid(GridN);
  SweepRun Cold = runSweep(Grid, 1, Chunk, /*Warm=*/false,
                           /*IntraPoint=*/false);
  SweepRun Warm = runSweep(Grid, 1, Chunk, /*Warm=*/true,
                           /*IntraPoint=*/true);
  std::uint64_t ColdIters = Cold.Counts.Iterations +
                            Cold.Counts.SupplyIterations;
  std::uint64_t WarmIters = Warm.Counts.Iterations +
                            Warm.Counts.SupplyIterations;
  double SavedPct = ColdIters > 0
                        ? 100.0 * (ColdIters - WarmIters) / ColdIters
                        : 0;
  bool WarmBytesEqual = Cold.Json == Warm.Json;
  // The telemetry wrap is the perf-triage surface: it must embed the
  // byte-stable results verbatim (telemetry differs warm vs cold by
  // design, so the equality gate stays on the plain form).
  bool TelWrapsPlain =
      Warm.TelJson.find(Cold.Json.substr(0, Cold.Json.size() - 1)) !=
      std::string::npos;
  std::printf("warm starts (%zu-point neighbor grid, 1 thread):\n", GridN);
  std::printf("  cold %llu iterations (%.1f ms), warm %llu (%.1f ms) "
              "-> %.1f%% saved, %llu seeded; results %s\n",
              static_cast<unsigned long long>(ColdIters), Cold.Ms,
              static_cast<unsigned long long>(WarmIters), Warm.Ms,
              SavedPct,
              static_cast<unsigned long long>(Warm.Counts.Seeded),
              WarmBytesEqual ? "byte-identical" : "DIFFER");
  std::printf("  curve cache: %zu curves, %llu hits / %llu misses\n\n",
              Warm.Cache.Curves,
              static_cast<unsigned long long>(Warm.Cache.Hits),
              static_cast<unsigned long long>(Warm.Cache.Misses));
  if (!WarmBytesEqual) {
    std::printf("E21 FAILED: warm-started sweep diverged from cold\n");
    Ok = false;
  }
  if (!TelWrapsPlain) {
    std::printf("E21 FAILED: telemetry JSON does not embed the plain "
                "results rendering\n");
    Ok = false;
  }
  if (SavedPct < 30.0) {
    std::printf("E21 FAILED: warm starts saved only %.1f%% of fixpoint "
                "iterations (>= 30%% required)\n",
                SavedPct);
    Ok = false;
  }

  // 3. Serial vs parallel sweep wall-clock at three batch scales.
  std::vector<std::size_t> Scales = {3, 48, GridN};
  std::vector<double> SerialMs(Scales.size()), ParallelMs(Scales.size());
  for (std::size_t S = 0; S < Scales.size(); ++S) {
    std::vector<SweepPoint> Pts = neighborGrid(Scales[S]);
    SweepRun Ser = runSweep(Pts, 1, Chunk, true, true);
    SweepRun Par = runSweep(Pts, Threads, Chunk, true, true);
    SerialMs[S] = Ser.Ms;
    ParallelMs[S] = Par.Ms;
    bool Same = Ser.Json == Par.Json;
    std::printf("sweep %6zu points: serial %8.1f ms, parallel %8.1f ms "
                "(%u threads) -> %.2fx; results %s\n",
                Scales[S], Ser.Ms, Par.Ms, Threads ? Threads : 0,
                Par.Ms > 0 ? Ser.Ms / Par.Ms : 0,
                Same ? "identical" : "DIFFER");
    if (!Same) {
      std::printf("E21 FAILED: parallel sweep diverged at %zu points\n",
                  Scales[S]);
      Ok = false;
    }
  }

  std::FILE *F = std::fopen("BENCH_hotpath.json", "w");
  if (F) {
    std::fprintf(
        F,
        "{\n"
        "  \"experiment\": \"E21\",\n"
        "  \"eval_virtual_per_sec\": %.0f,\n"
        "  \"eval_memo_per_sec\": %.0f,\n"
        "  \"eval_flat_per_sec\": %.0f,\n"
        "  \"flat_vs_memo\": %.3f,\n"
        "  \"grid_points\": %zu,\n"
        "  \"cold_iterations\": %llu,\n"
        "  \"warm_iterations\": %llu,\n"
        "  \"warm_saved_pct\": %.2f,\n"
        "  \"warm_seeded\": %llu,\n"
        "  \"warm_byte_identical\": %s,\n"
        "  \"curve_cache_curves\": %zu,\n"
        "  \"curve_cache_hits\": %llu,\n"
        "  \"curve_cache_misses\": %llu,\n"
        "  \"sweep_points\": [%zu, %zu, %zu],\n"
        "  \"sweep_serial_ms\": [%.3f, %.3f, %.3f],\n"
        "  \"sweep_parallel_ms\": [%.3f, %.3f, %.3f]\n"
        "}\n",
        VirtPerSec, MemoPerSec, FlatPerSec, FlatVsMemo, GridN,
        static_cast<unsigned long long>(ColdIters),
        static_cast<unsigned long long>(WarmIters), SavedPct,
        static_cast<unsigned long long>(Warm.Counts.Seeded),
        WarmBytesEqual ? "true" : "false", Warm.Cache.Curves,
        static_cast<unsigned long long>(Warm.Cache.Hits),
        static_cast<unsigned long long>(Warm.Cache.Misses), Scales[0],
        Scales[1], Scales[2], SerialMs[0], SerialMs[1], SerialMs[2], ParallelMs[0],
        ParallelMs[1], ParallelMs[2]);
    std::fclose(F);
    std::printf("\nwrote BENCH_hotpath.json\n");
  }

  if (!Ok)
    return 1;
  std::printf("E21 reproduced: flat kernels %.1fx over memo, warm "
              "starts save %.1f%% of iterations, byte-identical "
              "throughout.\n",
              FlatVsMemo, SavedPct);
  return 0;
}
