//===- bench/effort_table.cpp - Experiment E9: the §5 effort table --------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §5 reports the proof effort per component (RefinedC
/// extension 2,150 LoC; Rössl C code 300; specs 615; RefinedC proofs
/// 4,300; trace→timed-trace transformation 12,350; →schedule 11,700;
/// RTA 4,000). The executable analogue reports, per component of this
/// reproduction:
///
///  - the source inventory (files, lines of code), and
///  - the *checking effort*: how many elementary checks each layer
///    performs on a standard adequacy run (the runtime counterpart of
///    discharged proof obligations).
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "sim/workload.h"
#include "support/parallel.h"
#include "support/table.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>

using namespace rprosa;
namespace fs = std::filesystem;

namespace {

/// Counts non-empty lines of the C++ sources under Dir.
std::pair<std::uint64_t, std::uint64_t> countLoc(const fs::path &Dir) {
  std::uint64_t Files = 0, Lines = 0;
  if (!fs::exists(Dir))
    return {0, 0};
  for (const auto &Entry : fs::recursive_directory_iterator(Dir)) {
    if (!Entry.is_regular_file())
      continue;
    fs::path P = Entry.path();
    if (P.extension() != ".h" && P.extension() != ".cpp")
      continue;
    ++Files;
    std::ifstream In(P);
    std::string Line;
    while (std::getline(In, Line)) {
      bool Blank = true;
      for (char C : Line)
        if (!isspace(static_cast<unsigned char>(C)))
          Blank = false;
      if (!Blank)
        ++Lines;
    }
  }
  return {Files, Lines};
}

} // namespace

int main(int argc, char **argv) {
  std::printf("=== E9: implementation + checking effort (the analogue "
              "of the paper's §5 table) ===\n\n");

  fs::path Root = RPROSA_SOURCE_DIR;
  struct Component {
    const char *Dir;
    const char *PaperCounterpart;
  };
  std::vector<Component> Components = {
      {"src/support", "(infrastructure)"},
      {"src/core", "abstract model: tasks/curves/schedules"},
      {"src/trace", "RefinedC trace extension + invariants (a,c,d)"},
      {"src/sim", "simulation substrate (clock/sockets/costs)"},
      {"src/caesium", "Caesium instrumented semantics, Fig. 6 (a)"},
      {"src/rossl", "the Rössl C code (b)"},
      {"src/convert", "trace->schedule transformation (e,f)"},
      {"src/rta", "SBF + aRSA instantiation, the RTA (g)"},
      {"src/adequacy", "Thm. 5.1 adequacy glue"},
      {"src/baseline", "ProKOS-style tick baseline (§6)"},
      {"tests", "(test suite)"},
      {"bench", "(experiment harnesses)"},
      {"examples", "(examples)"},
  };

  // The per-component source scans are independent I/O-bound work;
  // counts land in index-addressed slots and the table renders in
  // component order — identical under --serial.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> Counts(
      Components.size());
  ThreadPool Pool(threadsFromArgs(argc, argv));
  std::size_t Chunk = chunkFromArgs(argc, argv);
  Pool.parallelForChunked(Components.size(), Chunk, [&](std::size_t Idx) {
    Counts[Idx] = countLoc(Root / Components[Idx].Dir);
  });

  TableWriter T({"component", "paper counterpart", "files", "LoC"});
  std::uint64_t TotalFiles = 0, TotalLines = 0;
  for (std::size_t Idx = 0; Idx < Components.size(); ++Idx) {
    const Component &C = Components[Idx];
    auto [Files, Lines] = Counts[Idx];
    T.addRow({C.Dir, C.PaperCounterpart, std::to_string(Files),
              formatWithCommas(Lines)});
    TotalFiles += Files;
    TotalLines += Lines;
  }
  T.addRow({"total", "", std::to_string(TotalFiles),
            formatWithCommas(TotalLines)});
  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("paper totals for comparison: 2,150 + 300 + 615 + 4,300 + "
              "12,350 + 11,700 + 4,000 = 35,415 LoC of Rocq/C.\n\n");

  // Checking effort on a standard run.
  AdequacySpec Spec;
  Spec.Client.Tasks.addTask("hi", 600 * TickNs, 2,
                            std::make_shared<PeriodicCurve>(15 * TickUs));
  Spec.Client.Tasks.addTask("lo", 1800 * TickNs, 1,
                            std::make_shared<PeriodicCurve>(50 * TickUs));
  Spec.Client.NumSockets = 2;
  Spec.Client.Wcets = BasicActionWcets::typicalDeployment();
  WorkloadSpec WSpec;
  WSpec.NumSockets = 2;
  WSpec.Horizon = 500 * TickUs;
  WSpec.Style = WorkloadStyle::GreedyDense;
  Spec.Arr = generateWorkload(Spec.Client.Tasks, WSpec);
  Spec.Limits.Horizon = 1 * TickMs;
  AdequacyReport Rep = runAdequacy(Spec);

  TableWriter T2({"checking layer", "elementary checks"});
  T2.addRow({"client/static side conditions",
             formatWithCommas(Rep.StaticOk.checksPerformed())});
  T2.addRow({"arrival-curve compliance (Eq. 2)",
             formatWithCommas(Rep.ArrivalOk.checksPerformed())});
  T2.addRow({"timestamp sanity",
             formatWithCommas(Rep.TimestampsOk.checksPerformed())});
  T2.addRow({"scheduler protocol (Def. 3.1)",
             formatWithCommas(Rep.ProtocolOk.checksPerformed())});
  T2.addRow({"functional correctness (Def. 3.2)",
             formatWithCommas(Rep.FunctionalOk.checksPerformed())});
  T2.addRow({"consistency (Def. 2.1)",
             formatWithCommas(Rep.ConsistencyOk.checksPerformed())});
  T2.addRow({"WCET respect (§2.3)",
             formatWithCommas(Rep.WcetOk.checksPerformed())});
  T2.addRow({"schedule structure",
             formatWithCommas(Rep.ScheduleOk.checksPerformed())});
  T2.addRow({"validity (a)-(e) (§2.4)",
             formatWithCommas(Rep.ValidityOk.checksPerformed())});
  T2.addRow({"Thm. 5.1 per-job verdicts",
             formatWithCommas(Rep.Jobs.size())});
  std::printf("checking effort on a 1ms standard run (%zu markers):\n%s\n",
              Rep.TT.size(), T2.renderAscii().c_str());
  std::printf("run verdict: %s\n",
              Rep.theoremHolds() ? "theorem 5.1 holds" : "FAILED");
  return Rep.theoremHolds() ? 0 : 1;
}
