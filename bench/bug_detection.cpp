//===- bench/bug_detection.cpp - Experiment E15: catching buggy code ------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §1.1 motivation made executable: real systems were
/// refuted by *implementation* bugs (Deos's overhead accounting; the
/// ROS2 executor's wait-set construction starving tasks). Here, six
/// deliberately buggy scheduler variants run the same workloads as the
/// correct Rössl, and the table shows which checker — the executable
/// counterpart of the corresponding RefinedC-proved invariant — catches
/// each bug. The correct scheduler must pass everything; every bug must
/// be caught by at least one checker.
///
//===----------------------------------------------------------------------===//

#include "rossl/faulty.h"
#include "sim/workload.h"
#include "support/table.h"
#include "trace/consistency.h"
#include "trace/functional.h"
#include "trace/marker_specs.h"
#include "trace/protocol.h"
#include "trace/wcet_check.h"

#include <cstdio>
#include <memory>

using namespace rprosa;

namespace {

struct CheckOutcome {
  bool Protocol = true;
  bool Functional = true;
  bool Specs = true;
  bool Consistency = true;
  bool Wcet = true;

  bool anyFailed() const {
    return !Protocol || !Functional || !Specs || !Consistency || !Wcet;
  }
};

CheckOutcome runChecks(const TimedTrace &TT, const ClientConfig &C,
                       const ArrivalSequence &Arr) {
  CheckOutcome O;
  O.Protocol = checkProtocol(TT.Tr, C.NumSockets).passed();
  O.Functional = checkFunctionalCorrectness(TT.Tr, C.Tasks).passed();
  O.Specs = checkMarkerSpecs(TT.Tr, C.Tasks).passed();
  O.Consistency = checkConsistency(TT, Arr).passed();
  O.Wcet = checkWcetRespected(TT, C.Tasks, C.Wcets).passed();
  return O;
}

const char *mark(bool Passed) { return Passed ? "pass" : "CAUGHT"; }

} // namespace

int main() {
  std::printf("=== E15: implementation bugs vs the trace checkers "
              "(§1.1) ===\n\n");

  ClientConfig C;
  C.Tasks.addTask("hi", 600 * TickNs, 2,
                  std::make_shared<PeriodicCurve>(10 * TickUs));
  C.Tasks.addTask("lo", 1500 * TickNs, 1,
                  std::make_shared<LeakyBucketCurve>(2, 25 * TickUs));
  C.NumSockets = 3;
  C.Wcets = BasicActionWcets::typicalDeployment();

  WorkloadSpec Spec;
  Spec.NumSockets = 3;
  Spec.Horizon = 200 * TickUs;
  Spec.Style = WorkloadStyle::GreedyDense;
  ArrivalSequence Arr = generateWorkload(C.Tasks, Spec);
  RunLimits Limits;
  Limits.Horizon = 400 * TickUs;

  TableWriter T({"scheduler", "protocol", "functional (Def 3.2)",
                 "specs (§3.1)", "consistency (Def 2.1)", "WCET (§2.3)",
                 "verdict"});

  // The correct implementation first.
  bool Ok = true;
  {
    Environment Env(Arr);
    CostModel Costs(C.Wcets, CostModelKind::AlwaysWcet, 1);
    FdScheduler Sched(C, Env, Costs);
    CheckOutcome O = runChecks(Sched.run(Limits), C, Arr);
    T.addRow({"correct Rössl", mark(O.Protocol), mark(O.Functional),
              mark(O.Specs), mark(O.Consistency), mark(O.Wcet),
              O.anyFailed() ? "FALSE ALARM" : "clean"});
    Ok &= !O.anyFailed();
  }

  for (SchedulerBug Bug :
       {SchedulerBug::EarlyPollingExit, SchedulerBug::PriorityInversion,
        SchedulerBug::SkipCompletionMarker, SchedulerBug::DoubleDispatch,
        SchedulerBug::IgnoreLastSocket, SchedulerBug::OversleepIdling}) {
    Environment Env(Arr);
    CostModel Costs(C.Wcets, CostModelKind::AlwaysWcet, 1);
    FaultyScheduler Sched(C, Env, Costs, Bug);
    CheckOutcome O = runChecks(Sched.run(Limits), C, Arr);
    bool Caught = O.anyFailed();
    T.addRow({toString(Bug), mark(O.Protocol), mark(O.Functional),
              mark(O.Specs), mark(O.Consistency), mark(O.Wcet),
              Caught ? "caught" : "ESCAPED"});
    Ok &= Caught;
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("paper analogue: the RefinedC-proved invariants exclude "
              "exactly these bug classes; a variant that escaped every "
              "checker would make the verification vacuous.\n");
  if (!Ok) {
    std::printf("E15 FAILED\n");
    return 1;
  }
  std::printf("E15 reproduced: the correct scheduler is clean and every "
              "bug is caught.\n");
  return 0;
}
