//===- bench/bug_detection.cpp - Experiment E15: catching buggy code ------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §1.1 motivation made executable: real systems were
/// refuted by *implementation* bugs (Deos's overhead accounting; the
/// ROS2 executor's wait-set construction starving tasks). Here, six
/// deliberately buggy scheduler variants run the same workloads as the
/// correct Rössl, and the table shows which checker — the executable
/// counterpart of the corresponding RefinedC-proved invariant — catches
/// each bug. The correct scheduler must pass everything; every bug must
/// be caught by at least one checker.
///
//===----------------------------------------------------------------------===//

#include "analysis/cfg.h"
#include "analysis/dataflow/analyses.h"
#include "analysis/dataflow/witness.h"
#include "analysis/mutants.h"
#include "analysis/verifier.h"
#include "caesium/interp.h"
#include "caesium/rossl_program.h"
#include "rossl/faulty.h"
#include "sim/workload.h"
#include "support/table.h"
#include "trace/consistency.h"
#include "trace/functional.h"
#include "trace/marker_specs.h"
#include "trace/protocol.h"
#include "trace/wcet_check.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace rprosa;

namespace {

struct CheckOutcome {
  bool Protocol = true;
  bool Functional = true;
  bool Specs = true;
  bool Consistency = true;
  bool Wcet = true;

  bool anyFailed() const {
    return !Protocol || !Functional || !Specs || !Consistency || !Wcet;
  }
};

CheckOutcome runChecks(const TimedTrace &TT, const ClientConfig &C,
                       const ArrivalSequence &Arr) {
  CheckOutcome O;
  O.Protocol = checkProtocol(TT.Tr, C.NumSockets).passed();
  O.Functional = checkFunctionalCorrectness(TT.Tr, C.Tasks).passed();
  O.Specs = checkMarkerSpecs(TT.Tr, C.Tasks).passed();
  O.Consistency = checkConsistency(TT, Arr).passed();
  O.Wcet = checkWcetRespected(TT, C.Tasks, C.Wcets).passed();
  return O;
}

const char *mark(bool Passed) { return Passed ? "pass" : "CAUGHT"; }

/// One row of the static-vs-runtime comparison over the embedded
/// mutation corpus (analysis/mutants.h).
struct MutantRow {
  std::string Name;
  bool StaticCaught = false;   ///< verifyProtocol rejected it.
  bool RuntimeCaught = false;  ///< checkProtocol rejected a concrete run.
  bool RuntimeRan = false;     ///< False: would trap the machine.
  std::size_t CexMarkers = 0;  ///< Counterexample length (static).
};

/// One row of the value-range comparison: static interval analysis vs
/// the machine's runtime trap, matched by check-id.
struct RangeRow {
  std::string Name;
  std::string ExpectedCheckId;
  bool StaticCaught = false;  ///< Value-range finding under the id.
  bool RuntimeTrapped = false;
  bool CheckIdsAgree = false; ///< Trap's checkId() == ExpectedCheckId.
};

/// One row of the witness-refinement comparison: the interval analysis
/// says May, the witness layer must decide which Mays are real.
struct WitnessRow {
  std::string Name;
  std::string ExpectedCheckId;
  std::string Expected;   ///< Mutant::ExpectedRefinement.
  std::string Refinement; ///< Status actually reached.
  bool Agrees = false;    ///< Verdict + severity + trap id all line up.
  bool RuntimeTrapped = false; ///< Machine trap under a generic workload.
};

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S)
    if (C == '"' || C == '\\')
      Out += std::string("\\") + C;
    else
      Out += C;
  return Out;
}

/// Emits both comparisons as BENCH_bug_detection.json next to the
/// binary, for downstream tooling.
void writeJson(const std::vector<MutantRow> &Rows,
               const std::vector<RangeRow> &Ranges,
               const std::vector<WitnessRow> &Witnesses, bool CorrectClean) {
  std::FILE *F = std::fopen("BENCH_bug_detection.json", "w");
  if (!F) {
    std::printf("(could not write BENCH_bug_detection.json)\n");
    return;
  }
  std::fprintf(F, "{\n  \"experiment\": \"E15-bug-detection\",\n");
  std::fprintf(F, "  \"correct_program_clean\": %s,\n",
               CorrectClean ? "true" : "false");
  std::fprintf(F, "  \"mutants\": [\n");
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const MutantRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"static_caught\": %s, "
                 "\"runtime_ran\": %s, \"runtime_caught\": %s, "
                 "\"counterexample_markers\": %zu}%s\n",
                 jsonEscape(R.Name).c_str(), R.StaticCaught ? "true" : "false",
                 R.RuntimeRan ? "true" : "false",
                 R.RuntimeCaught ? "true" : "false", R.CexMarkers,
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"value_range_mutants\": [\n");
  for (std::size_t I = 0; I < Ranges.size(); ++I) {
    const RangeRow &R = Ranges[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"check_id\": \"%s\", "
                 "\"static_caught\": %s, \"runtime_trapped\": %s, "
                 "\"check_ids_agree\": %s}%s\n",
                 jsonEscape(R.Name).c_str(),
                 jsonEscape(R.ExpectedCheckId).c_str(),
                 R.StaticCaught ? "true" : "false",
                 R.RuntimeTrapped ? "true" : "false",
                 R.CheckIdsAgree ? "true" : "false",
                 I + 1 < Ranges.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"witness_mutants\": [\n");
  for (std::size_t I = 0; I < Witnesses.size(); ++I) {
    const WitnessRow &R = Witnesses[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"check_id\": \"%s\", "
                 "\"expected\": \"%s\", \"refinement\": \"%s\", "
                 "\"agrees\": %s, \"runtime_trapped\": %s}%s\n",
                 jsonEscape(R.Name).c_str(),
                 jsonEscape(R.ExpectedCheckId).c_str(),
                 jsonEscape(R.Expected).c_str(),
                 jsonEscape(R.Refinement).c_str(),
                 R.Agrees ? "true" : "false",
                 R.RuntimeTrapped ? "true" : "false",
                 I + 1 < Witnesses.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote BENCH_bug_detection.json\n");
}

/// The embedded-mutant half of the experiment: the static verifier
/// (all traces at once) vs the runtime monitor (one concrete trace).
bool runMutantComparison(std::vector<MutantRow> &Rows, bool &CorrectClean) {
  using namespace rprosa::analysis;
  namespace cs = rprosa::caesium;

  const std::uint32_t N = 3;
  ClientConfig C;
  C.Tasks.addTask("hi", 600 * TickNs, 2,
                  std::make_shared<PeriodicCurve>(10 * TickUs));
  C.Tasks.addTask("lo", 1500 * TickNs, 1,
                  std::make_shared<LeakyBucketCurve>(2, 25 * TickUs));
  C.NumSockets = N;
  C.Wcets = BasicActionWcets::typicalDeployment();

  WorkloadSpec Spec;
  Spec.NumSockets = N;
  Spec.Horizon = 200 * TickUs;
  Spec.Style = WorkloadStyle::GreedyDense;
  ArrivalSequence Arr = generateWorkload(C.Tasks, Spec);
  RunLimits Limits;
  Limits.Horizon = 400 * TickUs;

  bool Ok = true;
  TableWriter T({"embedded program", "static verifyProtocol",
                 "runtime ProtocolSts", "cex markers", "verdict"});

  Verdict Clean = verifyProtocol(cs::buildRosslProgram(N), N);
  {
    Environment Env(Arr);
    CostModel Costs(C.Wcets, CostModelKind::AlwaysWcet, 1);
    cs::CaesiumMachine M(C, Env, Costs);
    bool RuntimeClean =
        checkProtocol(M.run(cs::buildRosslProgram(N), Limits).Tr, N)
            .passed();
    T.addRow({"correct Roessl", Clean.verified() ? "verified" : "FALSE ALARM",
              RuntimeClean ? "pass" : "FALSE ALARM", "-",
              Clean.verified() && RuntimeClean ? "clean" : "FALSE ALARM"});
    Ok &= Clean.verified() && RuntimeClean;
  }
  CorrectClean = Clean.verified();

  for (const Mutant &Mu : protocolMutantCorpus(N)) {
    MutantRow R;
    R.Name = Mu.Name;
    Verdict V = verifyProtocol(Mu.Program, N);
    R.StaticCaught = !V.verified();
    R.CexMarkers = V.MarkerPrefix.size();
    R.RuntimeRan = Mu.InterpreterSafe;
    if (Mu.InterpreterSafe) {
      Environment Env(Arr);
      CostModel Costs(C.Wcets, CostModelKind::AlwaysWcet, 1);
      cs::CaesiumMachine M(C, Env, Costs);
      R.RuntimeCaught =
          !checkProtocol(M.run(Mu.Program, Limits).Tr, N).passed();
    }
    T.addRow({R.Name, R.StaticCaught ? "caught" : "MISSED",
              !R.RuntimeRan ? "n/a (traps machine)"
                            : (R.RuntimeCaught ? "caught" : "missed"),
              std::to_string(R.CexMarkers),
              R.StaticCaught ? "caught" : "ESCAPED"});
    // The static analyzer must catch every mutant; the runtime monitor
    // must agree wherever it can run at all.
    Ok &= R.StaticCaught && (!R.RuntimeRan || R.RuntimeCaught);
    Rows.push_back(R);
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("the static column quantifies over every socket behaviour "
              "at once; 'n/a (traps machine)' rows are bugs only the "
              "static analyzer can examine — running them would violate "
              "the machine's preconditions before any trace exists.\n\n");
  return Ok;
}

/// The value-range half: the interval analysis must flag each mutant of
/// valueRangeMutantCorpus under its ExpectedCheckId, the machine must
/// trap running it, and the trap's checkId() must equal the static one
/// — while the unmutated program stays clean on both sides.
bool runValueRangeComparison(std::vector<RangeRow> &Rows) {
  using namespace rprosa::analysis;
  namespace cs = rprosa::caesium;
  namespace df = rprosa::analysis::dataflow;

  const std::uint32_t N = 3;
  df::AnalysisOptions Opts;
  Opts.NumSockets = N;

  ClientConfig C;
  C.Tasks.addTask("hi", 600 * TickNs, 2,
                  std::make_shared<PeriodicCurve>(10 * TickUs));
  C.Tasks.addTask("lo", 1500 * TickNs, 1,
                  std::make_shared<LeakyBucketCurve>(2, 25 * TickUs));
  C.NumSockets = N;
  C.Wcets = BasicActionWcets::typicalDeployment();

  WorkloadSpec Spec;
  Spec.NumSockets = N;
  Spec.Horizon = 200 * TickUs;
  Spec.Style = WorkloadStyle::GreedyDense;
  ArrivalSequence Arr = generateWorkload(C.Tasks, Spec);
  RunLimits Limits;
  Limits.Horizon = 400 * TickUs;

  bool Ok = true;
  TableWriter T({"program", "static value-range", "runtime trap",
                 "check-ids agree", "verdict"});

  {
    std::vector<df::Finding> Fs =
        df::analyzeValueRanges(buildCfg(cs::buildRosslProgram(N)), Opts)
            .Findings;
    Environment Env(Arr);
    CostModel Costs(C.Wcets, CostModelKind::AlwaysWcet, 1);
    cs::CaesiumMachine M(C, Env, Costs);
    M.run(cs::buildRosslProgram(N), Limits);
    bool CleanStatic = Fs.empty();
    bool CleanRuntime = !M.trap().has_value();
    T.addRow({"correct Roessl", CleanStatic ? "clean" : "FALSE ALARM",
              CleanRuntime ? "none" : "FALSE ALARM", "-",
              CleanStatic && CleanRuntime ? "clean" : "FALSE ALARM"});
    Ok &= CleanStatic && CleanRuntime;
  }

  for (const Mutant &Mu : valueRangeMutantCorpus(N)) {
    RangeRow R;
    R.Name = Mu.Name;
    R.ExpectedCheckId = Mu.ExpectedCheckId;
    std::vector<df::Finding> Fs =
        df::analyzeValueRanges(buildCfg(Mu.Program), Opts).Findings;
    for (const df::Finding &F : Fs)
      R.StaticCaught |= F.CheckId == Mu.ExpectedCheckId;

    Environment Env(Arr);
    CostModel Costs(C.Wcets, CostModelKind::AlwaysWcet, 1);
    cs::CaesiumMachine M(C, Env, Costs);
    M.run(Mu.Program, Limits);
    R.RuntimeTrapped = M.trap().has_value();
    R.CheckIdsAgree =
        R.RuntimeTrapped && M.trap()->checkId() == Mu.ExpectedCheckId;

    T.addRow({R.Name, R.StaticCaught ? "caught" : "MISSED",
              R.RuntimeTrapped ? M.trap()->checkId() : "MISSED",
              R.CheckIdsAgree ? "yes" : "NO",
              R.StaticCaught && R.CheckIdsAgree ? "caught" : "ESCAPED"});
    Ok &= R.StaticCaught && R.RuntimeTrapped && R.CheckIdsAgree;
    Rows.push_back(R);
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("the same check-id string names the defect on both sides: "
              "the interval analysis predicts it over every input, the "
              "machine's trap confirms it on one — the lint/monitor "
              "cross-validation of §1.1, specialised to arithmetic and "
              "socket-range safety.\n\n");
  return Ok;
}

/// The witness half: programs where the intervals can only say May.
/// refineFindings must split them exactly along the corpus ground
/// truth — "confirmed" mutants upgraded via an in-process replay whose
/// trap carries the finding's check-id, "infeasible" mutants suppressed
/// by a zone-domain proof. As independent evidence the infeasible ones
/// also run on the machine under a generic dense workload and must
/// never trap.
bool runWitnessComparison(std::vector<WitnessRow> &Rows) {
  using namespace rprosa::analysis;
  namespace cs = rprosa::caesium;
  namespace df = rprosa::analysis::dataflow;

  const std::uint32_t N = 3;
  df::AnalysisOptions Opts;
  Opts.NumSockets = N;
  df::WitnessOptions WOpts;
  WOpts.NumSockets = N;

  ClientConfig C;
  C.Tasks.addTask("hi", 600 * TickNs, 2,
                  std::make_shared<PeriodicCurve>(10 * TickUs));
  C.Tasks.addTask("lo", 1500 * TickNs, 1,
                  std::make_shared<LeakyBucketCurve>(2, 25 * TickUs));
  C.NumSockets = N;
  C.Wcets = BasicActionWcets::typicalDeployment();

  WorkloadSpec Spec;
  Spec.NumSockets = N;
  Spec.Horizon = 200 * TickUs;
  Spec.Style = WorkloadStyle::GreedyDense;
  ArrivalSequence Arr = generateWorkload(C.Tasks, Spec);
  RunLimits Limits;
  Limits.Horizon = 400 * TickUs;

  bool Ok = true;
  TableWriter T({"program", "intervals", "refinement", "expected",
                 "generic-run trap", "verdict"});

  for (const Mutant &Mu : witnessMutantCorpus(N)) {
    WitnessRow R;
    R.Name = Mu.Name;
    R.ExpectedCheckId = Mu.ExpectedCheckId;
    R.Expected = Mu.ExpectedRefinement;

    Cfg G = buildCfg(Mu.Program);
    std::vector<df::Finding> Fs = df::analyzeValueRanges(G, Opts).Findings;
    bool StaticMay = false;
    for (const df::Finding &F : Fs)
      StaticMay |= F.CheckId == Mu.ExpectedCheckId &&
                   F.Sev == df::Severity::Warning;
    df::refineFindings(G, Fs, WOpts);
    for (const df::Finding &F : Fs)
      if (F.CheckId == Mu.ExpectedCheckId && F.Refined) {
        R.Refinement = toString(F.Refined->St);
        R.Agrees = R.Refinement == R.Expected;
        if (R.Refinement == "confirmed")
          R.Agrees &= F.Refined->TrapCheckId == F.CheckId &&
                      F.Sev == df::Severity::Error;
        if (R.Refinement == "infeasible")
          R.Agrees &= F.Sev == df::Severity::Note;
      }

    // The suppressed mutants must also be trap-free on an actual run —
    // the machine is the judge the zone proof answers to.
    Environment Env(Arr);
    CostModel Costs(C.Wcets, CostModelKind::AlwaysWcet, 1);
    cs::CaesiumMachine M(C, Env, Costs);
    M.run(Mu.Program, Limits);
    R.RuntimeTrapped = M.trap().has_value();
    if (R.Expected == "infeasible")
      Ok &= !R.RuntimeTrapped;

    T.addRow({R.Name, StaticMay ? "May" : "MISSED", R.Refinement,
              R.Expected,
              R.RuntimeTrapped ? M.trap()->checkId() : "none",
              StaticMay && R.Agrees ? "decided" : "WRONG"});
    Ok &= StaticMay && R.Agrees;
    Rows.push_back(R);
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("the interval column alone would leave every row a May; "
              "the witness layer replays the real ones to their traps "
              "and kills the artifacts with zone proofs — no row stays "
              "undecided.\n\n");
  return Ok;
}

} // namespace

int main() {
  std::printf("=== E15: implementation bugs vs the trace checkers "
              "(§1.1) ===\n\n");

  ClientConfig C;
  C.Tasks.addTask("hi", 600 * TickNs, 2,
                  std::make_shared<PeriodicCurve>(10 * TickUs));
  C.Tasks.addTask("lo", 1500 * TickNs, 1,
                  std::make_shared<LeakyBucketCurve>(2, 25 * TickUs));
  C.NumSockets = 3;
  C.Wcets = BasicActionWcets::typicalDeployment();

  WorkloadSpec Spec;
  Spec.NumSockets = 3;
  Spec.Horizon = 200 * TickUs;
  Spec.Style = WorkloadStyle::GreedyDense;
  ArrivalSequence Arr = generateWorkload(C.Tasks, Spec);
  RunLimits Limits;
  Limits.Horizon = 400 * TickUs;

  TableWriter T({"scheduler", "protocol", "functional (Def 3.2)",
                 "specs (§3.1)", "consistency (Def 2.1)", "WCET (§2.3)",
                 "verdict"});

  // The correct implementation first.
  bool Ok = true;
  {
    Environment Env(Arr);
    CostModel Costs(C.Wcets, CostModelKind::AlwaysWcet, 1);
    FdScheduler Sched(C, Env, Costs);
    CheckOutcome O = runChecks(Sched.run(Limits), C, Arr);
    T.addRow({"correct Rössl", mark(O.Protocol), mark(O.Functional),
              mark(O.Specs), mark(O.Consistency), mark(O.Wcet),
              O.anyFailed() ? "FALSE ALARM" : "clean"});
    Ok &= !O.anyFailed();
  }

  for (SchedulerBug Bug :
       {SchedulerBug::EarlyPollingExit, SchedulerBug::PriorityInversion,
        SchedulerBug::SkipCompletionMarker, SchedulerBug::DoubleDispatch,
        SchedulerBug::IgnoreLastSocket, SchedulerBug::OversleepIdling}) {
    Environment Env(Arr);
    CostModel Costs(C.Wcets, CostModelKind::AlwaysWcet, 1);
    FaultyScheduler Sched(C, Env, Costs, Bug);
    CheckOutcome O = runChecks(Sched.run(Limits), C, Arr);
    bool Caught = O.anyFailed();
    T.addRow({toString(Bug), mark(O.Protocol), mark(O.Functional),
              mark(O.Specs), mark(O.Consistency), mark(O.Wcet),
              Caught ? "caught" : "ESCAPED"});
    Ok &= Caught;
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("paper analogue: the RefinedC-proved invariants exclude "
              "exactly these bug classes; a variant that escaped every "
              "checker would make the verification vacuous.\n\n");

  std::printf("--- static analyzer vs runtime monitor (embedded mutation "
              "corpus) ---\n\n");
  std::vector<MutantRow> Rows;
  bool CorrectClean = false;
  Ok &= runMutantComparison(Rows, CorrectClean);

  std::printf("--- value-range analysis vs runtime traps ---\n\n");
  std::vector<RangeRow> Ranges;
  Ok &= runValueRangeComparison(Ranges);

  std::printf("--- witness refinement vs corpus ground truth ---\n\n");
  std::vector<WitnessRow> Witnesses;
  Ok &= runWitnessComparison(Witnesses);

  writeJson(Rows, Ranges, Witnesses, CorrectClean);

  if (!Ok) {
    std::printf("E15 FAILED\n");
    return 1;
  }
  std::printf("E15 reproduced: the correct scheduler is clean and every "
              "bug is caught, both at runtime and statically.\n");
  return 0;
}
