//===- bench/analysis_cost.cpp - Experiment E20: dataflow solver cost -----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost profile of the unified dataflow analyses (analysis/dataflow):
/// for N in {1, 2, 4, 8, 16} sockets, the embedded Rössl program is
/// lowered and each engine instance — value-range, definite-init,
/// dead-code, marker-discipline, and the composed runUnifiedAnalyses —
/// is timed (best of 5 repetitions), alongside the solver telemetry
/// the engine reports (node visits, convergence). A second table runs
/// the full mutation corpus (protocol + timing + value-range) through
/// runUnifiedAnalyses at one socket count to show per-program cost on
/// defective inputs. Emits BENCH_analysis_cost.json.
///
/// Exit 0 iff every solve converges, the embedded program stays
/// note-clean at every socket count, and every value-range mutant is
/// flagged — the lint gate's cost, demonstrated affordable.
///
//===----------------------------------------------------------------------===//

#include "analysis/dataflow/analyses.h"
#include "analysis/mutants.h"
#include "caesium/parser.h"
#include "caesium/rossl_program.h"
#include "support/check.h"
#include "support/table.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace rprosa;
using namespace rprosa::analysis;
using namespace rprosa::analysis::dataflow;
namespace cs = rprosa::caesium;

namespace {

constexpr int Reps = 5;

/// Best-of-Reps wall time of \p Fn, in microseconds.
template <class Fn> double timeUs(Fn &&F) {
  double Best = 0;
  for (int R = 0; R < Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    F();
    auto T1 = std::chrono::steady_clock::now();
    double Us = std::chrono::duration<double, std::micro>(T1 - T0).count();
    if (R == 0 || Us < Best)
      Best = Us;
  }
  return Best;
}

/// One socket count's profile over the embedded program.
struct SocketCost {
  std::uint32_t NumSockets = 0;
  std::size_t CfgNodes = 0;
  std::uint64_t RangeVisits = 0; ///< Value-range transfer applications.
  bool RangeConverged = false;
  std::size_t Findings = 0; ///< Unified findings (embedded: notes only).
  Severity MaxSev = Severity::Note;
  double RangeUs = 0;
  double InitUs = 0;
  double DeadUs = 0;
  double MarkerUs = 0;
  double UnifiedUs = 0;
};

/// One generated-spec size's profile (the scaling probe).
struct ScaleCost {
  std::size_t Loops = 0;
  std::size_t CfgNodes = 0;
  std::uint64_t RangeVisits = 0;
  bool Converged = false;
  std::size_t Findings = 0;
  double UnifiedUs = 0;
};

/// A generated large spec: \p Loops sequential bounded counter loops
/// cycling through the 8 machine registers — every loop is a widening
/// point for the interval solver, so node count and loop count grow
/// together.
std::string syntheticSpec(std::size_t Loops) {
  std::string Src;
  for (std::size_t I = 0; I < Loops; ++I) {
    std::string R = "r" + std::to_string(I % 8);
    Src += R + " = 0;\n";
    Src += "while ((" + R + " < 10)) { " + R + " = (" + R + " + 1); }\n";
  }
  return Src;
}

ScaleCost profileSynthetic(std::size_t Loops) {
  ScaleCost Out;
  Out.Loops = Loops;

  cs::AstArena Arena;
  auto Parsed = cs::parseProgram(Arena, syntheticSpec(Loops));
  RPROSA_CHECK(Parsed.has_value(), "synthetic spec must parse");
  Cfg G = buildCfg(*Parsed);
  Out.CfgNodes = G.size();

  AnalysisOptions Opts;
  ValueRangeResult VR = analyzeValueRanges(G, Opts);
  Out.RangeVisits = VR.NodeVisits;
  Out.Converged = VR.Converged;
  Out.Findings = runUnifiedAnalyses(G, Opts).size();
  Out.UnifiedUs = timeUs([&] { runUnifiedAnalyses(G, Opts); });
  return Out;
}

/// One corpus program's cost under the full unified run.
struct CorpusCost {
  std::string Name;
  std::size_t Findings = 0;
  bool RangeFlagged = false; ///< Expected check-id present (range corpus).
  bool Expected = false;     ///< Row participates in the range gate.
  double UnifiedUs = 0;
};

SocketCost profile(std::uint32_t N) {
  SocketCost Out;
  Out.NumSockets = N;

  AnalysisOptions Opts;
  Opts.NumSockets = N;
  Cfg G = buildCfg(cs::buildRosslProgram(N));
  Out.CfgNodes = G.size();

  ValueRangeResult VR = analyzeValueRanges(G, Opts);
  Out.RangeVisits = VR.NodeVisits;
  Out.RangeConverged = VR.Converged;

  std::vector<Finding> Unified = runUnifiedAnalyses(G, Opts);
  Out.Findings = Unified.size();
  Out.MaxSev = maxSeverity(Unified);

  Out.RangeUs = timeUs([&] { analyzeValueRanges(G, Opts); });
  Out.InitUs = timeUs([&] { analyzeDefiniteInit(G); });
  Out.DeadUs = timeUs([&] { analyzeDeadCode(G, Opts); });
  Out.MarkerUs = timeUs([&] { analyzeMarkerDiscipline(G); });
  Out.UnifiedUs = timeUs([&] { runUnifiedAnalyses(G, Opts); });
  return Out;
}

std::string fmtUs(double Us) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", Us);
  return Buf;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S)
    if (C == '"' || C == '\\')
      Out += std::string("\\") + C;
    else
      Out += C;
  return Out;
}

void writeJson(const std::vector<SocketCost> &Sweeps,
               const std::vector<CorpusCost> &Corpus,
               const std::vector<ScaleCost> &Scales, bool Ok) {
  std::FILE *F = std::fopen("BENCH_analysis_cost.json", "w");
  if (!F) {
    std::printf("(could not write BENCH_analysis_cost.json)\n");
    return;
  }
  std::fprintf(F, "{\n  \"experiment\": \"E20-analysis-cost\",\n");
  std::fprintf(F, "  \"passed\": %s,\n", Ok ? "true" : "false");
  std::fprintf(F, "  \"sockets\": [\n");
  for (std::size_t I = 0; I < Sweeps.size(); ++I) {
    const SocketCost &S = Sweeps[I];
    std::fprintf(F,
                 "    {\"sockets\": %u, \"cfg_nodes\": %zu, "
                 "\"range_node_visits\": %llu, \"range_converged\": %s, "
                 "\"findings\": %zu, \"max_severity\": \"%s\", "
                 "\"range_us\": %.1f, \"definite_init_us\": %.1f, "
                 "\"dead_code_us\": %.1f, \"marker_us\": %.1f, "
                 "\"unified_us\": %.1f}%s\n",
                 S.NumSockets, S.CfgNodes,
                 static_cast<unsigned long long>(S.RangeVisits),
                 S.RangeConverged ? "true" : "false", S.Findings,
                 toString(S.MaxSev), S.RangeUs, S.InitUs, S.DeadUs,
                 S.MarkerUs, S.UnifiedUs,
                 I + 1 < Sweeps.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"corpus\": [\n");
  for (std::size_t I = 0; I < Corpus.size(); ++I) {
    const CorpusCost &C = Corpus[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"findings\": %zu, "
                 "\"unified_us\": %.1f}%s\n",
                 jsonEscape(C.Name).c_str(), C.Findings, C.UnifiedUs,
                 I + 1 < Corpus.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"generated_specs\": [\n");
  for (std::size_t I = 0; I < Scales.size(); ++I) {
    const ScaleCost &S = Scales[I];
    std::fprintf(F,
                 "    {\"loops\": %zu, \"cfg_nodes\": %zu, "
                 "\"range_node_visits\": %llu, \"range_converged\": %s, "
                 "\"findings\": %zu, \"unified_us\": %.1f}%s\n",
                 S.Loops, S.CfgNodes,
                 static_cast<unsigned long long>(S.RangeVisits),
                 S.Converged ? "true" : "false", S.Findings, S.UnifiedUs,
                 I + 1 < Scales.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote BENCH_analysis_cost.json\n");
}

} // namespace

int main() {
  std::printf("=== E20: cost of the unified dataflow analyses ===\n\n");

  bool Ok = true;
  std::vector<SocketCost> Sweeps;
  for (std::uint32_t N : {1u, 2u, 4u, 8u, 16u})
    Sweeps.push_back(profile(N));

  TableWriter T({"sockets", "cfg nodes", "range visits", "converged",
                 "findings", "max sev", "range us", "init us", "dead us",
                 "marker us", "unified us"});
  for (const SocketCost &S : Sweeps) {
    T.addRow({std::to_string(S.NumSockets), std::to_string(S.CfgNodes),
              std::to_string(S.RangeVisits),
              S.RangeConverged ? "yes" : "NO",
              std::to_string(S.Findings), toString(S.MaxSev),
              fmtUs(S.RangeUs), fmtUs(S.InitUs), fmtUs(S.DeadUs),
              fmtUs(S.MarkerUs), fmtUs(S.UnifiedUs)});
    // The gate: the fixpoint must converge and the embedded program
    // must stay below the lint gate's threshold at every width.
    Ok &= S.RangeConverged && S.MaxSev == Severity::Note;
  }
  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("times are best-of-%d wall clock; 'range visits' counts "
              "transfer applications of the interval solver, the "
              "engine's machine-independent work metric.\n\n", Reps);

  std::printf("--- unified run over the mutation corpus (3 sockets) "
              "---\n\n");
  const std::uint32_t CorpusN = 3;
  AnalysisOptions Opts;
  Opts.NumSockets = CorpusN;
  std::vector<CorpusCost> Corpus;
  std::vector<Mutant> All = protocolMutantCorpus(CorpusN);
  for (Mutant &M : timingMutantCorpus(CorpusN))
    All.push_back(std::move(M));
  for (Mutant &M : valueRangeMutantCorpus(CorpusN))
    All.push_back(std::move(M));

  TableWriter CT({"program", "findings", "expected check-id", "flagged",
                  "unified us"});
  for (const Mutant &Mu : All) {
    CorpusCost Row;
    Row.Name = Mu.Name;
    Cfg G = buildCfg(Mu.Program);
    std::vector<Finding> Fs = runUnifiedAnalyses(G, Opts);
    Row.Findings = Fs.size();
    Row.Expected = !Mu.ExpectedCheckId.empty();
    for (const Finding &F : Fs)
      Row.RangeFlagged |= F.CheckId == Mu.ExpectedCheckId;
    Row.UnifiedUs = timeUs([&] { runUnifiedAnalyses(G, Opts); });
    CT.addRow({Row.Name, std::to_string(Row.Findings),
               Row.Expected ? Mu.ExpectedCheckId : "-",
               Row.Expected ? (Row.RangeFlagged ? "yes" : "MISSED") : "-",
               fmtUs(Row.UnifiedUs)});
    // Every value-range mutant must surface its expected check-id even
    // inside the composed run.
    Ok &= !Row.Expected || Row.RangeFlagged;
    Corpus.push_back(Row);
  }
  std::printf("%s\n", CT.renderAscii().c_str());

  std::printf("--- generated large specs (sequential counter loops) "
              "---\n\n");
  std::vector<ScaleCost> Scales;
  TableWriter ST({"loops", "cfg nodes", "range visits", "converged",
                  "findings", "unified us"});
  for (std::size_t Loops : {64u, 256u, 1024u}) {
    ScaleCost S = profileSynthetic(Loops);
    ST.addRow({std::to_string(S.Loops), std::to_string(S.CfgNodes),
               std::to_string(S.RangeVisits),
               S.Converged ? "yes" : "NO", std::to_string(S.Findings),
               fmtUs(S.UnifiedUs)});
    // The generated specs are clean by construction (every register
    // initialised, every loop bounded and varying): any finding at all
    // is a false positive, and divergence would make the gate useless
    // on large inputs.
    Ok &= S.Converged && S.Findings == 0;
    Scales.push_back(S);
  }
  std::printf("%s\n", ST.renderAscii().c_str());

  writeJson(Sweeps, Corpus, Scales, Ok);
  if (!Ok) {
    std::printf("E20 FAILED: a solve diverged, the embedded program "
                "tripped the lint gate, or a value-range mutant "
                "escaped\n");
    return 1;
  }
  std::printf("E20 reproduced: the unified analyses converge at every "
              "socket width in microseconds, the embedded program is "
              "note-clean, and every value-range mutant is flagged.\n");
  return 0;
}
