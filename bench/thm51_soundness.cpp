//===- bench/thm51_soundness.cpp - Experiment E3: Theorem 5.1 -------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The headline reproduction: Theorem 5.1 (timing correctness) states
/// that for every job of task τ_i whose deadline t_arr + R_i + J_i lies
/// within the horizon, the M_Completion marker appears by that deadline.
/// The paper proves this in Rocq; this harness validates it empirically
/// across a randomized sweep of systems (socket counts × workload
/// styles × cost models × seeds) and reports, per configuration:
///
///   jobs checked, violations (must be 0), and the tightness of the
///   bound (max observed response / bound, closer to 1 = tighter).
///
/// Exit code 1 on any violation or failed assumption/invariant check.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "adequacy/report.h"
#include "analysis/timing/segment_costs.h"
#include "caesium/rossl_program.h"
#include "sim/workload.h"
#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace rprosa;

namespace {

TaskSet makeTasks(std::uint64_t Variant) {
  TaskSet TS;
  switch (Variant % 3) {
  case 0:
    TS.addTask("ctrl", 600 * TickNs, 3,
               std::make_shared<PeriodicCurve>(15 * TickUs),
               /*Deadline=*/15 * TickUs);
    TS.addTask("sense", 400 * TickNs, 2,
               std::make_shared<LeakyBucketCurve>(3, 25 * TickUs),
               /*Deadline=*/40 * TickUs);
    TS.addTask("log", 1200 * TickNs, 1,
               std::make_shared<PeriodicCurve>(60 * TickUs),
               /*Deadline=*/90 * TickUs);
    break;
  case 1:
    TS.addTask("hi", 300 * TickNs, 2,
               std::make_shared<PeriodicCurve>(8 * TickUs),
               /*Deadline=*/10 * TickUs);
    TS.addTask("lo", 2000 * TickNs, 1,
               std::make_shared<PeriodicCurve>(40 * TickUs),
               /*Deadline=*/60 * TickUs);
    break;
  case 2:
    TS.addTask("a", 500 * TickNs, 4,
               std::make_shared<PeriodicCurve>(20 * TickUs),
               /*Deadline=*/20 * TickUs);
    TS.addTask("b", 500 * TickNs, 3,
               std::make_shared<PeriodicCurve>(20 * TickUs),
               /*Deadline=*/30 * TickUs);
    TS.addTask("c", 900 * TickNs, 2,
               std::make_shared<LeakyBucketCurve>(2, 60 * TickUs),
               /*Deadline=*/80 * TickUs);
    TS.addTask("d", 1500 * TickNs, 1,
               std::make_shared<PeriodicCurve>(120 * TickUs),
               /*Deadline=*/150 * TickUs);
    break;
  }
  return TS;
}

const char *styleName(WorkloadStyle S) {
  switch (S) {
  case WorkloadStyle::Random:
    return "random";
  case WorkloadStyle::GreedyDense:
    return "dense";
  case WorkloadStyle::Sparse:
    return "sparse";
  }
  return "?";
}

/// The end-to-end "derived inputs" section: the WCET tables feeding the
/// §4 RTA come from the static segment-cost pass (analysis/timing) over
/// the embedded scheduler instead of being hand-supplied. With zero
/// instruction costs the derived table must coincide with the hand
/// table (the native scheduler folds non-marker work into its
/// basic-action WCETs); with unit instruction costs the derived table
/// is strictly more conservative — Thm. 5.1 must hold either way.
bool runStaticInputsSection() {
  using namespace rprosa::analysis;
  std::printf("--- Thm. 5.1 from statically derived timing inputs "
              "(analysis/timing -> §4 RTA) ---\n\n");

  bool Ok = true;
  TableWriter T({"sockets", "instr model", "wcets vs hand", "rta source",
                 "jobs", "in-horizon", "violations", "worst obs/bound"});

  for (std::uint32_t Socks : {1u, 2u, 4u}) {
    for (bool UnitInstr : {false, true}) {
      AdequacySpec Spec;
      Spec.Client.Tasks = makeTasks(0);
      Spec.Client.NumSockets = Socks;
      Spec.Client.Policy = SchedPolicy::Npfp;
      Spec.Client.Wcets = BasicActionWcets::typicalDeployment();
      WorkloadSpec WSpec;
      WSpec.NumSockets = Socks;
      WSpec.Horizon = 400 * TickUs;
      WSpec.Seed = 7 + Socks;
      WSpec.Style = WorkloadStyle::GreedyDense;
      Spec.Arr = generateWorkload(Spec.Client.Tasks, WSpec);
      Spec.Seed = 7 + Socks;
      Spec.Limits.Horizon = 2 * TickMs;

      StaticCostParams P;
      P.Wcets = Spec.Client.Wcets;
      P.Instr = UnitInstr ? InstructionCosts::unit() : InstructionCosts{};
      for (const Task &Tk : Spec.Client.Tasks.tasks())
        P.MaxCallbackWcet = std::max(P.MaxCallbackWcet, Tk.Wcet);
      TimingResult R = analyzeTiming(
          buildCfg(caesium::buildRosslProgram(Socks)), P, Socks);
      if (!R.allBounded()) {
        std::printf("static pass UNBOUNDED at %u sockets\n", Socks);
        return false;
      }
      TimingInputs In = R.toRtaInputs(Spec.Client.Tasks,
                                      Spec.Client.Wcets);
      Spec.StaticTiming = In;

      // Zero instruction costs must reproduce the hand table exactly;
      // unit costs must only ever grow it.
      BasicActionWcets H = Spec.Client.Wcets, D = In.Wcets;
      bool Eq = D.FailedRead == H.FailedRead &&
                D.SuccessfulRead == H.SuccessfulRead &&
                D.Selection == H.Selection && D.Dispatch == H.Dispatch &&
                D.Completion == H.Completion && D.Idling == H.Idling;
      bool Geq = D.FailedRead >= H.FailedRead &&
                 D.SuccessfulRead >= H.SuccessfulRead &&
                 D.Selection >= H.Selection && D.Dispatch >= H.Dispatch &&
                 D.Completion >= H.Completion && D.Idling >= H.Idling;
      Ok &= UnitInstr ? Geq : Eq;

      AdequacyReport Rep = runAdequacy(Spec);
      bool Sound = Rep.assumptionsHold() && Rep.invariantsHold() &&
                   Rep.conclusionHolds();
      Ok &= Sound && Rep.Rta.Source == TimingSource::StaticAnalysis;
      if (!Sound)
        std::printf("UNSOUND CONFIG (derived inputs):\n%s\n",
                    Rep.summary().c_str());

      std::uint64_t InHorizon = 0, Violations = 0;
      double WorstRatio = 0;
      for (const JobVerdict &V : Rep.Jobs) {
        InHorizon += V.WithinHorizon;
        Violations += !V.Holds;
        if (V.Completed && V.Bound != TimeInfinity && V.Bound > 0)
          WorstRatio = std::max(WorstRatio,
                                double(V.ResponseTime) / double(V.Bound));
      }
      Ok &= Violations == 0;
      char Ratio[32];
      std::snprintf(Ratio, sizeof(Ratio), "%.2f", WorstRatio);
      T.addRow({std::to_string(Socks), UnitInstr ? "unit" : "zero",
                UnitInstr ? (Geq ? ">= hand (sound)" : "BELOW HAND")
                          : (Eq ? "== hand" : "MISMATCH"),
                toString(Rep.Rta.Source), std::to_string(Rep.Jobs.size()),
                std::to_string(InHorizon), std::to_string(Violations),
                Ratio});
    }
  }
  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("the 'static-analysis' rows run the identical pipeline "
              "with every overhead WCET and callback WCET derived by "
              "the segment-cost pass — Thm. 5.1 end to end without a "
              "hand-supplied timing table.\n\n");
  return Ok;
}

} // namespace

int main() {
  std::printf("=== E3: empirical validation of Theorem 5.1 (timing "
              "correctness) ===\n\n");

  TableWriter T({"policy", "tasks", "sockets", "style", "cost", "jobs",
                 "in-horizon", "violations", "worst obs/bound", "checks"});

  std::uint64_t TotalJobs = 0, TotalInHorizon = 0, TotalViolations = 0;
  std::uint64_t TotalChecks = 0;
  bool AllSound = true;

  std::uint64_t Variant = 0;
  for (SchedPolicy Policy :
       {SchedPolicy::Npfp, SchedPolicy::Edf, SchedPolicy::Fifo}) {
  for (std::uint32_t Socks : {1u, 2u, 4u}) {
    for (WorkloadStyle Style :
         {WorkloadStyle::Random, WorkloadStyle::GreedyDense}) {
      for (CostModelKind Cost :
           {CostModelKind::AlwaysWcet, CostModelKind::Uniform}) {
        if (Policy != SchedPolicy::Npfp &&
            (Cost == CostModelKind::Uniform ||
             Style == WorkloadStyle::Random))
          continue; // The extension policies sweep the dense/WCET grid.
        ++Variant;
        AdequacySpec Spec;
        Spec.Client.Tasks = makeTasks(Variant);
        Spec.Client.NumSockets = Socks;
        Spec.Client.Policy = Policy;
        Spec.Client.Wcets = BasicActionWcets::typicalDeployment();
        WorkloadSpec WSpec;
        WSpec.NumSockets = Socks;
        WSpec.Horizon = 400 * TickUs;
        WSpec.Seed = Variant;
        WSpec.Style = Style;
        Spec.Arr = generateWorkload(Spec.Client.Tasks, WSpec);
        Spec.Cost = Cost;
        Spec.Seed = Variant;
        Spec.Limits.Horizon = 2 * TickMs;

        AdequacyReport Rep = runAdequacy(Spec);
        bool Sound = Rep.assumptionsHold() && Rep.invariantsHold() &&
                     Rep.conclusionHolds();
        AllSound &= Sound;
        if (!Sound)
          std::printf("UNSOUND CONFIG:\n%s\n", Rep.summary().c_str());

        std::uint64_t InHorizon = 0, Violations = 0;
        double WorstRatio = 0;
        for (const JobVerdict &V : Rep.Jobs) {
          InHorizon += V.WithinHorizon;
          Violations += !V.Holds;
          if (V.Completed && V.Bound != TimeInfinity && V.Bound > 0)
            WorstRatio = std::max(
                WorstRatio, double(V.ResponseTime) / double(V.Bound));
        }
        char Ratio[32];
        std::snprintf(Ratio, sizeof(Ratio), "%.2f", WorstRatio);
        T.addRow({toString(Policy),
                  std::to_string(Spec.Client.Tasks.size()),
                  std::to_string(Socks), styleName(Style),
                  toString(Cost), std::to_string(Rep.Jobs.size()),
                  std::to_string(InHorizon), std::to_string(Violations),
                  Ratio, formatWithCommas(Rep.totalChecks())});
        TotalJobs += Rep.Jobs.size();
        TotalInHorizon += InHorizon;
        TotalViolations += Violations;
        TotalChecks += Rep.totalChecks();
      }
    }
  }
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("total: %llu jobs, %llu with in-horizon deadlines, %llu "
              "violations, %s elementary checks\n",
              (unsigned long long)TotalJobs,
              (unsigned long long)TotalInHorizon,
              (unsigned long long)TotalViolations,
              formatWithCommas(TotalChecks).c_str());
  std::printf("paper expectation: 0 violations (Thm. 5.1 is proved); a "
              "worst obs/bound ratio near 1 under always-WCET dense "
              "load shows the bound is not vacuous.\n");

  std::printf("\n");
  AllSound &= runStaticInputsSection();

  if (!AllSound || TotalViolations != 0) {
    std::printf("E3 FAILED\n");
    return 1;
  }
  std::printf("E3 reproduced: Theorem 5.1 held on every run, including "
              "the runs whose timing inputs were statically derived.\n");
  return 0;
}
