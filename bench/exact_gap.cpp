//===- bench/exact_gap.cpp - Experiment E23: exact vs sufficient gap ------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How much schedulability does the sufficient busy-window RTA leave on
/// the table? Generates random task sets across execution-utilization
/// buckets (small periods, so the bounded-horizon SAG job sets stay
/// tractable) and runs both verdicts on every set:
///
///  - the sufficient test: analyzeNpfp + meetsDeadlines (bounds and
///    response <= deadline for every task), and
///  - the exact test: sag/explore's merged schedule-abstraction graph
///    with replay-confirmed counterexamples.
///
/// Reported per bucket: both acceptance ratios and the gap (sets the
/// exact test proves schedulable that the RTA rejects — RTA
/// pessimism made visible). A deterministic aligned-release pair
/// rides along: both tasks release together, so the higher-priority
/// task never suffers the blocking the RTA must budget for — the gap
/// in its purest form, asserted every run.
///
/// Self-checking gates:
///  - soundness: no set is RTA-schedulable yet replay-confirmed
///    unschedulable by the exact test;
///  - every Unschedulable verdict carries a replay-confirmed witness;
///  - a serial re-run of a sub-grid renders byte-identical JSON to the
///    threaded run (the E18 determinism discipline);
///  - the gap is nonzero on at least one curve (the aligned pair
///    guarantees a witness even on unlucky random draws).
///
/// Emits BENCH_exact_gap.json (acceptance curves + state/merge/replay
/// telemetry). `--smoke` (or RPROSA_BENCH_SMOKE=1) shrinks the grid.
///
//===----------------------------------------------------------------------===//

#include "rta/rta_npfp.h"
#include "sag/explore.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/table.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace rprosa;

namespace {

/// Tiny ns-scale WCETs (the tests' table): keeps machine overheads
/// visible but small against the µs-scale periods below.
BasicActionWcets tinyWcets() {
  BasicActionWcets W;
  W.FailedRead = 4;
  W.SuccessfulRead = 10;
  W.Selection = 3;
  W.Dispatch = 2;
  W.Completion = 5;
  W.Idling = 8;
  return W;
}

/// A random implicit-deadline set at total utilization ~= U: 2-4
/// periodic tasks, periods 2-8µs (the 10µs SAG horizon then admits a
/// handful of jobs per task).
TaskSet randomTaskSet(double U, SplitMix64 &Rng) {
  TaskSet TS;
  std::size_t N = 2 + Rng.nextInRange(0, 2);
  std::vector<double> Shares(N);
  double Sum = 0;
  for (double &S : Shares) {
    S = 1 + double(Rng.nextInRange(0, 1000)) / 1000.0;
    Sum += S;
  }
  for (std::size_t I = 0; I < N; ++I) {
    Duration Period = (2 + Rng.nextInRange(0, 6)) * TickUs;
    Duration Wcet = std::max<Duration>(
        1, static_cast<Duration>(double(Period) * U * Shares[I] / Sum));
    TS.addTask("t" + std::to_string(I), Wcet,
               static_cast<Priority>(N - I),
               std::make_shared<PeriodicCurve>(Period),
               /*Deadline=*/Period);
  }
  return TS;
}

/// The deterministic gap witness: both tasks release together every
/// period, so the high-priority task is dispatched first and never
/// blocked — but the RTA's non-preemptive blocking term must still
/// budget a full lower-priority WCET, pushing its bound past the tight
/// deadline.
TaskSet alignedReleasePair() {
  TaskSet TS;
  TS.addTask("hi", /*Wcet=*/1000, /*Prio=*/2,
             std::make_shared<PeriodicCurve>(4000), /*Deadline=*/1500);
  TS.addTask("lo", /*Wcet=*/800, /*Prio=*/1,
             std::make_shared<PeriodicCurve>(4000), /*Deadline=*/4000);
  return TS;
}

struct BucketRow {
  double Util = 0;
  std::uint32_t Sockets = 1;
  int Sets = 0;
  int RtaAccepts = 0;
  int ExactAccepts = 0;
  int Unknowns = 0;
  int Gap = 0; ///< Exact-accepted, RTA-rejected.
};

} // namespace

int main(int argc, char **argv) {
  bool Smoke = envFlag("RPROSA_BENCH_SMOKE");
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;

  std::printf("=== E23: exact (SAG) vs sufficient (RTA) schedulability "
              "gap ===\n\n");

  BasicActionWcets W = tinyWcets();
  const int SetsPerBucket = Smoke ? 3 : 12;
  const double Utils[] = {0.4, 0.6, 0.8, 1.0, 1.2};
  const std::uint32_t Sockets[] = {1, 2};

  SagConfig Cfg;
  Cfg.Threads = threadsFromArgs(argc, argv);

  bool Ok = true;
  std::vector<BucketRow> Rows;
  SagStats Tot;
  int GapTotal = 0;

  // A sub-grid re-run serially must render byte-identical JSON; collect
  // the threaded renders of the first few sets as the reference.
  std::vector<std::pair<TaskSet, std::uint32_t>> EquivGrid;
  std::vector<std::string> EquivJson;

  for (std::uint32_t S : Sockets) {
    for (double U : Utils) {
      BucketRow Row;
      Row.Util = U;
      Row.Sockets = S;
      SplitMix64 Rng(2300 + static_cast<std::uint64_t>(U * 10) * 8 + S);
      for (int K = 0; K < SetsPerBucket; ++K) {
        TaskSet TS = randomTaskSet(U, Rng);
        RtaResult Rta = analyzeNpfp(TS, W, S);
        bool RtaOk = meetsDeadlines(Rta, TS);
        SagResult R = analyzeExact(TS, W, S, SchedPolicy::Npfp, Cfg);

        ++Row.Sets;
        Row.RtaAccepts += RtaOk;
        Row.ExactAccepts += R.Verdict == SagVerdict::Schedulable;
        Row.Unknowns += R.Verdict == SagVerdict::Unknown;
        Row.Gap += R.Verdict == SagVerdict::Schedulable && !RtaOk;

        Tot.States += R.Stats.States;
        Tot.Edges += R.Stats.Edges;
        Tot.Merges += R.Stats.Merges;
        Tot.Candidates += R.Stats.Candidates;
        Tot.Replays += R.Stats.Replays;
        Tot.ReplaysConfirmed += R.Stats.ReplaysConfirmed;

        // Soundness: the sufficient verdict is a guarantee; a replay-
        // confirmed miss against it would mean one analysis is wrong.
        if (RtaOk && R.Verdict == SagVerdict::Unschedulable) {
          std::printf("E23 SOUNDNESS VIOLATION: u=%.1f s=%u set %d is "
                      "RTA-schedulable but replay-confirmed "
                      "unschedulable\n",
                      U, S, K);
          Ok = false;
        }
        // The replay gate: Unschedulable only with a confirmed witness.
        if (R.Verdict == SagVerdict::Unschedulable &&
            (!R.Witness || !R.Witness->ChecksPassed ||
             R.Stats.ReplaysConfirmed == 0)) {
          std::printf("E23 FAILED: unconfirmed Unschedulable verdict\n");
          Ok = false;
        }

        if (EquivGrid.size() < 4) {
          EquivGrid.emplace_back(TS, S);
          EquivJson.push_back(sagResultJson(R));
        }
      }
      GapTotal += Row.Gap;
      Rows.push_back(Row);
    }
  }

  // The aligned-release pair: exact must accept, the RTA must not.
  TaskSet Pair = alignedReleasePair();
  bool PairRta = meetsDeadlines(analyzeNpfp(Pair, W, 1), Pair);
  SagResult PairExact = analyzeExact(Pair, W, 1, SchedPolicy::Npfp, Cfg);
  bool PairGap =
      PairExact.Verdict == SagVerdict::Schedulable && !PairRta;
  GapTotal += PairGap;
  std::printf("aligned-release pair: exact %s, RTA %s -> %s\n\n",
              toString(PairExact.Verdict).c_str(),
              PairRta ? "schedulable" : "rejects",
              PairGap ? "gap witnessed" : "NO GAP");
  Ok &= PairGap;

  TableWriter T({"utilization", "sockets", "rta accepts", "exact accepts",
                 "unknown", "gap"});
  for (const BucketRow &R : Rows) {
    auto Pct = [&](int X) {
      return formatRatio(100ull * std::uint64_t(X), R.Sets) + "%";
    };
    T.addRow({formatRatio(std::uint64_t(R.Util * 100), 100),
              std::to_string(R.Sockets), Pct(R.RtaAccepts),
              Pct(R.ExactAccepts), std::to_string(R.Unknowns),
              std::to_string(R.Gap)});
    // Soundness in ratio form: exact never accepts less than the RTA.
    Ok &= R.ExactAccepts >= R.RtaAccepts;
  }
  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("explored %zu state(s), %zu edge(s), %zu merge(s); %zu "
              "miss candidate(s), %zu replay(s), %zu confirmed\n",
              Tot.States, Tot.Edges, Tot.Merges, Tot.Candidates,
              Tot.Replays, Tot.ReplaysConfirmed);
  std::printf("gap total: %d set(s) the exact test proves schedulable "
              "that the sufficient RTA rejects\n\n",
              GapTotal);
  Ok &= GapTotal > 0;

  // Determinism: the serial re-run of the sub-grid renders the same
  // bytes as the (possibly threaded) first run.
  SagConfig SerialCfg = Cfg;
  SerialCfg.Threads = 1;
  bool Equiv = true;
  for (std::size_t I = 0; I < EquivGrid.size(); ++I) {
    std::string Re = sagResultJson(
        analyzeExact(EquivGrid[I].first, W, EquivGrid[I].second,
                     SchedPolicy::Npfp, SerialCfg));
    Equiv &= Re == EquivJson[I];
  }
  std::printf("serial re-run of %zu sub-grid set(s): %s\n", EquivGrid.size(),
              Equiv ? "byte-identical" : "MISMATCH");
  Ok &= Equiv;

  std::FILE *F = std::fopen("BENCH_exact_gap.json", "w");
  if (!F) {
    std::printf("(could not write BENCH_exact_gap.json)\n");
  } else {
    std::fprintf(F, "{\n  \"experiment\": \"E23-exact-gap\",\n");
    std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
    std::fprintf(F, "  \"buckets\": [\n");
    for (std::size_t I = 0; I < Rows.size(); ++I) {
      const BucketRow &R = Rows[I];
      std::fprintf(F,
                   "    {\"utilization\": %.1f, \"sockets\": %u, "
                   "\"sets\": %d, \"rta_accepts\": %d, "
                   "\"exact_accepts\": %d, \"unknown\": %d, "
                   "\"gap\": %d}%s\n",
                   R.Util, R.Sockets, R.Sets, R.RtaAccepts,
                   R.ExactAccepts, R.Unknowns, R.Gap,
                   I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(F, "  ],\n");
    std::fprintf(F,
                 "  \"aligned_pair_gap\": %s,\n  \"gap_total\": %d,\n",
                 PairGap ? "true" : "false", GapTotal);
    std::fprintf(F,
                 "  \"telemetry\": {\"states\": %zu, \"edges\": %zu, "
                 "\"merges\": %zu, \"candidates\": %zu, \"replays\": "
                 "%zu, \"replays_confirmed\": %zu}\n}\n",
                 Tot.States, Tot.Edges, Tot.Merges, Tot.Candidates,
                 Tot.Replays, Tot.ReplaysConfirmed);
    std::fclose(F);
    std::printf("wrote BENCH_exact_gap.json\n");
  }

  if (!Ok) {
    std::printf("E23 FAILED\n");
    return 1;
  }
  std::printf("E23 reproduced: the exact test dominates the sufficient "
              "one everywhere, every miss verdict is replay-confirmed, "
              "and the pessimism gap is nonzero.\n");
  return 0;
}
