//===- bench/acceptance_ratio.cpp - Experiment E16: acceptance ratios -----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic schedulability-study presentation of the real-time
/// literature (the Prosa/aRSA papers evaluate analyses this way):
/// generate random task sets at a target execution utilization, and
/// plot the fraction each analysis accepts (bounds every task). Here:
///
///  - the overhead-aware RefinedProsa analysis on 1/4/16 sockets, and
///  - the overhead-oblivious naive analysis (whose acceptances are not
///    guarantees — see E6).
///
/// Expected shape: the naive curve stays high until utilization ~1;
/// the aware curves fall earlier, and earlier still with more sockets —
/// the schedulability *cost* of running an interrupt-free scheduler on
/// many inputs, made visible. Sanity-checked: the aware analysis never
/// accepts a set the naive one rejects (its supply is never better).
///
//===----------------------------------------------------------------------===//

#include "rta/rta_npfp.h"
#include "support/rng.h"
#include "support/table.h"

#include <cstdio>
#include <memory>

using namespace rprosa;

namespace {

/// A random task set with total execution utilization ~= U (UUniFast-
/// style split into 3-5 tasks, periods log-spread 10µs..160µs).
TaskSet randomTaskSet(double U, SplitMix64 &Rng) {
  TaskSet TS;
  std::size_t N = Rng.nextInRange(3, 5);
  // Split U into N shares (randomized proportions).
  std::vector<double> Shares(N);
  double Sum = 0;
  for (double &S : Shares) {
    S = 1 + double(Rng.nextInRange(0, 1000)) / 1000.0;
    Sum += S;
  }
  for (std::size_t I = 0; I < N; ++I) {
    double Ui = U * Shares[I] / Sum;
    Duration Period = (10u << Rng.nextInRange(0, 4)) * TickUs;
    Duration Wcet = std::max<Duration>(
        1, static_cast<Duration>(double(Period) * Ui));
    TS.addTask("t" + std::to_string(I), Wcet,
               static_cast<Priority>(N - I),
               std::make_shared<PeriodicCurve>(Period));
  }
  return TS;
}

} // namespace

int main() {
  std::printf("=== E16: acceptance ratio vs execution utilization "
              "(schedulability study) ===\n\n");

  BasicActionWcets W = BasicActionWcets::typicalDeployment();
  const int SetsPerBucket = 40;

  TableWriter T({"utilization", "naive", "aware s=1", "aware s=4",
                 "aware s=16"});
  bool DominanceOk = true;
  for (int Bucket = 1; Bucket <= 9; ++Bucket) {
    double U = Bucket / 10.0;
    SplitMix64 Rng(1000 + Bucket);
    int Naive = 0, S1 = 0, S4 = 0, S16 = 0;
    for (int K = 0; K < SetsPerBucket; ++K) {
      TaskSet TS = randomTaskSet(U, Rng);
      RtaConfig Cfg;
      Cfg.FixedPointCap = 1 * TickSec;
      RtaConfig NaiveCfg = Cfg;
      NaiveCfg.AccountOverheads = false;
      bool N = analyzeNpfp(TS, W, 1, NaiveCfg).allBounded();
      bool A1 = analyzeNpfp(TS, W, 1, Cfg).allBounded();
      bool A4 = analyzeNpfp(TS, W, 4, Cfg).allBounded();
      bool A16 = analyzeNpfp(TS, W, 16, Cfg).allBounded();
      Naive += N;
      S1 += A1;
      S4 += A4;
      S16 += A16;
      // Monotonicity sanity: aware ⊆ naive, more sockets ⊆ fewer.
      DominanceOk &= (!A1 || N) && (!A4 || A1) && (!A16 || A4);
    }
    auto Pct = [&](int X) {
      return formatRatio(100ull * std::uint64_t(X), SetsPerBucket) + "%";
    };
    T.addRow({formatRatio(std::uint64_t(U * 100), 100), Pct(Naive),
              Pct(S1), Pct(S4), Pct(S16)});
  }
  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("expected shape: acceptance falls with utilization; the "
              "overhead-aware curves fall earlier than the naive one "
              "and earlier still with more sockets; acceptance is "
              "monotone (aware@16 implies aware@4 implies aware@1 "
              "implies naive).\n");
  if (!DominanceOk) {
    std::printf("E16 FAILED: acceptance monotonicity violated\n");
    return 1;
  }
  std::printf("E16 reproduced.\n");
  return 0;
}
