//===- bench/acceptance_ratio.cpp - Experiment E16: acceptance ratios -----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic schedulability-study presentation of the real-time
/// literature (the Prosa/aRSA papers evaluate analyses this way):
/// generate random task sets at a target execution utilization, and
/// plot the fraction each analysis accepts (bounds every task). Here:
///
///  - the overhead-aware RefinedProsa analysis on 1/4/16 sockets, and
///  - the overhead-oblivious naive analysis (whose acceptances are not
///    guarantees — see E6).
///
/// Expected shape: the naive curve stays high until utilization ~1;
/// the aware curves fall earlier, and earlier still with more sockets —
/// the schedulability *cost* of running an interrupt-free scheduler on
/// many inputs, made visible. Sanity-checked: the aware analysis never
/// accepts a set the naive one rejects (its supply is never better).
///
/// Generation is serial and seeded (reproducible grids); the 4 × sets ×
/// buckets analysis points then go through SweepRunner as one batch.
/// Verdicts are index-addressed, so the table is identical under
/// --serial. RPROSA_BENCH_SMOKE=1 shrinks the per-bucket sample.
///
//===----------------------------------------------------------------------===//

#include "rta/sweep.h"
#include "support/rng.h"
#include "support/table.h"

#include <cstdio>
#include <memory>

using namespace rprosa;

namespace {

/// A random task set with total execution utilization ~= U (UUniFast-
/// style split into 3-5 tasks, periods log-spread 10µs..160µs).
TaskSet randomTaskSet(double U, SplitMix64 &Rng) {
  TaskSet TS;
  std::size_t N = Rng.nextInRange(3, 5);
  // Split U into N shares (randomized proportions).
  std::vector<double> Shares(N);
  double Sum = 0;
  for (double &S : Shares) {
    S = 1 + double(Rng.nextInRange(0, 1000)) / 1000.0;
    Sum += S;
  }
  for (std::size_t I = 0; I < N; ++I) {
    double Ui = U * Shares[I] / Sum;
    Duration Period = (10u << Rng.nextInRange(0, 4)) * TickUs;
    Duration Wcet = std::max<Duration>(
        1, static_cast<Duration>(double(Period) * Ui));
    TS.addTask("t" + std::to_string(I), Wcet,
               static_cast<Priority>(N - I),
               std::make_shared<PeriodicCurve>(Period));
  }
  return TS;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("=== E16: acceptance ratio vs execution utilization "
              "(schedulability study) ===\n\n");

  BasicActionWcets W = BasicActionWcets::typicalDeployment();
  const int SetsPerBucket = envFlag("RPROSA_BENCH_SMOKE") ? 6 : 40;
  const int NumBuckets = 9;

  // Per generated set, four analysis points: naive, aware@1/4/16.
  RtaConfig Cfg;
  Cfg.FixedPointCap = 1 * TickSec;
  RtaConfig NaiveCfg = Cfg;
  NaiveCfg.AccountOverheads = false;
  std::vector<SweepPoint> Points;
  Points.reserve(std::size_t(NumBuckets) * SetsPerBucket * 4);
  for (int Bucket = 1; Bucket <= NumBuckets; ++Bucket) {
    double U = Bucket / 10.0;
    SplitMix64 Rng(1000 + Bucket);
    for (int K = 0; K < SetsPerBucket; ++K) {
      TaskSet TS = randomTaskSet(U, Rng);
      struct Variant {
        const RtaConfig *C;
        std::uint32_t Socks;
      };
      const Variant Variants[] = {
          {&NaiveCfg, 1}, {&Cfg, 1}, {&Cfg, 4}, {&Cfg, 16}};
      for (const Variant &V : Variants) {
        SweepPoint P;
        P.Tasks = TS;
        P.Cfg = *V.C;
        P.Sbf.Wcets = W;
        P.Sbf.NumSockets = V.Socks;
        Points.push_back(std::move(P));
      }
    }
  }

  SweepOptions Opts;
  Opts.Threads = threadsFromArgs(argc, argv);
  Opts.ChunkSize = chunkFromArgs(argc, argv);
  SweepRunner Runner(Opts);
  std::vector<char> Ok = Runner.runSchedulable(Points);

  TableWriter T({"utilization", "naive", "aware s=1", "aware s=4",
                 "aware s=16"});
  bool DominanceOk = true;
  std::size_t Next = 0;
  for (int Bucket = 1; Bucket <= NumBuckets; ++Bucket) {
    double U = Bucket / 10.0;
    int Naive = 0, S1 = 0, S4 = 0, S16 = 0;
    for (int K = 0; K < SetsPerBucket; ++K) {
      bool N = Ok[Next++];
      bool A1 = Ok[Next++];
      bool A4 = Ok[Next++];
      bool A16 = Ok[Next++];
      Naive += N;
      S1 += A1;
      S4 += A4;
      S16 += A16;
      // Monotonicity sanity: aware ⊆ naive, more sockets ⊆ fewer.
      DominanceOk &= (!A1 || N) && (!A4 || A1) && (!A16 || A4);
    }
    auto Pct = [&](int X) {
      return formatRatio(100ull * std::uint64_t(X), SetsPerBucket) + "%";
    };
    T.addRow({formatRatio(std::uint64_t(U * 100), 100), Pct(Naive),
              Pct(S1), Pct(S4), Pct(S16)});
  }
  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("expected shape: acceptance falls with utilization; the "
              "overhead-aware curves fall earlier than the naive one "
              "and earlier still with more sockets; acceptance is "
              "monotone (aware@16 implies aware@4 implies aware@1 "
              "implies naive).\n");
  if (!DominanceOk) {
    std::printf("E16 FAILED: acceptance monotonicity violated\n");
    return 1;
  }
  std::printf("E16 reproduced.\n");
  return 0;
}
