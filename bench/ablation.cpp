//===- bench/ablation.cpp - Experiment E14: analysis design ablations -----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the cost of the analysis's conservative design choices
/// (DESIGN.md §3) by recomputing the bounds with individual choices
/// ablated:
///
///   full         the shipped analysis;
///   blocking-1   classic B_i = max lp C_k − 1 (sound, slightly
///                tighter);
///   no-carry-in  drop the +1 carry-in job per task from the blackout
///                bound (tighter, but forfeits part of the soundness
///                derivation — kept only as an ablation);
///   no-overheads the naive analysis (unsound, from experiment E6).
///
/// Each variant is also validated against a dense worst-case run so the
/// table shows where tightness starts costing soundness.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "sim/workload.h"
#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace rprosa;

namespace {

struct Variant {
  const char *Name;
  RtaConfig Cfg;
  const char *SoundnessClaim;
};

} // namespace

int main() {
  std::printf("=== E14: ablations of the analysis's design choices "
              "===\n\n");

  TaskSet TS;
  TaskId Hi = TS.addTask("hi", 600 * TickNs, 3,
                         std::make_shared<PeriodicCurve>(12 * TickUs));
  TS.addTask("mid", 1200 * TickNs, 2,
             std::make_shared<LeakyBucketCurve>(2, 30 * TickUs));
  TS.addTask("lo", 2500 * TickNs, 1,
             std::make_shared<PeriodicCurve>(60 * TickUs));
  BasicActionWcets W = BasicActionWcets::typicalDeployment();
  std::uint32_t Socks = 4;

  // One dense worst-case run to validate each variant against.
  ClientConfig Client;
  Client.Tasks = TS;
  Client.NumSockets = Socks;
  Client.Wcets = W;
  WorkloadSpec Spec;
  Spec.NumSockets = Socks;
  Spec.Horizon = 300 * TickUs;
  Spec.Style = WorkloadStyle::GreedyDense;
  AdequacySpec ASpec;
  ASpec.Client = Client;
  ASpec.Arr = generateWorkload(TS, Spec);
  ASpec.Limits.Horizon = 2 * TickMs;
  AdequacyReport Rep = runAdequacy(ASpec);

  std::vector<Variant> Variants;
  Variants.push_back({"full", {}, "sound (derivation in sbf.h)"});
  {
    RtaConfig C;
    C.BlockingMinusOne = true;
    Variants.push_back({"blocking-1", C, "sound (classic argument)"});
  }
  {
    RtaConfig C;
    C.AblateCarryIn = true;
    Variants.push_back({"no-carry-in", C, "NOT justified (ablation)"});
  }
  {
    RtaConfig C;
    C.AccountOverheads = false;
    Variants.push_back({"no-overheads", C, "UNSOUND (see E6)"});
  }

  TableWriter T({"variant", "bound (hi)", "vs full", "violations on "
                 "the run", "soundness"});
  Duration FullBound = 0;
  bool Ok = true;
  for (const Variant &V : Variants) {
    RtaResult R = analyzeNpfp(TS, W, Socks, V.Cfg);
    Duration Bound =
        R.forTask(Hi).Bounded ? R.forTask(Hi).ResponseBound : TimeInfinity;
    if (std::string(V.Name) == "full")
      FullBound = Bound;

    std::uint64_t Violations = 0;
    for (const JobVerdict &Verdict : Rep.Jobs) {
      if (!Verdict.Completed || Verdict.Task >= R.PerTask.size())
        continue;
      const TaskRta &TB = R.forTask(Verdict.Task);
      if (TB.Bounded && Verdict.ResponseTime > TB.ResponseBound)
        ++Violations;
    }
    T.addRow({V.Name,
              Bound == TimeInfinity ? "unbounded" : formatTicksAsNs(Bound),
              Bound == TimeInfinity || FullBound == 0
                  ? "-"
                  : formatRatio(100 * Bound, FullBound) + "%",
              std::to_string(Violations), V.SoundnessClaim});

    // The shipped variants must not be violated by this run.
    if ((std::string(V.Name) == "full" ||
         std::string(V.Name) == "blocking-1") &&
        Violations != 0)
      Ok = false;
    // The naive variant must be violated (it is the E6 contrast).
    if (std::string(V.Name) == "no-overheads" && Violations == 0)
      Ok = false;
  }
  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("reading: each conservative choice costs a few percent of "
              "tightness; dropping overhead accounting entirely is what "
              "breaks soundness.\n");
  if (!Ok) {
    std::printf("E14 FAILED\n");
    return 1;
  }
  std::printf("E14 reproduced.\n");
  return 0;
}
