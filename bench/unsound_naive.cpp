//===- bench/unsound_naive.cpp - Experiment E6: the naive RTA is unsound --===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's motivation (§1.1): timing analyses whose
/// system model ignores how the implementation actually behaves can be
/// refuted by the implementation (Deos overhead accounting; the ROS2
/// executor RTAs refuted by Teper et al.). Here the "refutable analysis"
/// is the *overhead-oblivious* NPFP RTA (ideal supply, zero jitter) —
/// exactly what one gets by applying a textbook analysis to Rössl while
/// ignoring §2.4's overhead states.
///
/// The harness runs bursty dense workloads and reports, per
/// configuration, how many observed response times exceed the naive
/// bound (expected: many) and the RefinedProsa bound (required: none).
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "sim/workload.h"
#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace rprosa;

int main() {
  std::printf("=== E6: overhead-oblivious analysis refuted, "
              "overhead-aware analysis sound (§1.1) ===\n\n");

  TableWriter T({"sockets", "burst", "jobs", "naive bound (hi)",
                 "aware bound (hi)", "worst observed (hi)",
                 "naive violations", "aware violations"});

  std::uint64_t NaiveViolationsTotal = 0, AwareViolationsTotal = 0;
  for (std::uint32_t Socks : {2u, 4u, 8u}) {
    for (std::uint64_t Burst : {2ull, 4ull}) {
      ClientConfig Client;
      TaskId Hi = Client.Tasks.addTask(
          "hi", 500 * TickNs, 2,
          std::make_shared<LeakyBucketCurve>(Burst, 20 * TickUs));
      Client.Tasks.addTask("lo", 2 * TickUs, 1,
                           std::make_shared<PeriodicCurve>(25 * TickUs));
      Client.NumSockets = Socks;
      Client.Wcets = BasicActionWcets::typicalDeployment();

      WorkloadSpec Spec;
      Spec.NumSockets = Socks;
      Spec.Horizon = 400 * TickUs;
      Spec.Style = WorkloadStyle::GreedyDense;
      Spec.Seed = Socks * 10 + Burst;
      ArrivalSequence Arr = generateWorkload(Client.Tasks, Spec);

      // The two analyses.
      RtaConfig AwareCfg;
      RtaResult Aware = analyzeNpfp(Client.Tasks, Client.Wcets, Socks,
                                    AwareCfg);
      RtaConfig NaiveCfg;
      NaiveCfg.AccountOverheads = false;
      RtaResult Naive = analyzeNpfp(Client.Tasks, Client.Wcets, Socks,
                                    NaiveCfg);

      // One always-WCET run.
      AdequacySpec ASpec;
      ASpec.Client = Client;
      ASpec.Arr = Arr;
      ASpec.Limits.Horizon = 2 * TickMs;
      AdequacyReport Rep = runAdequacy(ASpec);

      std::uint64_t NaiveViolations = 0, AwareViolations = 0;
      Duration WorstHi = 0;
      for (const JobVerdict &V : Rep.Jobs) {
        if (!V.Completed)
          continue;
        const TaskRta &NB = Naive.forTask(V.Task);
        const TaskRta &AB = Aware.forTask(V.Task);
        if (NB.Bounded && V.ResponseTime > NB.ResponseBound)
          ++NaiveViolations;
        if (AB.Bounded && V.ResponseTime > AB.ResponseBound)
          ++AwareViolations;
        if (V.Task == Hi)
          WorstHi = std::max(WorstHi, V.ResponseTime);
      }
      NaiveViolationsTotal += NaiveViolations;
      AwareViolationsTotal += AwareViolations;

      T.addRow({std::to_string(Socks), std::to_string(Burst),
                std::to_string(Rep.Jobs.size()),
                formatTicksAsNs(Naive.forTask(Hi).ResponseBound),
                formatTicksAsNs(Aware.forTask(Hi).ResponseBound),
                formatTicksAsNs(WorstHi),
                std::to_string(NaiveViolations),
                std::to_string(AwareViolations)});
    }
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("naive-bound violations (expected > 0: the analysis is "
              "refuted by the implementation): %llu\n",
              (unsigned long long)NaiveViolationsTotal);
  std::printf("overhead-aware violations (required = 0, Thm. 5.1): "
              "%llu\n",
              (unsigned long long)AwareViolationsTotal);
  std::printf("\npaper expectation: accounting for overheads is what "
              "separates a sound bound from a refutable one — the same "
              "failure mode as the refuted ROS2 executor analyses.\n");

  if (NaiveViolationsTotal == 0 || AwareViolationsTotal != 0) {
    std::printf("E6 FAILED\n");
    return 1;
  }
  std::printf("E6 reproduced.\n");
  return 0;
}
