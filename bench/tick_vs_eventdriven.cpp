//===- bench/tick_vs_eventdriven.cpp - Experiment E8: ProKOS contrast -----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the related-work contrast of §6: ProKOS verifies a
/// *tick-based* (preemptive, quantum-driven) scheduler where overheads
/// are "a fixed percentage of the time between two ticks"; RefinedProsa
/// verifies an *interrupt-free* scheduler with fine-grained per-job
/// overhead accounting. The harness runs the same workload through both
/// systems and their respective analyses and reports bounds and
/// observations side by side.
///
/// The expected shape: for short callbacks the tick-based system pays
/// the quantum granularity (bounds quantized to multiples of Q, plus a
/// quantum of release latency), while the interrupt-free system pays
/// per-job polling/selection/dispatch overheads but reacts at µs scale.
/// Both must be sound for their own runs.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "baseline/tick_rta.h"
#include "baseline/tick_scheduler.h"
#include "sim/workload.h"
#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace rprosa;

int main() {
  std::printf("=== E8: interrupt-free (RefinedProsa/Rössl) vs "
              "tick-based (ProKOS-style) ===\n\n");

  TaskSet TS;
  TS.addTask("fast", 300 * TickUs, 3,
             std::make_shared<PeriodicCurve>(10 * TickMs));
  TS.addTask("mid", 1200 * TickUs, 2,
             std::make_shared<PeriodicCurve>(25 * TickMs));
  TS.addTask("slow", 4 * TickMs, 1,
             std::make_shared<PeriodicCurve>(80 * TickMs));

  WorkloadSpec Spec;
  Spec.NumSockets = 2;
  Spec.Horizon = 500 * TickMs;
  Spec.Style = WorkloadStyle::GreedyDense;
  ArrivalSequence Arr = generateWorkload(TS, Spec);
  Time Horizon = 1 * TickSec;

  // --- Interrupt-free: Rössl + RefinedProsa analysis. ---
  ClientConfig Client;
  Client.Tasks = TS;
  Client.NumSockets = 2;
  Client.Wcets = BasicActionWcets::typicalDeployment();
  AdequacySpec ASpec;
  ASpec.Client = Client;
  ASpec.Arr = Arr;
  ASpec.Limits.Horizon = Horizon;
  AdequacyReport Rossl = runAdequacy(ASpec);

  // --- Tick-based: quantum scheduler + quantum RTA. ---
  TickConfig Tick;
  Tick.Quantum = 1 * TickMs;             // 1ms timer tick.
  Tick.OverheadPerQuantum = 50 * TickUs; // 5% of the quantum (ProKOS
                                         // fixed-percentage model).
  TickRunResult TickRun = runTickScheduler(TS, Arr, Horizon, Tick);
  RtaResult TickRta = analyzeTick(TS, Tick);

  // Collect per-task worst observations.
  std::vector<Duration> RosslWorst(TS.size(), 0), TickWorst(TS.size(), 0);
  std::uint64_t RosslViolations = 0, TickViolations = 0;
  for (const JobVerdict &V : Rossl.Jobs) {
    if (V.Completed)
      RosslWorst[V.Task] = std::max(RosslWorst[V.Task], V.ResponseTime);
    RosslViolations += !V.Holds;
  }
  for (const TickJobResult &J : TickRun.Jobs) {
    const TaskRta &B = TickRta.forTask(J.Task);
    if (J.Completed)
      TickWorst[J.Task] = std::max(TickWorst[J.Task],
                                   J.CompletedAt - J.ArrivalAt);
    if (B.Bounded && J.ArrivalAt + B.ResponseBound < Horizon &&
        (!J.Completed || J.CompletedAt - J.ArrivalAt > B.ResponseBound))
      ++TickViolations;
  }

  TableWriter T({"task", "C_i", "Rössl bound", "Rössl worst obs",
                 "tick bound", "tick worst obs"});
  for (const Task &Tk : TS.tasks()) {
    const TaskRta &RB = Rossl.Rta.forTask(Tk.Id);
    const TaskRta &TB = TickRta.forTask(Tk.Id);
    T.addRow({Tk.Name, formatTicksAsNs(Tk.Wcet),
              RB.Bounded ? formatTicksAsNs(RB.ResponseBound) : "unbounded",
              formatTicksAsNs(RosslWorst[Tk.Id]),
              TB.Bounded ? formatTicksAsNs(TB.ResponseBound) : "unbounded",
              formatTicksAsNs(TickWorst[Tk.Id])});
  }
  std::printf("%s\n", T.renderAscii().c_str());

  std::printf("violations: Rössl %llu, tick-based %llu (both must be "
              "0)\n\n",
              (unsigned long long)RosslViolations,
              (unsigned long long)TickViolations);

  // The structural contrast the paper draws.
  const TaskRta &FastRossl = Rossl.Rta.forTask(0);
  const TaskRta &FastTick = TickRta.forTask(0);
  std::printf("contrast on the short 'fast' callback (C = 300us):\n");
  std::printf("  tick-based bound %s is dominated by quantum "
              "granularity (Q = %s);\n",
              formatTicksAsNs(FastTick.ResponseBound).c_str(),
              formatTicksAsNs(Tick.Quantum).c_str());
  std::printf("  interrupt-free bound %s pays per-job overheads and "
              "non-preemptive blocking (B = %s) instead.\n",
              formatTicksAsNs(FastRossl.ResponseBound).c_str(),
              formatTicksAsNs(FastRossl.Blocking).c_str());

  bool Ok = RosslViolations == 0 && TickViolations == 0 &&
            Rossl.theoremHolds();
  if (!Ok) {
    std::printf("E8 FAILED\n");
    return 1;
  }
  std::printf("E8 reproduced: both systems sound under their own "
              "analyses, with the expected structural difference.\n");
  return 0;
}
