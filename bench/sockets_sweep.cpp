//===- bench/sockets_sweep.cpp - Experiment E7: overhead vs socket count --===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the structural consequence of §2.4's PB = |socks|·WcetFR:
/// polling overhead — and with it the response-time bound — grows
/// linearly in the number of input sockets, for the *same* workload.
/// The harness sweeps socket counts and reports the analytical bound,
/// the worst observed response, and the measured overhead share of the
/// timeline.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "sim/workload.h"
#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace rprosa;

int main() {
  std::printf("=== E7: polling overhead scales with the socket count "
              "(PB = |socks|·WcetFR) ===\n\n");

  TableWriter T({"sockets", "PB", "J", "bound (hi)", "worst observed "
                 "(hi)", "overhead share", "violations"});

  Duration PrevBound = 0;
  bool Monotone = true, Sound = true;
  for (std::uint32_t Socks : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    ClientConfig Client;
    TaskId Hi = Client.Tasks.addTask(
        "hi", 800 * TickNs, 2,
        std::make_shared<PeriodicCurve>(40 * TickUs));
    Client.Tasks.addTask("lo", 2 * TickUs, 1,
                         std::make_shared<PeriodicCurve>(80 * TickUs));
    Client.NumSockets = Socks;
    Client.Wcets = BasicActionWcets::typicalDeployment();

    // Same workload density regardless of the socket count: tasks pin
    // to sockets 0/1 (or 0/0 with one socket).
    std::vector<SocketId> Map = {0, Socks > 1 ? 1u : 0u};
    WorkloadSpec Spec;
    Spec.NumSockets = Socks;
    Spec.Horizon = 400 * TickUs;
    Spec.Style = WorkloadStyle::GreedyDense;
    ArrivalSequence Arr = generateWorkload(Client.Tasks, Map, Spec);

    AdequacySpec ASpec;
    ASpec.Client = Client;
    ASpec.Arr = Arr;
    ASpec.Limits.Horizon = 3 * TickMs;
    AdequacyReport Rep = runAdequacy(ASpec);
    Sound &= Rep.theoremHolds() && Rep.assumptionsHold();

    OverheadBounds B = OverheadBounds::compute(Client.Wcets, Socks);
    const TaskRta &TR = Rep.Rta.forTask(Hi);
    Duration Bound = TR.Bounded ? TR.ResponseBound : TimeInfinity;
    Monotone &= Bound >= PrevBound;
    PrevBound = Bound;

    Duration WorstHi = 0;
    std::uint64_t Violations = 0;
    for (const JobVerdict &V : Rep.Jobs) {
      if (V.Completed && V.Task == Hi)
        WorstHi = std::max(WorstHi, V.ResponseTime);
      Violations += !V.Holds;
    }
    Duration Overhead = Rep.Conv.Sched.blackoutIn(
        Rep.Conv.Sched.startTime(), Rep.Conv.Sched.endTime());
    T.addRow({std::to_string(Socks), formatTicksAsNs(B.PB),
              formatTicksAsNs(maxReleaseJitter(B)),
              Bound == TimeInfinity ? "unbounded"
                                    : formatTicksAsNs(Bound),
              formatTicksAsNs(WorstHi),
              formatRatio(100 * Overhead, Rep.Conv.Sched.length()) + "%",
              std::to_string(Violations)});
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("paper expectation: the bound grows monotonically with "
              "the socket count (each additional socket adds WcetFR per "
              "polling round) while remaining sound throughout.\n");
  if (!Monotone || !Sound) {
    std::printf("E7 FAILED\n");
    return 1;
  }
  std::printf("E7 reproduced.\n");
  return 0;
}
