//===- bench/sockets_sweep.cpp - Experiment E7: overhead vs socket count --===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the structural consequence of §2.4's PB = |socks|·WcetFR:
/// polling overhead — and with it the response-time bound — grows
/// linearly in the number of input sockets, for the *same* workload.
/// The harness sweeps socket counts and reports the analytical bound,
/// the worst observed response, and the measured overhead share of the
/// timeline.
///
/// The socket counts are independent points, so they run concurrently
/// on the sweep engine's thread pool; each point writes only its own
/// row slot and the table is rendered in input order afterwards, so the
/// output is identical to a run with --serial. RPROSA_BENCH_SMOKE=1
/// shrinks the grid and horizons (the CI smoke leg).
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "sim/workload.h"
#include "support/parallel.h"
#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace rprosa;

int main(int argc, char **argv) {
  std::printf("=== E7: polling overhead scales with the socket count "
              "(PB = |socks|·WcetFR) ===\n\n");

  bool Smoke = envFlag("RPROSA_BENCH_SMOKE");
  std::vector<std::uint32_t> SocketCounts =
      Smoke ? std::vector<std::uint32_t>{1, 2, 4}
            : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64};
  ThreadPool Pool(threadsFromArgs(argc, argv));
  std::size_t Chunk = chunkFromArgs(argc, argv);

  struct Row {
    Duration Bound = 0;
    Duration PB = 0;
    Duration Jitter = 0;
    Duration WorstHi = 0;
    std::uint64_t Violations = 0;
    Duration Overhead = 0;
    Duration Length = 0;
    bool Sound = false;
  };
  std::vector<Row> Rows(SocketCounts.size());

  Pool.parallelForChunked(SocketCounts.size(), Chunk, [&](std::size_t Idx) {
    std::uint32_t Socks = SocketCounts[Idx];
    ClientConfig Client;
    TaskId Hi = Client.Tasks.addTask(
        "hi", 800 * TickNs, 2,
        std::make_shared<PeriodicCurve>(40 * TickUs));
    Client.Tasks.addTask("lo", 2 * TickUs, 1,
                         std::make_shared<PeriodicCurve>(80 * TickUs));
    Client.NumSockets = Socks;
    Client.Wcets = BasicActionWcets::typicalDeployment();

    // Same workload density regardless of the socket count: tasks pin
    // to sockets 0/1 (or 0/0 with one socket).
    std::vector<SocketId> Map = {0, Socks > 1 ? 1u : 0u};
    WorkloadSpec Spec;
    Spec.NumSockets = Socks;
    Spec.Horizon = (Smoke ? 100 : 400) * TickUs;
    Spec.Style = WorkloadStyle::GreedyDense;
    ArrivalSequence Arr = generateWorkload(Client.Tasks, Map, Spec);

    AdequacySpec ASpec;
    ASpec.Client = Client;
    ASpec.Arr = Arr;
    ASpec.Limits.Horizon = (Smoke ? 1 : 3) * TickMs;
    AdequacyReport Rep = runAdequacy(ASpec);

    Row &R = Rows[Idx];
    R.Sound = Rep.theoremHolds() && Rep.assumptionsHold();

    OverheadBounds B = OverheadBounds::compute(Client.Wcets, Socks);
    R.PB = B.PB;
    R.Jitter = maxReleaseJitter(B);
    const TaskRta &TR = Rep.Rta.forTask(Hi);
    R.Bound = TR.Bounded ? TR.ResponseBound : TimeInfinity;

    for (const JobVerdict &V : Rep.Jobs) {
      if (V.Completed && V.Task == Hi)
        R.WorstHi = std::max(R.WorstHi, V.ResponseTime);
      R.Violations += !V.Holds;
    }
    R.Overhead = Rep.Conv.Sched.blackoutIn(Rep.Conv.Sched.startTime(),
                                           Rep.Conv.Sched.endTime());
    R.Length = Rep.Conv.Sched.length();
  });

  TableWriter T({"sockets", "PB", "J", "bound (hi)", "worst observed "
                 "(hi)", "overhead share", "violations"});
  Duration PrevBound = 0;
  bool Monotone = true, Sound = true;
  for (std::size_t Idx = 0; Idx < SocketCounts.size(); ++Idx) {
    const Row &R = Rows[Idx];
    Sound &= R.Sound;
    Monotone &= R.Bound >= PrevBound;
    PrevBound = R.Bound;
    T.addRow({std::to_string(SocketCounts[Idx]), formatTicksAsNs(R.PB),
              formatTicksAsNs(R.Jitter),
              R.Bound == TimeInfinity ? "unbounded"
                                      : formatTicksAsNs(R.Bound),
              formatTicksAsNs(R.WorstHi),
              formatRatio(100 * R.Overhead, R.Length) + "%",
              std::to_string(R.Violations)});
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("paper expectation: the bound grows monotonically with "
              "the socket count (each additional socket adds WcetFR per "
              "polling round) while remaining sound throughout.\n");
  if (!Monotone || !Sound) {
    std::printf("E7 FAILED\n");
    return 1;
  }
  std::printf("E7 reproduced.\n");
  return 0;
}
