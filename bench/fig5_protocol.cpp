//===- bench/fig5_protocol.cpp - Experiment E2: the scheduler protocol ----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the role of Fig. 5 / Def. 3.1-3.2: the paper *proves* (via
/// RefinedC) that every trace of Rössl satisfies the scheduler protocol
/// and functional correctness. The executable counterpart fuzzes many
/// runs (socket counts × seeds × cost models) and checks that
///
///  - every generated trace is accepted by the protocol STS and the
///    functional checks (0 rejections expected), and
///  - every *mutated* trace (marker swaps, forged jobs, dropped
///    markers) is rejected by at least one checker (the checks are not
///    vacuous).
///
//===----------------------------------------------------------------------===//

#include "rossl/scheduler.h"
#include "sim/environment.h"
#include "sim/workload.h"
#include "support/rng.h"
#include "support/table.h"
#include "trace/functional.h"
#include "trace/protocol.h"

#include <cstdio>
#include <memory>

using namespace rprosa;

namespace {

TaskSet makeTasks() {
  TaskSet TS;
  TS.addTask("a", 500 * TickNs, 3,
             std::make_shared<PeriodicCurve>(20 * TickUs));
  TS.addTask("b", 900 * TickNs, 2,
             std::make_shared<LeakyBucketCurve>(2, 50 * TickUs));
  TS.addTask("c", 1500 * TickNs, 1,
             std::make_shared<PeriodicCurve>(80 * TickUs));
  return TS;
}

/// Applies one random mutation; returns false if the trace was too
/// short to mutate.
bool mutateTrace(Trace &Tr, SplitMix64 &Rng) {
  if (Tr.size() < 8)
    return false;
  std::size_t I = Rng.nextInRange(0, Tr.size() - 2);
  switch (Rng.nextInRange(0, 3)) {
  case 0: // Swap two adjacent markers.
    std::swap(Tr[I], Tr[I + 1]);
    return true;
  case 1: // Drop a marker.
    Tr.erase(Tr.begin() + I);
    return true;
  case 2: // Duplicate a marker.
    Tr.insert(Tr.begin() + I, Tr[I]);
    return true;
  case 3: // Forge the job of a job-carrying marker.
    for (std::size_t K = I; K < Tr.size(); ++K) {
      if (Tr[K].J) {
        Tr[K].J->Id += 1000000;
        return true;
      }
    }
    return false;
  }
  return false;
}

} // namespace

int main() {
  std::printf("=== E2: scheduler protocol + functional correctness "
              "(Fig. 5, Defs. 3.1/3.2) ===\n\n");

  TaskSet TS = makeTasks();
  BasicActionWcets W = BasicActionWcets::typicalDeployment();

  std::uint64_t Accepted = 0, Runs = 0, TotalMarkers = 0;
  std::uint64_t MutantsRejected = 0, Mutants = 0;
  SplitMix64 Rng(7);

  TableWriter T({"sockets", "cost model", "runs", "markers",
                 "protocol+functional accepted"});
  for (std::uint32_t Socks : {1u, 2u, 4u, 8u}) {
    for (CostModelKind Cost : {CostModelKind::AlwaysWcet,
                               CostModelKind::Uniform,
                               CostModelKind::HalfWcet}) {
      std::uint64_t LocalRuns = 0, LocalOk = 0, LocalMarkers = 0;
      for (std::uint64_t Seed = 1; Seed <= 5; ++Seed) {
        ClientConfig C;
        C.Tasks = TS;
        C.NumSockets = Socks;
        C.Wcets = W;
        WorkloadSpec Spec;
        Spec.NumSockets = Socks;
        Spec.Horizon = 300 * TickUs;
        Spec.Seed = Seed;
        Spec.Style = Seed % 2 ? WorkloadStyle::Random
                              : WorkloadStyle::GreedyDense;
        ArrivalSequence Arr = generateWorkload(TS, Spec);
        Environment Env(Arr);
        CostModel Costs(W, Cost, Seed);
        FdScheduler Sched(C, Env, Costs);
        RunLimits Limits;
        Limits.Horizon = 500 * TickUs;
        TimedTrace TT = Sched.run(Limits);

        bool Ok = checkProtocol(TT.Tr, Socks).passed() &&
                  checkFunctionalCorrectness(TT.Tr, TS).passed();
        ++LocalRuns;
        LocalOk += Ok;
        LocalMarkers += TT.size();

        // Fuzz: mutants must be rejected.
        for (int M = 0; M < 10; ++M) {
          Trace Mutant = TT.Tr;
          if (!mutateTrace(Mutant, Rng))
            continue;
          ++Mutants;
          bool Rejected = !checkProtocol(Mutant, Socks).passed() ||
                          !checkFunctionalCorrectness(Mutant, TS).passed();
          MutantsRejected += Rejected;
        }
      }
      T.addRow({std::to_string(Socks), toString(Cost),
                std::to_string(LocalRuns),
                formatWithCommas(LocalMarkers),
                std::to_string(LocalOk) + "/" +
                    std::to_string(LocalRuns)});
      Runs += LocalRuns;
      Accepted += LocalOk;
      TotalMarkers += LocalMarkers;
    }
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("genuine traces accepted: %llu/%llu (paper: proved for "
              "all traces)\n",
              (unsigned long long)Accepted, (unsigned long long)Runs);
  std::printf("mutated traces rejected: %llu/%llu (checks are not "
              "vacuous)\n",
              (unsigned long long)MutantsRejected,
              (unsigned long long)Mutants);

  // A few mutations can be semantically invisible (e.g. swapping two
  // equal failed reads on the same socket); require a high kill rate
  // rather than 100%.
  bool KillRateOk = MutantsRejected * 10 >= Mutants * 9;
  if (Accepted != Runs || !KillRateOk) {
    std::printf("E2 FAILED\n");
    return 1;
  }
  std::printf("E2 reproduced: all genuine traces accepted, >=90%% of "
              "mutants rejected.\n");
  return 0;
}
