//===- bench/witness_cost.cpp - Experiment E22: witness refinement cost ---===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What does turning May findings into verdicts cost, and what does it
/// buy? Runs the witness layer (analysis/dataflow/witness.h) over the
/// witness and value-range mutation corpora and reports, per program:
/// the interval analysis time, the added refinement time (zone
/// fixpoint + bounded path search + in-process replay), the search
/// steps spent, and the verdict reached.
///
/// Self-checking gates (machine-independent, armed in smoke mode too):
///  - the unmutated Roessl program yields nothing to refine;
///  - every mutant reaches exactly its ExpectedRefinement verdict —
///    "confirmed" ones with a replay trap matching the finding's
///    check-id, "infeasible" ones suppressed by a zone proof;
///  - the false-positive kill rate equals the corpus ground truth
///    (every planted interval artifact is killed, nothing real is);
///  - refinement is deterministic: a second run spends byte-identical
///    search steps.
///
/// Emits BENCH_witness.json. `--smoke` (or RPROSA_BENCH_SMOKE=1)
/// shrinks the timing repetitions; timings are informational, the
/// gates above are what CI consumes.
///
//===----------------------------------------------------------------------===//

#include "analysis/cfg.h"
#include "analysis/dataflow/analyses.h"
#include "analysis/dataflow/witness.h"
#include "analysis/mutants.h"
#include "caesium/rossl_program.h"
#include "support/parallel.h"
#include "support/table.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace rprosa;

namespace {

namespace df = rprosa::analysis::dataflow;
using rprosa::analysis::Mutant;

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// One refined program of the cost table.
struct CostRow {
  std::string Name;
  std::string Corpus;   ///< "witness" or "value-range".
  std::string Expected; ///< ExpectedRefinement ("" = confirmed).
  std::string Actual;   ///< toString of the reached status.
  bool Agrees = false;
  std::uint64_t Steps = 0; ///< Path-search expansions (one run).
  double AnalyzeMs = 0;    ///< Interval analysis alone (mean).
  double RefineMs = 0;     ///< refineFindings on top of it (mean).
};

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S)
    if (C == '"' || C == '\\')
      Out += std::string("\\") + C;
    else
      Out += C;
  return Out;
}

void writeJson(const std::vector<CostRow> &Rows, const df::WitnessSummary &Tot,
               double KillRate, bool Smoke) {
  std::FILE *F = std::fopen("BENCH_witness.json", "w");
  if (!F) {
    std::printf("(could not write BENCH_witness.json)\n");
    return;
  }
  std::fprintf(F, "{\n  \"experiment\": \"E22-witness-cost\",\n");
  std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(F, "  \"programs\": [\n");
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    const CostRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"corpus\": \"%s\", "
                 "\"expected\": \"%s\", \"refinement\": \"%s\", "
                 "\"agrees\": %s, \"search_steps\": %llu, "
                 "\"analyze_ms\": %.3f, \"refine_ms\": %.3f}%s\n",
                 jsonEscape(R.Name).c_str(), R.Corpus.c_str(),
                 jsonEscape(R.Expected).c_str(), jsonEscape(R.Actual).c_str(),
                 R.Agrees ? "true" : "false",
                 static_cast<unsigned long long>(R.Steps), R.AnalyzeMs,
                 R.RefineMs, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"summary\": {\n");
  std::fprintf(F, "    \"attempted\": %zu,\n    \"confirmed\": %zu,\n",
               Tot.Attempted, Tot.Confirmed);
  std::fprintf(F, "    \"suppressed\": %zu,\n    \"unknown\": %zu,\n",
               Tot.Suppressed, Tot.Unknown);
  std::fprintf(F, "    \"search_steps\": %llu,\n",
               static_cast<unsigned long long>(Tot.Steps));
  std::fprintf(F, "    \"false_positive_kill_rate\": %.3f\n  }\n}\n",
               KillRate);
  std::fclose(F);
  std::printf("wrote BENCH_witness.json\n");
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = envFlag("RPROSA_BENCH_SMOKE");
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;
  const int Reps = Smoke ? 3 : 20;

  std::printf("=== E22: witness refinement — cost and kill rate ===\n\n");

  namespace cs = rprosa::caesium;
  using rprosa::analysis::buildCfg;

  const std::uint32_t N = 3;
  df::AnalysisOptions Opts;
  Opts.NumSockets = N;
  df::WitnessOptions WOpts;
  WOpts.NumSockets = N;

  bool Ok = true;

  // The unmutated program first: the refinement layer must have
  // nothing to do on it.
  {
    analysis::Cfg G = buildCfg(cs::buildRosslProgram(N));
    std::vector<df::Finding> Fs = df::analyzeValueRanges(G, Opts).Findings;
    df::WitnessSummary S = df::refineFindings(G, Fs, WOpts);
    std::printf("correct Roessl: %zu May finding(s) to refine "
                "(%llu search steps)\n\n",
                S.Attempted, static_cast<unsigned long long>(S.Steps));
    Ok &= S.Attempted == 0 && S.Steps == 0;
  }

  // Both May-producing corpora. The value-range mutants are real bugs
  // the intervals already catch (the refinement must confirm all of
  // them); the witness corpus splits into planted real bugs and
  // planted interval artifacts.
  struct Item {
    Mutant Mu;
    std::string Corpus;
    std::string Expected;
  };
  std::vector<Item> Items;
  for (const Mutant &Mu : rprosa::analysis::witnessMutantCorpus(N))
    Items.push_back({Mu, "witness", Mu.ExpectedRefinement});
  for (const Mutant &Mu : rprosa::analysis::valueRangeMutantCorpus(N))
    Items.push_back({Mu, "value-range", "confirmed"});

  std::vector<CostRow> Rows;
  df::WitnessSummary Tot;
  std::size_t PlantedFalse = 0;

  TableWriter T({"program", "corpus", "expected", "refinement", "steps",
                 "analyze ms", "refine ms", "verdict"});

  for (const Item &It : Items) {
    CostRow R;
    R.Name = It.Mu.Name;
    R.Corpus = It.Corpus;
    R.Expected = It.Expected;
    if (It.Expected == "infeasible")
      ++PlantedFalse;

    analysis::Cfg G = buildCfg(It.Mu.Program);

    for (int Rep = 0; Rep < Reps; ++Rep) {
      auto T0 = std::chrono::steady_clock::now();
      std::vector<df::Finding> Fs = df::analyzeValueRanges(G, Opts).Findings;
      double A = msSince(T0);
      auto T1 = std::chrono::steady_clock::now();
      df::WitnessSummary S = df::refineFindings(G, Fs, WOpts);
      double W = msSince(T1);
      R.AnalyzeMs += A / Reps;
      R.RefineMs += W / Reps;
      if (Rep == 0) {
        R.Steps = S.Steps;
        Tot.Attempted += S.Attempted;
        Tot.Confirmed += S.Confirmed;
        Tot.Suppressed += S.Suppressed;
        Tot.Unknown += S.Unknown;
        Tot.Steps += S.Steps;
        for (const df::Finding &F : Fs)
          if (F.CheckId == It.Mu.ExpectedCheckId && F.Refined) {
            R.Actual = toString(F.Refined->St);
            R.Agrees = R.Actual == It.Expected;
            // A confirmed verdict must be backed by a replay trap
            // carrying the finding's own check-id — the acceptance
            // criterion of the witness layer, re-checked here.
            if (R.Actual == "confirmed")
              R.Agrees &= F.Refined->TrapCheckId == F.CheckId &&
                          F.Sev == df::Severity::Error;
            if (R.Actual == "infeasible")
              R.Agrees &= F.Sev == df::Severity::Note;
          }
      } else {
        // Determinism gate: the search is a pure function of the CFG
        // and the options, so every repetition spends the same budget.
        Ok &= S.Steps == R.Steps;
      }
    }

    T.addRow({R.Name, R.Corpus, R.Expected, R.Actual,
              std::to_string(R.Steps),
              std::to_string(R.AnalyzeMs).substr(0, 5),
              std::to_string(R.RefineMs).substr(0, 5),
              R.Agrees ? "ok" : "WRONG"});
    Ok &= R.Agrees;
    Rows.push_back(R);
  }

  std::printf("%s\n", T.renderAscii().c_str());

  double KillRate =
      PlantedFalse == 0
          ? 1.0
          : static_cast<double>(Tot.Suppressed) / PlantedFalse;
  std::printf("attempted %zu, confirmed %zu, suppressed %zu, unknown %zu "
              "(%llu search steps total)\n",
              Tot.Attempted, Tot.Confirmed, Tot.Suppressed, Tot.Unknown,
              static_cast<unsigned long long>(Tot.Steps));
  std::printf("false-positive kill rate: %.0f%% (%zu planted interval "
              "artifact(s), %zu suppressed by zone proofs)\n\n",
              KillRate * 100.0, PlantedFalse, Tot.Suppressed);

  // The kill rate must be exact in both directions: every planted
  // artifact suppressed, nothing else.
  Ok &= Tot.Suppressed == PlantedFalse;
  Ok &= Tot.Unknown == 0;

  writeJson(Rows, Tot, KillRate, Smoke);

  if (!Ok) {
    std::printf("E22 FAILED\n");
    return 1;
  }
  std::printf("E22 reproduced: every May finding decided — real bugs "
              "replayed to traps, interval artifacts killed by zone "
              "proofs, at a bounded search cost.\n");
  return 0;
}
