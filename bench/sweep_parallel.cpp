//===- bench/sweep_parallel.cpp - Experiment E18: the sweep engine --------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates and measures the parallel sweep engine on the two
/// workloads it was built for:
///
///  1. the E7 sockets_sweep grid — full adequacy pipelines (simulate,
///     convert, verify, analyze) at each socket count — run once on one
///     thread and once on the full pool, timed, with every per-point
///     result compared field by field; and
///  2. an RTA-only SweepRunner grid whose canonical JSON rendering must
///     be *byte-identical* between the serial and parallel runs, and
///     between the memoized and unmemoized runs.
///
/// Emits BENCH_sweep_parallel.json with the wall-clock numbers. The
/// ≥ 2× speedup gate is enforced only when the pool actually has ≥ 4
/// threads (the determinism checks are unconditional). A second gate
/// protects the other end of the scale: on a tiny 3-point grid the
/// parallel run must stay within 5% of serial (≥ 0.95× speedup) — the
/// chunked dispatch with limited wakeups must not tax small batches.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "rta/sweep.h"
#include "sim/workload.h"
#include "support/rng.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

using namespace rprosa;

namespace {

/// One E7-style adequacy point: the full pipeline at one socket count.
struct AdequacyOutcome {
  Duration Bound = 0;
  Duration WorstHi = 0;
  std::uint64_t Violations = 0;
  bool Sound = false;

  bool operator==(const AdequacyOutcome &O) const {
    return Bound == O.Bound && WorstHi == O.WorstHi &&
           Violations == O.Violations && Sound == O.Sound;
  }
};

AdequacyOutcome runAdequacyPoint(std::uint32_t Socks, Duration Horizon) {
  ClientConfig Client;
  TaskId Hi = Client.Tasks.addTask(
      "hi", 800 * TickNs, 2, std::make_shared<PeriodicCurve>(40 * TickUs));
  Client.Tasks.addTask("lo", 2 * TickUs, 1,
                       std::make_shared<PeriodicCurve>(80 * TickUs));
  Client.NumSockets = Socks;
  Client.Wcets = BasicActionWcets::typicalDeployment();

  std::vector<SocketId> Map = {0, Socks > 1 ? 1u : 0u};
  WorkloadSpec Spec;
  Spec.NumSockets = Socks;
  Spec.Horizon = Horizon;
  Spec.Style = WorkloadStyle::GreedyDense;

  AdequacySpec ASpec;
  ASpec.Client = Client;
  ASpec.Arr = generateWorkload(Client.Tasks, Map, Spec);
  ASpec.Limits.Horizon = 8 * Horizon;
  AdequacyReport Rep = runAdequacy(ASpec);

  AdequacyOutcome Out;
  Out.Sound = Rep.theoremHolds() && Rep.assumptionsHold();
  const TaskRta &TR = Rep.Rta.forTask(Hi);
  Out.Bound = TR.Bounded ? TR.ResponseBound : TimeInfinity;
  for (const JobVerdict &V : Rep.Jobs) {
    if (V.Completed && V.Task == Hi)
      Out.WorstHi = std::max(Out.WorstHi, V.ResponseTime);
    Out.Violations += !V.Holds;
  }
  return Out;
}

double runSocketsGrid(ThreadPool &Pool, std::size_t Chunk,
                      const std::vector<std::uint32_t> &Grid,
                      Duration Horizon,
                      std::vector<AdequacyOutcome> &Out) {
  Out.assign(Grid.size(), {});
  auto T0 = std::chrono::steady_clock::now();
  Pool.parallelForChunked(Grid.size(), Chunk, [&](std::size_t I) {
    Out[I] = runAdequacyPoint(Grid[I], Horizon);
  });
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

/// A seeded RTA-only grid for the byte-identity check.
std::vector<SweepPoint> rtaGrid(std::size_t NumSets) {
  std::vector<SweepPoint> Points;
  SplitMix64 Rng(18);
  for (std::size_t S = 0; S < NumSets; ++S) {
    TaskSet TS;
    std::size_t N = Rng.nextInRange(2, 4);
    for (std::size_t I = 0; I < N; ++I) {
      Duration Period = (10u << Rng.nextInRange(0, 3)) * TickUs;
      Duration Wcet = std::max<Duration>(1, Period / (4 + 2 * N));
      TS.addTask("t" + std::to_string(I), Wcet,
                 static_cast<Priority>(N - I),
                 std::make_shared<PeriodicCurve>(Period),
                 /*Deadline=*/Period);
    }
    for (std::uint32_t Socks : {1u, 4u, 16u}) {
      for (SchedPolicy P : {SchedPolicy::Npfp, SchedPolicy::Fifo}) {
        SweepPoint Pt;
        Pt.Tasks = TS;
        Pt.Cfg.FixedPointCap = 1 * TickSec;
        Pt.Sbf.Wcets = BasicActionWcets::typicalDeployment();
        Pt.Sbf.NumSockets = Socks;
        Pt.Policy = P;
        Points.push_back(std::move(Pt));
      }
    }
  }
  return Points;
}

std::string runRtaGrid(const std::vector<SweepPoint> &Points,
                       unsigned Threads, bool Memoize, std::size_t Chunk) {
  SweepOptions Opts;
  Opts.Threads = Threads;
  Opts.MemoizeCurves = Memoize;
  Opts.ChunkSize = Chunk;
  SweepRunner Runner(Opts);
  return sweepResultsJson(Points, Runner.run(Points));
}

} // namespace

int main(int argc, char **argv) {
  std::printf("=== E18: parallel sweep engine — determinism and "
              "speedup ===\n\n");

  bool Smoke = envFlag("RPROSA_BENCH_SMOKE");
  unsigned Threads = threadsFromArgs(argc, argv);
  std::size_t Chunk = chunkFromArgs(argc, argv);
  ThreadPool Parallel(Threads);
  ThreadPool Serial(1);

  // 1. The E7 sockets_sweep grid, serial vs parallel.
  std::vector<std::uint32_t> Grid =
      Smoke ? std::vector<std::uint32_t>{1, 2, 4}
            : std::vector<std::uint32_t>{1, 2, 4, 8, 16, 32, 64};
  Duration Horizon = (Smoke ? 60 : 400) * TickUs;
  std::vector<AdequacyOutcome> SerialOut, ParallelOut;
  double SerialMs = runSocketsGrid(Serial, Chunk, Grid, Horizon, SerialOut);
  double ParallelMs =
      runSocketsGrid(Parallel, Chunk, Grid, Horizon, ParallelOut);
  bool ResultsEqual = SerialOut == ParallelOut;
  double Speedup = ParallelMs > 0 ? SerialMs / ParallelMs : 1.0;
  std::printf("sockets grid (%zu points): serial %.1f ms, parallel "
              "%.1f ms on %u thread(s) -> %.2fx; results %s\n",
              Grid.size(), SerialMs, ParallelMs, Parallel.threads(),
              Speedup, ResultsEqual ? "identical" : "DIFFER");

  // 2. RTA grid: byte-identity of the canonical JSON across thread
  // counts and memoization settings.
  std::vector<SweepPoint> Points = rtaGrid(Smoke ? 4 : 24);
  std::string JsonSerial = runRtaGrid(Points, 1, true, Chunk);
  std::string JsonParallel = runRtaGrid(Points, Threads, true, Chunk);
  std::string JsonUnmemoized = runRtaGrid(Points, 1, false, Chunk);
  bool BytesEqual = JsonSerial == JsonParallel;
  bool MemoEqual = JsonSerial == JsonUnmemoized;
  std::printf("rta grid (%zu points): serial-vs-parallel JSON %s, "
              "memoized-vs-unmemoized JSON %s\n\n",
              Points.size(), BytesEqual ? "byte-identical" : "DIFFERS",
              MemoEqual ? "byte-identical" : "DIFFERS");

  // 3. The small-batch regression gate: a 3-point grid must not pay
  // for the pool. Best-of-3 on each side to damp scheduler noise.
  std::vector<std::uint32_t> TinyGrid = {1, 2, 4};
  Duration TinyHorizon = 60 * TickUs;
  double TinySerialMs = 1e300, TinyParallelMs = 1e300;
  for (int Rep = 0; Rep < 3; ++Rep) {
    std::vector<AdequacyOutcome> TinyOut;
    TinySerialMs = std::min(
        TinySerialMs,
        runSocketsGrid(Serial, Chunk, TinyGrid, TinyHorizon, TinyOut));
    TinyParallelMs = std::min(
        TinyParallelMs,
        runSocketsGrid(Parallel, Chunk, TinyGrid, TinyHorizon, TinyOut));
  }
  double TinySpeedup =
      TinyParallelMs > 0 ? TinySerialMs / TinyParallelMs : 1.0;
  std::printf("tiny grid (3 points): serial %.2f ms, parallel %.2f ms "
              "-> %.2fx\n\n",
              TinySerialMs, TinyParallelMs, TinySpeedup);

  std::FILE *F = std::fopen("BENCH_sweep_parallel.json", "w");
  if (F) {
    std::fprintf(F,
                 "{\n"
                 "  \"experiment\": \"E18\",\n"
                 "  \"grid_points\": %zu,\n"
                 "  \"threads\": %u,\n"
                 "  \"serial_ms\": %.3f,\n"
                 "  \"parallel_ms\": %.3f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"tiny_serial_ms\": %.3f,\n"
                 "  \"tiny_parallel_ms\": %.3f,\n"
                 "  \"tiny_speedup\": %.3f,\n"
                 "  \"results_identical\": %s,\n"
                 "  \"json_byte_identical\": %s,\n"
                 "  \"memo_byte_identical\": %s\n"
                 "}\n",
                 Grid.size(), Parallel.threads(), SerialMs, ParallelMs,
                 Speedup, TinySerialMs, TinyParallelMs, TinySpeedup,
                 ResultsEqual ? "true" : "false",
                 BytesEqual ? "true" : "false",
                 MemoEqual ? "true" : "false");
    std::fclose(F);
    std::printf("wrote BENCH_sweep_parallel.json\n");
  }

  bool Ok = ResultsEqual && BytesEqual && MemoEqual;
  // The wall-clock gate applies only where the hardware can deliver it:
  // a pool of >= 4 threads on >= 4 cores must cut the grid's time at
  // least in half. (Oversubscribing a smaller machine with --threads=4
  // exercises the code paths but cannot speed anything up.)
  bool GateActive = Parallel.threads() >= 4 &&
                    std::thread::hardware_concurrency() >= 4;
  if (GateActive && Speedup < 2.0) {
    std::printf("E18 FAILED: %u threads yielded only %.2fx over serial "
                "(>= 2x required)\n",
                Parallel.threads(), Speedup);
    Ok = false;
  }
  if (GateActive && TinySpeedup < 0.95) {
    std::printf("E18 FAILED: the 3-point grid ran at %.2fx serial "
                "(>= 0.95x required: small batches must not pay for "
                "the pool)\n",
                TinySpeedup);
    Ok = false;
  }
  if (!Ok && (ResultsEqual && BytesEqual && MemoEqual) == false) {
    std::printf("E18 FAILED: parallel and serial runs disagree\n");
  }
  if (!Ok)
    return 1;
  std::printf("E18 reproduced: the sweep engine is deterministic%s.\n",
              GateActive ? " and >= 2x faster on this host"
                         : " (speedup gate skipped: < 4 threads or "
                           "< 4 cores)");
  return 0;
}
