//===- bench/parse_cost.cpp - Experiment E24: front-end cost --------------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cost profile of the arena-backed front end (DESIGN.md §14), in three
/// tables:
///
///   1. Parse + lower throughput on generated specs from ~1 KB to
///      ~50 MB: the streaming state-stack parser into a bump arena
///      (`parseProgram`, `AstArena::Alloc::Bump`) against the retained
///      baseline that materialises the whole token vector and heap
///      allocates every node (`parseProgramReference`,
///      `AstArena::Alloc::PerNode`). Both sides include `buildCfg`, so
///      the number is the full source-to-CFG pipeline. Gate: >= 5x on
///      the largest spec, with byte-identical canonical prints.
///
///   2. The tree-walking analysis stages over the two node layouts —
///      CFG lowering, the register/buffer scans, and canonical
///      printing — on a bump-arena tree vs a per-node-heap tree of the
///      same program. Only the storage differs; these stages are
///      bandwidth-bound at scale, so dense packing (no allocator
///      headers or bin rounding) shows up directly. Gate: a measurable
///      (>= 1.05x best-of-reps) speedup on the largest probe, plus
///      unified-analysis parity (identical findings) between layouts.
///      The dataflow fixpoints themselves are layout-neutral by
///      construction — they iterate over the flat CFG vector and the
///      analysis state, not the AST — which the parity check exploits.
///
///   3. Incremental re-analysis (analysis/incremental.h): a workspace
///      of per-task slices, cold analysis vs a single-slice edit.
///      Gate: >= 3x, and a full-reanalysis cross-check (CrossCheck
///      mode plus an independent cold analyzer) must render
///      byte-identical timing tables and lint reports.
///
/// Emits BENCH_parse_cost.json. `--smoke` (or RPROSA_BENCH_SMOKE=1)
/// shrinks the spec sizes and the workspace; the throughput gates are
/// scale-dependent (the arena's win is bandwidth-bound, so it needs
/// MB-scale specs), so smoke mode reports them informationally and
/// binds only the correctness gates — byte-identity, findings parity,
/// the incremental speedup, and the cross-check. Exit 0 iff the
/// binding gates hold.
///
//===----------------------------------------------------------------------===//

#include "analysis/cfg.h"
#include "analysis/dataflow/analyses.h"
#include "analysis/dataflow/diagnostics.h"
#include "analysis/incremental.h"
#include "caesium/parser.h"
#include "caesium/print.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/table.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace rprosa;
using namespace rprosa::analysis;
namespace cs = rprosa::caesium;

namespace {

/// Best-of-\p Reps wall time of \p Fn, in microseconds.
template <class Fn> double timeUs(int Reps, Fn &&F) {
  double Best = 0;
  for (int R = 0; R < Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    F();
    auto T1 = std::chrono::steady_clock::now();
    double Us = std::chrono::duration<double, std::micro>(T1 - T0).count();
    if (R == 0 || Us < Best)
      Best = Us;
  }
  return Best;
}

/// A generated large spec: \p Loops sequential bounded counter loops
/// cycling through the 8 machine registers (the same family
/// bench/analysis_cost scales with — ~46 bytes per loop).
std::string syntheticSpec(std::size_t Loops) {
  std::string Src;
  for (std::size_t I = 0; I < Loops; ++I) {
    std::string R = "r" + std::to_string(I % 8);
    Src += R + " = 0;\n";
    Src += "while ((" + R + " < 10)) { " + R + " = (" + R + " + 1); }\n";
  }
  return Src;
}

/// One spec size's parse + lower profile, both pipelines.
struct ParseCost {
  std::size_t Loops = 0;
  std::size_t Bytes = 0;
  std::size_t CfgNodes = 0;
  bool PrintsIdentical = false;
  double NewUs = 0; ///< Streaming parser + bump arena + buildCfg.
  double RefUs = 0; ///< Token-vector parser + per-node heap + buildCfg.
};

ParseCost profileParse(std::size_t Loops, int Reps) {
  ParseCost Out;
  Out.Loops = Loops;
  std::string Src = syntheticSpec(Loops);
  Out.Bytes = Src.size();

  // Steady state: each pipeline re-parses into its own arena, reset()
  // between rounds — the shape of a long-running ingest loop. reset()
  // is inside the timed region: tearing the previous tree down is part
  // of a re-parse's cost in both designs (O(chunks) for the bump arena,
  // one deallocation per node for the per-node baseline).
  // Both pipelines lower into a persistent Cfg buffer (the reusing
  // buildCfg overload) so reps after the first touch only warm pages —
  // again, the shape of a long-running ingest loop, and the same
  // shared cost on both sides.
  cs::AstArena NewArena(cs::AstArena::Alloc::Bump);
  Cfg NewG;
  Out.NewUs = timeUs(Reps, [&] {
    NewArena.reset();
    auto P = cs::parseProgram(NewArena, Src);
    RPROSA_CHECK(P.has_value(), "generated spec must parse");
    buildCfg(*P, NewG);
    Out.CfgNodes = NewG.size();
  });
  cs::AstArena RefArena(cs::AstArena::Alloc::PerNode);
  Cfg RefG;
  Out.RefUs = timeUs(Reps, [&] {
    RefArena.reset();
    auto P = cs::parseProgramReference(RefArena, Src);
    RPROSA_CHECK(P.has_value(), "reference parse must succeed");
    buildCfg(*P, RefG);
    RPROSA_CHECK(RefG.size() == Out.CfgNodes, "same CFG shape");
  });

  // Byte-identity of the two pipelines on this spec.
  cs::AstArena NewA(cs::AstArena::Alloc::Bump);
  cs::AstArena RefA(cs::AstArena::Alloc::PerNode);
  Out.PrintsIdentical = cs::printStmt(**cs::parseProgram(NewA, Src)) ==
                        cs::printStmt(**cs::parseProgramReference(RefA, Src));
  return Out;
}

/// One spec size's tree-walk profile, both node layouts.
struct LayoutCost {
  std::size_t Loops = 0;
  std::size_t CfgNodes = 0;
  double BumpUs = 0;
  double PerNodeUs = 0;
};

LayoutCost profileLayout(std::size_t Loops, int Reps) {
  LayoutCost Out;
  Out.Loops = Loops;
  std::string Src = syntheticSpec(Loops);

  // Parse once per layout (parsing is table 1's story); time the
  // AST-walking analysis stages — lowering, expression scans, canonical
  // printing — over the two storage layouts. The same parser builds
  // both trees, so the walks are structurally identical; only node
  // placement differs.
  cs::AstArena Bump(cs::AstArena::Alloc::Bump);
  cs::AstArena Per(cs::AstArena::Alloc::PerNode);
  cs::StmtPtr BumpTree = *cs::parseProgram(Bump, Src);
  cs::StmtPtr PerTree = *cs::parseProgram(Per, Src);

  std::size_t Sink = 0;
  auto Walks = [&Sink](const cs::StmtPtr &Tree, Cfg &G) {
    buildCfg(Tree, G);
    Sink += G.numRegs() + G.numBufs();
    Sink += cs::printStmt(*Tree).size();
  };
  Cfg BumpG, PerG;
  Out.BumpUs = timeUs(Reps, [&] { Walks(BumpTree, BumpG); });
  Out.PerNodeUs = timeUs(Reps, [&] { Walks(PerTree, PerG); });
  Out.CfgNodes = BumpG.size();
  RPROSA_CHECK(PerG.size() == BumpG.size(), "same CFG shape");
  RPROSA_CHECK(Sink > 0, "walks must observe the tree");
  return Out;
}

/// Semantic parity between the layouts: the unified dataflow analyses
/// must produce identical findings over both trees (they iterate the
/// flat CFG vector, so the AST layout may only affect speed, never
/// results). Generated specs are clean by construction, so "identical"
/// here means empty on both sides.
bool layoutFindingsAgree(std::size_t Loops) {
  std::string Src = syntheticSpec(Loops);
  cs::AstArena Bump(cs::AstArena::Alloc::Bump);
  cs::AstArena Per(cs::AstArena::Alloc::PerNode);
  dataflow::AnalysisOptions Opts;
  auto FromBump =
      dataflow::runUnifiedAnalyses(buildCfg(*cs::parseProgram(Bump, Src)), Opts);
  auto FromPer =
      dataflow::runUnifiedAnalyses(buildCfg(*cs::parseProgram(Per, Src)), Opts);
  return FromBump.empty() && FromPer.empty();
}

/// The incremental workspace profile: cold vs single-edit rounds.
struct IncCost {
  std::size_t Slices = 0;
  double ColdUs = 0;
  double EditUs = 0;
  bool CrossCheckOk = false;
  IncrementalStats Stats;
};

/// \p N distinct per-task slices: a unique leading assignment keeps the
/// canonical programs (and so the cache keys) distinct per slice.
std::vector<TaskSlice> workspaceSlices(std::size_t N, std::size_t Loops) {
  std::string Body = syntheticSpec(Loops);
  std::vector<TaskSlice> Slices;
  for (std::size_t I = 0; I < N; ++I)
    Slices.push_back({"task-" + std::to_string(I),
                      "r7 = " + std::to_string(I + 100) + ";\n" + Body,
                      /*NumSockets=*/2});
  return Slices;
}

StaticCostParams workspaceParams() {
  StaticCostParams P;
  P.Wcets = BasicActionWcets::typicalDeployment();
  P.Instr = InstructionCosts::unit();
  P.MaxCallbackWcet = 10 * TickUs;
  return P;
}

IncCost profileIncremental(std::size_t NumSlices, std::size_t Loops,
                           int Reps) {
  IncCost Out;
  Out.Slices = NumSlices;
  std::vector<TaskSlice> Slices = workspaceSlices(NumSlices, Loops);
  StaticCostParams P = workspaceParams();

  // Cold: a fresh analyzer per repetition — every slice misses.
  Out.ColdUs = timeUs(Reps, [&] {
    WorkspaceAnalyzer WA(P);
    WA.analyze(Slices);
  });

  // Single-edit rounds: one analyzer, one never-seen edit per round so
  // each timed pass re-analyzes exactly one slice.
  WorkspaceAnalyzer Warm(P);
  Warm.analyze(Slices);
  std::vector<TaskSlice> Edited = Slices;
  for (int R = 0; R < Reps; ++R) {
    Edited.back().Source =
        Slices.back().Source + "r6 = " + std::to_string(R) + ";\n";
    double Us = timeUs(1, [&] { Warm.analyze(Edited); });
    if (R == 0 || Us < Out.EditUs)
      Out.EditUs = Us;
  }
  Out.Stats = Warm.cache().stats();

  // Full-reanalysis cross-check, two ways. (a) CrossCheck mode
  // re-derives every hit and RPROSA_CHECKs rendered byte-identity
  // internally; (b) an independent cold analyzer over the final edited
  // workspace must render the same timing tables and lint reports as
  // the warm cache served.
  AnalysisCache::Options CC;
  CC.CrossCheck = true;
  WorkspaceAnalyzer Checked(P, CC);
  Checked.analyze(Edited);
  std::vector<SliceAnalysis> Re = Checked.analyze(Edited);
  Out.CrossCheckOk = Checked.cache().stats().CrossChecks > 0;

  WorkspaceAnalyzer Cold(P);
  std::vector<SliceAnalysis> FromCold = Cold.analyze(Edited);
  std::vector<SliceAnalysis> FromWarm = Warm.analyze(Edited);
  RPROSA_CHECK(FromCold.size() == FromWarm.size(), "same workspace");
  for (std::size_t I = 0; I < FromCold.size(); ++I) {
    Out.CrossCheckOk &= FromWarm[I].Reused;
    Out.CrossCheckOk &= FromCold[I].Timing.describeTable() ==
                        FromWarm[I].Timing.describeTable();
    Out.CrossCheckOk &=
        dataflow::renderText("x", FromCold[I].Lint) ==
        dataflow::renderText("x", FromWarm[I].Lint);
  }
  (void)Re;
  return Out;
}

std::string fmtUs(double Us) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", Us);
  return Buf;
}

std::string fmtX(double X) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2fx", X);
  return Buf;
}

std::string fmtMbps(std::size_t Bytes, double Us) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f",
                Us > 0 ? Bytes / Us : 0.0); // bytes/us == MB/s.
  return Buf;
}

void writeJson(const std::vector<ParseCost> &Parses,
               const std::vector<LayoutCost> &Layouts, bool LayoutParity,
               const IncCost &Inc, bool Smoke, bool Ok) {
  std::FILE *F = std::fopen("BENCH_parse_cost.json", "w");
  if (!F) {
    std::printf("(could not write BENCH_parse_cost.json)\n");
    return;
  }
  std::fprintf(F, "{\n  \"experiment\": \"E24-parse-cost\",\n");
  std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(F, "  \"passed\": %s,\n", Ok ? "true" : "false");
  std::fprintf(F, "  \"parse_lower\": [\n");
  for (std::size_t I = 0; I < Parses.size(); ++I) {
    const ParseCost &P = Parses[I];
    std::fprintf(F,
                 "    {\"loops\": %zu, \"bytes\": %zu, \"cfg_nodes\": %zu, "
                 "\"prints_identical\": %s, \"stream_bump_us\": %.1f, "
                 "\"tokenvec_pernode_us\": %.1f, \"speedup\": %.2f}%s\n",
                 P.Loops, P.Bytes, P.CfgNodes,
                 P.PrintsIdentical ? "true" : "false", P.NewUs, P.RefUs,
                 P.NewUs > 0 ? P.RefUs / P.NewUs : 0.0,
                 I + 1 < Parses.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"analysis_layout\": [\n");
  for (std::size_t I = 0; I < Layouts.size(); ++I) {
    const LayoutCost &L = Layouts[I];
    std::fprintf(F,
                 "    {\"loops\": %zu, \"cfg_nodes\": %zu, "
                 "\"bump_us\": %.1f, "
                 "\"pernode_us\": %.1f, \"speedup\": %.2f}%s\n",
                 L.Loops, L.CfgNodes, L.BumpUs, L.PerNodeUs,
                 L.BumpUs > 0 ? L.PerNodeUs / L.BumpUs : 0.0,
                 I + 1 < Layouts.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"layout_findings_identical\": %s,\n",
               LayoutParity ? "true" : "false");
  std::fprintf(F,
               "  \"incremental\": {\"slices\": %zu, "
               "\"cold_us\": %.1f, \"single_edit_us\": %.1f, "
               "\"speedup\": %.2f, \"cross_check_ok\": %s, "
               "\"timing_hits\": %llu, \"timing_misses\": %llu}\n",
               Inc.Slices, Inc.ColdUs, Inc.EditUs,
               Inc.EditUs > 0 ? Inc.ColdUs / Inc.EditUs : 0.0,
               Inc.CrossCheckOk ? "true" : "false",
               static_cast<unsigned long long>(Inc.Stats.TimingHits),
               static_cast<unsigned long long>(Inc.Stats.TimingMisses));
  std::fprintf(F, "}\n");
  std::fclose(F);
  std::printf("wrote BENCH_parse_cost.json\n");
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = envFlag("RPROSA_BENCH_SMOKE");
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--smoke") == 0)
      Smoke = true;

  std::printf("=== E24: arena-backed front-end cost ===\n\n");
  bool Ok = true;

  std::printf("--- parse + lower throughput (streaming/bump vs "
              "token-vector/per-node) ---\n\n");
  std::vector<std::size_t> Sizes =
      Smoke ? std::vector<std::size_t>{20, 320, 5120}
            : std::vector<std::size_t>{20, 320, 5120, 81920, 1140000};
  std::vector<ParseCost> Parses;
  TableWriter PT({"loops", "bytes", "cfg nodes", "identical", "stream us",
                  "tokenvec us", "stream MB/s", "tokenvec MB/s",
                  "speedup"});
  for (std::size_t Loops : Sizes) {
    ParseCost P = profileParse(Loops, Loops > 100000 ? 3 : 5);
    PT.addRow({std::to_string(P.Loops), std::to_string(P.Bytes),
               std::to_string(P.CfgNodes),
               P.PrintsIdentical ? "yes" : "NO", fmtUs(P.NewUs),
               fmtUs(P.RefUs), fmtMbps(P.Bytes, P.NewUs),
               fmtMbps(P.Bytes, P.RefUs), fmtX(P.RefUs / P.NewUs)});
    Ok &= P.PrintsIdentical;
    Parses.push_back(P);
  }
  std::printf("%s\n", PT.renderAscii().c_str());
  // The headline gate: >= 5x on the largest generated spec. The win is
  // bandwidth-bound, so it only fully materialises at MB scale —
  // smoke's shrunken specs report it informationally.
  double ParseSpeedup = Parses.back().RefUs / Parses.back().NewUs;
  if (!Smoke)
    Ok &= ParseSpeedup >= 5.0;
  std::printf("largest spec (%zu bytes): %s parse+lower speedup "
              "(gate: >= 5x%s)\n\n",
              Parses.back().Bytes, fmtX(ParseSpeedup).c_str(),
              Smoke ? ", informational in smoke" : "");

  std::printf("--- tree-walk analysis stages (lower + scans + print), "
              "bump vs per-node layout ---\n\n");
  std::vector<LayoutCost> Layouts;
  TableWriter LT({"loops", "cfg nodes", "bump us", "per-node us",
                  "speedup"});
  for (std::size_t Loops : Smoke ? std::vector<std::size_t>{1024, 8192}
                                 : std::vector<std::size_t>{8192, 81920,
                                                            1140000}) {
    LayoutCost L = profileLayout(Loops, Loops > 100000 ? 3 : 5);
    LT.addRow({std::to_string(L.Loops), std::to_string(L.CfgNodes),
               fmtUs(L.BumpUs), fmtUs(L.PerNodeUs),
               fmtX(L.PerNodeUs / L.BumpUs)});
    Layouts.push_back(L);
  }
  std::printf("%s\n", LT.renderAscii().c_str());
  double LayoutSpeedup = Layouts.back().PerNodeUs / Layouts.back().BumpUs;
  if (!Smoke)
    Ok &= LayoutSpeedup >= 1.05;
  bool Parity = layoutFindingsAgree(1024);
  Ok &= Parity;
  std::printf("largest layout probe: %s tree-walk speedup from the bump "
              "layout (gate: >= 1.05x%s); unified-analysis findings "
              "%s between layouts\n\n",
              fmtX(LayoutSpeedup).c_str(),
              Smoke ? ", informational in smoke" : "",
              Parity ? "identical" : "DIFFER");

  std::printf("--- incremental re-analysis (single-slice edit) ---\n\n");
  IncCost Inc = profileIncremental(Smoke ? 8 : 24, Smoke ? 8 : 16, 5);
  double IncSpeedup = Inc.EditUs > 0 ? Inc.ColdUs / Inc.EditUs : 0.0;
  TableWriter IT({"slices", "cold us", "single-edit us", "speedup",
                  "cross-check"});
  IT.addRow({std::to_string(Inc.Slices), fmtUs(Inc.ColdUs),
             fmtUs(Inc.EditUs), fmtX(IncSpeedup),
             Inc.CrossCheckOk ? "byte-identical" : "MISMATCH"});
  std::printf("%s\n", IT.renderAscii().c_str());
  Ok &= IncSpeedup >= 3.0 && Inc.CrossCheckOk;
  std::printf("single-task edit: %s vs cold (gate: >= 3x, cross-check "
              "byte-identical)\n\n",
              fmtX(IncSpeedup).c_str());

  writeJson(Parses, Layouts, Parity, Inc, Smoke, Ok);
  if (!Ok) {
    std::printf("E24 FAILED: a front-end gate did not hold (see the "
                "tables above)\n");
    return 1;
  }
  std::printf("E24 reproduced: the streaming parser + bump arena beats "
              "the token-vector + per-node baseline >= 5x on the "
              "largest spec with byte-identical programs, the dense "
              "layout measurably speeds up the tree-walking analysis "
              "stages with identical findings, and single-task edits "
              "re-analyze >= 3x faster with a byte-identical "
              "cross-check.\n");
  return 0;
}
