//===- bench/policies_compare.cpp - Experiment E11: the policy family -----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The policy extension experiment (related work, §6: ProKOS verifies
/// FP *and* EDF; Prosa ships a verified FIFO RTA): the same interrupt-
/// free scheduler skeleton with NPFP / NP-EDF / NP-FIFO selection rules,
/// each verified end to end by its own analysis on the same workload.
///
/// Expected shape: NPFP protects its highest-priority task best; EDF
/// protects the tightest deadline; FIFO treats everyone alike (uniform
/// bounds). All three must satisfy their Thm. 5.1 analogue.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "adequacy/report.h"
#include "sim/workload.h"
#include "support/parallel.h"
#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace rprosa;

int main(int argc, char **argv) {
  std::printf("=== E11: NPFP vs NP-EDF vs NP-FIFO on the same workload "
              "===\n\n");

  TaskSet TS;
  // "urgent": highest priority AND tight deadline; "bulk": low priority,
  // loose deadline, big WCET; "mid": in between — the three policies
  // produce visibly different orderings.
  TS.addTask("urgent", 500 * TickNs, 3,
             std::make_shared<PeriodicCurve>(20 * TickUs),
             /*Deadline=*/5 * TickUs);
  TS.addTask("mid", 1200 * TickNs, 2,
             std::make_shared<PeriodicCurve>(40 * TickUs),
             /*Deadline=*/25 * TickUs);
  TS.addTask("bulk", 3 * TickUs, 1,
             std::make_shared<PeriodicCurve>(80 * TickUs),
             /*Deadline=*/80 * TickUs);

  WorkloadSpec Spec;
  Spec.NumSockets = 2;
  Spec.Horizon = 400 * TickUs;
  Spec.Style = WorkloadStyle::GreedyDense;
  ArrivalSequence Arr = generateWorkload(TS, Spec);

  // The three policies are independent end-to-end runs (scheduler +
  // conversion + analysis on the same arrival sequence), so they run
  // concurrently; per-policy stats land in index-addressed slots and
  // the table renders in policy order — identical under --serial.
  const std::vector<SchedPolicy> Policies = {
      SchedPolicy::Npfp, SchedPolicy::Edf, SchedPolicy::Fifo};
  struct PolicyRow {
    bool Holds = false;
    std::vector<TaskStats> Stats;
  };
  std::vector<PolicyRow> Rows(Policies.size());
  ThreadPool Pool(threadsFromArgs(argc, argv));
  std::size_t Chunk = chunkFromArgs(argc, argv);
  Pool.parallelForChunked(Policies.size(), Chunk, [&](std::size_t Idx) {
    AdequacySpec ASpec;
    ASpec.Client.Tasks = TS;
    ASpec.Client.NumSockets = 2;
    ASpec.Client.Wcets = BasicActionWcets::typicalDeployment();
    ASpec.Client.Policy = Policies[Idx];
    ASpec.Arr = Arr;
    ASpec.Limits.Horizon = 2 * TickMs;
    AdequacyReport Rep = runAdequacy(ASpec);
    Rows[Idx].Holds = Rep.assumptionsHold() && Rep.invariantsHold() &&
                      Rep.conclusionHolds();
    Rows[Idx].Stats = aggregatePerTask(Rep, TS);
  });

  TableWriter T({"policy", "task", "bound", "worst observed",
                 "violations", "theorem"});
  bool AllHold = true;
  for (std::size_t Idx = 0; Idx < Policies.size(); ++Idx) {
    const PolicyRow &R = Rows[Idx];
    AllHold &= R.Holds;
    for (const TaskStats &S : R.Stats)
      T.addRow({toString(Policies[Idx]), TS.task(S.Task).Name,
                S.Bound == TimeInfinity ? "unbounded"
                                        : formatTicksAsNs(S.Bound),
                formatTicksAsNs(S.MaxResponse),
                std::to_string(S.Violations),
                R.Holds ? "holds" : "VIOLATED"});
  }
  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("expected shape: NPFP gives 'urgent' the smallest bound; "
              "EDF honors the tight deadline; FIFO's bounds are the "
              "most uniform across tasks. Every policy's theorem must "
              "hold on its own run.\n");
  if (!AllHold) {
    std::printf("E11 FAILED\n");
    return 1;
  }
  std::printf("E11 reproduced.\n");
  return 0;
}
