//===- bench/stream_horizon.cpp - Experiment E19: streaming memory --------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory story of the streaming refactor (DESIGN.md §9): peak RSS
/// and marker throughput of the single-pass adequacy pipeline
/// (runAdequacyStreaming) against the materializing batch pipeline
/// (runAdequacy) at horizons spanning two orders of magnitude.
///
/// Gates:
///  1. the two pipelines render byte-identical reports at the smallest
///     horizon (the full-corpus equivalence lives in
///     tests/stream_equivalence_test.cpp; this is the in-vivo check);
///  2. the streaming pipeline's peak RSS stays FLAT across the 100x
///     horizon increase (<= 32 MiB of drift allowed), while the batch
///     pipeline's grows with the trace — the point of the refactor.
///
/// Horizons are marker counts (RunLimits::MaxMarkers) over a fixed
/// arrival prefix, so memory growth isolates the pipeline's own state.
/// Default max horizon is 1e7 markers (1e6 under RPROSA_BENCH_SMOKE);
/// RPROSA_STREAM_MAX_EVENTS overrides it (e.g. 100000000 for the 1e8
/// point on a large machine — streaming only, batch is capped at 1e7).
///
/// Peak RSS per phase: VmHWM from /proc/self/status, reset by writing
/// "5" to /proc/self/clear_refs before each phase; malloc_trim(0)
/// between phases returns freed arena pages to the OS so one phase's
/// residue does not inflate the next phase's watermark. On systems
/// without these interfaces the RSS gate reports "skipped".
///
/// Emits BENCH_stream_horizon.json.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "adequacy/report.h"
#include "sim/workload.h"
#include "support/parallel.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

using namespace rprosa;

namespace {

/// VmHWM (peak resident set) in KiB; 0 when /proc is unavailable.
std::size_t vmHwmKb() {
  std::ifstream In("/proc/self/status");
  std::string Line;
  while (std::getline(In, Line))
    if (Line.rfind("VmHWM:", 0) == 0)
      return std::strtoull(Line.c_str() + 6, nullptr, 10);
  return 0;
}

/// Resets VmHWM to the current RSS (Linux >= 4.0). Returns false when
/// the interface is missing, in which case the RSS gate is skipped.
bool resetPeakRss() {
  std::ofstream Out("/proc/self/clear_refs");
  if (!Out)
    return false;
  Out << "5\n";
  return Out.good();
}

/// Returns freed heap pages to the OS so the next phase's watermark
/// starts from a clean floor.
void trimHeap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

/// The benchmark system: a small two-task client on two sockets with a
/// BOUNDED arrival prefix. Past the prefix the scheduler keeps polling
/// and idling, so the marker count — and with it the batch pipeline's
/// trace — scales with MaxMarkers while the workload stays fixed.
AdequacySpec makeSpec(std::size_t MaxMarkers) {
  AdequacySpec Spec;
  Spec.Client.Tasks.addTask("pulse", 40, 2,
                            std::make_shared<PeriodicCurve>(2000));
  Spec.Client.Tasks.addTask("burst", 25, 1,
                            std::make_shared<LeakyBucketCurve>(2, 1500));
  Spec.Client.NumSockets = 2;
  BasicActionWcets W;
  W.FailedRead = 4;
  W.SuccessfulRead = 10;
  W.Selection = 3;
  W.Dispatch = 2;
  W.Completion = 5;
  W.Idling = 8;
  Spec.Client.Wcets = W;
  WorkloadSpec WS;
  WS.NumSockets = 2;
  WS.Horizon = 40000;
  WS.Style = WorkloadStyle::GreedyDense;
  Spec.Arr = generateWorkload(Spec.Client.Tasks, WS);
  Spec.Limits.Horizon = 1000000000000ull; // markers are the limit
  Spec.Limits.MaxMarkers = MaxMarkers;
  return Spec;
}

struct Phase {
  std::size_t Target = 0; ///< Requested MaxMarkers.
  std::size_t Events = 0; ///< Markers actually produced.
  double Ms = 0;
  double EventsPerSec = 0;
  std::size_t PeakKb = 0;
};

Phase runPhase(std::size_t Target, bool CanResetRss,
               const std::function<AdequacyReport(const AdequacySpec &)>
                   &Pipeline) {
  trimHeap();
  if (CanResetRss)
    resetPeakRss();
  AdequacySpec Spec = makeSpec(Target);
  auto T0 = std::chrono::steady_clock::now();
  AdequacyReport Rep = Pipeline(Spec);
  auto T1 = std::chrono::steady_clock::now();
  Phase P;
  P.Target = Target;
  P.Events = Rep.Markers;
  P.Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
  P.EventsPerSec = P.Ms > 0 ? 1000.0 * double(P.Events) / P.Ms : 0;
  P.PeakKb = vmHwmKb(); // Peak *during* this phase (reset above).
  return P;
}

void printPhase(const char *Which, const Phase &P) {
  std::printf("  %-9s %10zu markers  %9.1f ms  %7.2f Mmarkers/s  "
              "peak %8zu KiB\n",
              Which, P.Events, P.Ms, P.EventsPerSec / 1e6, P.PeakKb);
}

std::string phasesJson(const std::vector<Phase> &Ps) {
  std::string S = "[";
  for (std::size_t I = 0; I < Ps.size(); ++I) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n    {\"events\": %zu, \"ms\": %.3f, "
                  "\"events_per_sec\": %.0f, \"peak_kb\": %zu}",
                  I ? "," : "", Ps[I].Events, Ps[I].Ms, Ps[I].EventsPerSec,
                  Ps[I].PeakKb);
    S += Buf;
  }
  return S + "\n  ]";
}

} // namespace

int main() {
  std::printf("=== E19: streaming vs batch pipeline at growing "
              "horizons ===\n\n");

  const bool Smoke = envFlag("RPROSA_BENCH_SMOKE");
  std::size_t MaxEvents = Smoke ? 1000000 : 10000000;
  if (const char *Cap = std::getenv("RPROSA_STREAM_MAX_EVENTS"))
    if (std::size_t V = std::strtoull(Cap, nullptr, 10))
      MaxEvents = V;
  // Batch materializes ~100 B/marker; keep it off the 1e8 points.
  const std::size_t BatchMax = std::min<std::size_t>(MaxEvents, 10000000);
  const std::vector<std::size_t> Horizons = {MaxEvents / 100,
                                             MaxEvents / 10, MaxEvents};

  const bool CanResetRss = resetPeakRss();
  if (!CanResetRss)
    std::printf("note: /proc/self/clear_refs unavailable; the peak-RSS "
                "gate is skipped on this system\n\n");

  // Gate 1: byte-identical reports at the smallest horizon.
  AdequacySpec EqSpec = makeSpec(Horizons.front());
  const std::string BatchSummary = runAdequacy(EqSpec).summary();
  const std::string StreamSummary = runAdequacyStreaming(EqSpec).summary();
  const bool Identical = BatchSummary == StreamSummary;
  std::printf("report equivalence at %zu markers: %s\n\n",
              Horizons.front(),
              Identical ? "byte-identical" : "MISMATCH (streaming bug)");

  // Streaming phases first, on a freshly trimmed heap.
  std::printf("streaming pipeline (runAdequacyStreaming):\n");
  std::vector<Phase> Stream;
  for (std::size_t H : Horizons) {
    Stream.push_back(runPhase(H, CanResetRss, runAdequacyStreaming));
    printPhase("stream", Stream.back());
  }

  std::printf("\nbatch pipeline (runAdequacy, materialized trace):\n");
  std::vector<Phase> Batch;
  for (std::size_t H : Horizons) {
    if (H > BatchMax) {
      std::printf("  batch     %10zu markers  skipped (above batch cap "
                  "%zu)\n",
                  H, BatchMax);
      continue;
    }
    Batch.push_back(runPhase(H, CanResetRss, runAdequacy));
    printPhase("batch", Batch.back());
  }

  // Gate 2: the streaming peak is flat across the 100x span.
  bool StreamFlat = true;
  if (CanResetRss) {
    const std::size_t Lo = Stream.front().PeakKb;
    const std::size_t Hi = Stream.back().PeakKb;
    StreamFlat = Hi <= Lo + 32 * 1024;
    std::printf("\nstreaming peak RSS across 100x horizons: %zu KiB -> "
                "%zu KiB (%s; <= 32 MiB drift allowed)\n",
                Lo, Hi, StreamFlat ? "flat" : "GROWING");
    if (Batch.size() >= 2)
      std::printf("batch peak RSS for comparison: %zu KiB -> %zu KiB "
                  "over %zux markers\n",
                  Batch.front().PeakKb, Batch.back().PeakKb,
                  Batch.back().Events / std::max<std::size_t>(
                                            1, Batch.front().Events));
  }

  std::FILE *F = std::fopen("BENCH_stream_horizon.json", "w");
  if (F) {
    std::fprintf(F,
                 "{\n"
                 "  \"experiment\": \"E19\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"reports_byte_identical\": %s,\n"
                 "  \"rss_gate\": \"%s\",\n"
                 "  \"streaming\": %s,\n"
                 "  \"batch\": %s\n"
                 "}\n",
                 Smoke ? "true" : "false", Identical ? "true" : "false",
                 !CanResetRss ? "skipped"
                              : (StreamFlat ? "flat" : "growing"),
                 phasesJson(Stream).c_str(), phasesJson(Batch).c_str());
    std::fclose(F);
    std::printf("\nwrote BENCH_stream_horizon.json\n");
  }

  if (!Identical) {
    std::printf("E19 FAILED: batch and streaming reports differ\n");
    return 1;
  }
  if (!StreamFlat) {
    std::printf("E19 FAILED: streaming peak RSS grew with the horizon\n");
    return 1;
  }
  std::printf("E19 reproduced: one pass, flat memory, identical "
              "reports.\n");
  return 0;
}
