//===- bench/micro.cpp - Experiment E10: pipeline microbenchmarks ---------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for every stage of the pipeline:
/// simulation (markers/second), the trace checkers, the conversion, SBF
/// evaluation and the RTA solver as the task count grows. These document
/// that the executable verification scales to long traces.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "convert/trace_to_schedule.h"
#include "rossl/scheduler.h"
#include "rta/jitter.h"
#include "rta/rta_npfp.h"
#include "rta/sbf.h"
#include "sim/environment.h"
#include "sim/workload.h"
#include "trace/consistency.h"
#include "trace/online_monitor.h"
#include "trace/serialize.h"
#include "trace/functional.h"
#include "trace/protocol.h"
#include "trace/wcet_check.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace rprosa;

namespace {

struct Fixture {
  ClientConfig Client;
  ArrivalSequence Arr{2};
  TimedTrace TT;

  explicit Fixture(Time Horizon = 500 * TickUs) {
    Client.Tasks.addTask("hi", 600 * TickNs, 2,
                         std::make_shared<PeriodicCurve>(15 * TickUs));
    Client.Tasks.addTask("lo", 1800 * TickNs, 1,
                         std::make_shared<PeriodicCurve>(50 * TickUs));
    Client.NumSockets = 2;
    Client.Wcets = BasicActionWcets::typicalDeployment();
    WorkloadSpec Spec;
    Spec.NumSockets = 2;
    Spec.Horizon = Horizon;
    Spec.Style = WorkloadStyle::GreedyDense;
    Arr = generateWorkload(Client.Tasks, Spec);
    Environment Env(Arr);
    CostModel Costs(Client.Wcets, CostModelKind::AlwaysWcet, 1);
    FdScheduler Sched(Client, Env, Costs);
    RunLimits Limits;
    Limits.Horizon = Horizon * 2;
    TT = Sched.run(Limits);
  }
};

const Fixture &sharedFixture() {
  static Fixture F;
  return F;
}

void BM_SimulateRun(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  for (auto _ : State) {
    Environment Env(F.Arr);
    CostModel Costs(F.Client.Wcets, CostModelKind::AlwaysWcet, 1);
    FdScheduler Sched(F.Client, Env, Costs);
    RunLimits Limits;
    Limits.Horizon = 1 * TickMs;
    TimedTrace TT = Sched.run(Limits);
    benchmark::DoNotOptimize(TT.Tr.size());
    State.counters["markers/s"] = benchmark::Counter(
        double(TT.size()), benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_SimulateRun)->Unit(benchmark::kMillisecond);

void BM_CheckProtocol(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  for (auto _ : State)
    benchmark::DoNotOptimize(checkProtocol(F.TT.Tr, 2).passed());
  State.counters["markers/s"] = benchmark::Counter(
      double(F.TT.size()), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CheckProtocol)->Unit(benchmark::kMicrosecond);

void BM_CheckFunctional(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        checkFunctionalCorrectness(F.TT.Tr, F.Client.Tasks).passed());
}
BENCHMARK(BM_CheckFunctional)->Unit(benchmark::kMicrosecond);

void BM_CheckConsistency(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  for (auto _ : State)
    benchmark::DoNotOptimize(checkConsistency(F.TT, F.Arr).passed());
}
BENCHMARK(BM_CheckConsistency)->Unit(benchmark::kMicrosecond);

void BM_CheckWcet(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        checkWcetRespected(F.TT, F.Client.Tasks, F.Client.Wcets).passed());
}
BENCHMARK(BM_CheckWcet)->Unit(benchmark::kMicrosecond);

void BM_ConvertTraceToSchedule(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  for (auto _ : State) {
    ConversionResult CR = convertTraceToSchedule(F.TT, 2);
    benchmark::DoNotOptimize(CR.Sched.length());
  }
}
BENCHMARK(BM_ConvertTraceToSchedule)->Unit(benchmark::kMicrosecond);

void BM_SbfEval(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  OverheadBounds B = OverheadBounds::compute(F.Client.Wcets, 2);
  Duration J = maxReleaseJitter(B);
  std::vector<ArrivalCurvePtr> Beta;
  for (const Task &T : F.Client.Tasks.tasks())
    Beta.push_back(makeReleaseCurve(T.Curve, J));
  RosslSupply Supply(Beta, B, 100 * TickSec);
  Duration Delta = 1;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Supply.supplyBound(Delta));
    Delta = Delta * 2 % (100 * TickMs) + 1;
  }
}
BENCHMARK(BM_SbfEval);

void BM_RtaSolve(benchmark::State &State) {
  // Task-set size sweep: priorities descend, periods spread out.
  std::int64_t N = State.range(0);
  TaskSet TS;
  for (std::int64_t I = 0; I < N; ++I)
    TS.addTask("t" + std::to_string(I), (400 + 100 * I) * TickNs,
               static_cast<Priority>(N - I),
               std::make_shared<PeriodicCurve>((20 + 10 * I) * TickUs));
  BasicActionWcets W = BasicActionWcets::typicalDeployment();
  for (auto _ : State) {
    RtaResult R = analyzeNpfp(TS, W, 2);
    benchmark::DoNotOptimize(R.allBounded());
  }
}
BENCHMARK(BM_RtaSolve)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_FullAdequacyPipeline(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  for (auto _ : State) {
    AdequacySpec Spec;
    Spec.Client = F.Client;
    Spec.Arr = F.Arr;
    Spec.Limits.Horizon = 1 * TickMs;
    AdequacyReport Rep = runAdequacy(Spec);
    benchmark::DoNotOptimize(Rep.theoremHolds());
  }
}
BENCHMARK(BM_FullAdequacyPipeline)->Unit(benchmark::kMillisecond);

void BM_WorkloadGeneration(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  for (auto _ : State) {
    WorkloadSpec Spec;
    Spec.NumSockets = 2;
    Spec.Horizon = 500 * TickUs;
    Spec.Style = WorkloadStyle::Random;
    ArrivalSequence Arr = generateWorkload(F.Client.Tasks, Spec);
    benchmark::DoNotOptimize(Arr.size());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMicrosecond);

} // namespace

namespace {

void BM_SerializeRoundTrip(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  std::string Text = serializeTimedTrace(F.TT);
  for (auto _ : State) {
    std::optional<TimedTrace> TT = parseTimedTrace(Text);
    benchmark::DoNotOptimize(TT->size());
  }
  State.counters["bytes"] = double(Text.size());
}
BENCHMARK(BM_SerializeRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_OnlineMonitor(benchmark::State &State) {
  const Fixture &F = sharedFixture();
  for (auto _ : State) {
    OnlineMonitor M(F.Client.Tasks, F.Client.Wcets, 2);
    for (std::size_t I = 0; I < F.TT.size(); ++I)
      M.observe(F.TT.Tr[I], F.TT.Ts[I]);
    M.finish(F.TT.EndTime);
    benchmark::DoNotOptimize(M.clean());
  }
  State.counters["markers/s"] = benchmark::Counter(
      double(F.TT.size()), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_OnlineMonitor)->Unit(benchmark::kMicrosecond);

} // namespace
