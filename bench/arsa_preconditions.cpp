//===- bench/arsa_preconditions.cpp - Experiment E13: the Fig. 7 bridge ---===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the central argument of §4.3 (Fig. 7): Rössl's schedules
/// violate aRSA's preconditions w.r.t. the *arrival* sequence —
/// priority-policy compliance (a job arriving between polling and
/// execution is overlooked) and work conservation (a job arriving
/// mid-idle waits) — and satisfy both w.r.t. the jittered *release*
/// sequence, whose releases stay within the release curve β_i.
///
/// The harness sweeps runs and counts, per configuration, violating
/// runs under raw arrivals (expected: common) and under releases
/// (required: none).
///
//===----------------------------------------------------------------------===//

#include "convert/trace_to_schedule.h"
#include "rossl/scheduler.h"
#include "rta/compliance.h"
#include "sim/environment.h"
#include "sim/workload.h"
#include "support/table.h"

#include <cstdio>
#include <memory>

using namespace rprosa;

int main() {
  std::printf("=== E13: aRSA preconditions — raw arrivals vs the "
              "release sequence (§4.3, Fig. 7) ===\n\n");

  TaskSet TS;
  TS.addTask("hi", 600 * TickNs, 3,
             std::make_shared<PeriodicCurve>(12 * TickUs));
  TS.addTask("mid", 1 * TickUs, 2,
             std::make_shared<LeakyBucketCurve>(2, 30 * TickUs));
  TS.addTask("lo", 2500 * TickNs, 1,
             std::make_shared<PeriodicCurve>(60 * TickUs));
  BasicActionWcets W = BasicActionWcets::typicalDeployment();

  TableWriter T({"sockets", "runs", "raw WC violations",
                 "raw compliance violations", "release WC violations",
                 "release compliance violations"});
  std::uint64_t RawAny = 0, RelBad = 0;

  for (std::uint32_t Socks : {1u, 2u, 4u}) {
    std::uint64_t Runs = 0, RawWc = 0, RawPc = 0, RelWc = 0, RelPc = 0;
    for (std::uint64_t Seed = 1; Seed <= 8; ++Seed) {
      ClientConfig C;
      C.Tasks = TS;
      C.NumSockets = Socks;
      C.Wcets = W;
      WorkloadSpec Spec;
      Spec.NumSockets = Socks;
      Spec.Horizon = 200 * TickUs;
      Spec.Seed = Seed;
      Spec.Style = Seed % 2 ? WorkloadStyle::Random
                            : WorkloadStyle::Sparse;
      ArrivalSequence Arr = generateWorkload(TS, Spec);
      Environment Env(Arr);
      CostModel Costs(W, CostModelKind::AlwaysWcet, Seed);
      FdScheduler Sched(C, Env, Costs);
      RunLimits Limits;
      Limits.Horizon = 400 * TickUs;
      ConversionResult CR =
          convertTraceToSchedule(Sched.run(Limits), Socks);

      ReleaseSequence Raw = buildReleaseSequence(CR, Arr,
                                                 /*ZeroJitter=*/true);
      ReleaseSequence Rel = buildReleaseSequence(CR, Arr);
      ++Runs;
      RawWc += !checkWorkConservation(CR, Raw).passed();
      RawPc += !checkPolicyCompliance(CR, Raw, TS).passed();
      RelWc += !checkWorkConservation(CR, Rel).passed();
      RelPc += !checkPolicyCompliance(CR, Rel, TS).passed();
    }
    T.addRow({std::to_string(Socks), std::to_string(Runs),
              std::to_string(RawWc), std::to_string(RawPc),
              std::to_string(RelWc), std::to_string(RelPc)});
    RawAny += RawWc + RawPc;
    RelBad += RelWc + RelPc;
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("paper expectation: the raw arrival sequence exposes the "
              "implementation/model gap (violations common); the "
              "release sequence closes it (0 violations), enabling the "
              "application of aRSA.\n");
  if (RawAny == 0 || RelBad != 0) {
    std::printf("E13 FAILED (raw violations=%llu, release "
                "violations=%llu)\n",
                (unsigned long long)RawAny, (unsigned long long)RelBad);
    return 1;
  }
  std::printf("E13 reproduced: raw violations=%llu, release "
              "violations=0.\n",
              (unsigned long long)RawAny);
  return 0;
}
