//===- bench/static_wcet.cpp - Experiment E17: static vs observed costs ---===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable soundness and tightness of the static segment-cost pass
/// (analysis/timing): for N in {1, 2, 4} sockets, the embedded Rössl
/// program runs under seeded workloads spanning the compliant cost
/// models (AlwaysWcet, Uniform, HalfWcet) and workload styles
/// (GreedyDense, Random, Sparse — Sparse exercises the Idling class),
/// and every observed basic-action duration must fall inside the
/// statically derived interval of its segment class. The AlwaysWcet
/// runs double as the tightness probe: static hi / observed max must
/// stay <= 2.0 per class. Whole iterations are checked against
/// iterationWcet(successes). Emits BENCH_static_wcet.json (per-class
/// intervals, observed ranges, tightness, analysis wall time).
///
/// Exit 0 iff every segment is bounded, every observation is contained,
/// every iteration respects its WCET, and every class meets the
/// tightness gate.
///
//===----------------------------------------------------------------------===//

#include "analysis/timing/segment_costs.h"
#include "caesium/interp.h"
#include "caesium/rossl_program.h"
#include "sim/environment.h"
#include "sim/workload.h"
#include "support/table.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace rprosa;
using namespace rprosa::analysis;
namespace cs = rprosa::caesium;

namespace {

/// Aggregated observations of one segment class at one socket count.
struct ClassObs {
  Duration Min = TimeInfinity;
  Duration Max = 0;
  std::uint64_t Count = 0;
  bool ContainedAll = true;

  void note(Duration D, const CostInterval &I) {
    Min = std::min(Min, D);
    Max = std::max(Max, D);
    ++Count;
    ContainedAll &= I.contains(D);
  }
};

/// The outcome of one socket count's sweep.
struct SocketOutcome {
  std::uint32_t NumSockets = 0;
  TimingResult Static;
  double AnalysisUs = 0;
  ClassObs Obs[NumSegmentClasses];
  std::uint64_t Runs = 0;
  std::uint64_t Segments = 0;
  std::uint64_t Iterations = 0;
  bool IterationsContained = true;
  Duration IterationObservedMax = 0;
};

ClientConfig makeClient(std::uint32_t N) {
  ClientConfig C;
  C.Tasks.addTask("hi", 600 * TickNs, 2,
                  std::make_shared<PeriodicCurve>(10 * TickUs));
  C.Tasks.addTask("lo", 1500 * TickNs, 1,
                  std::make_shared<LeakyBucketCurve>(2, 25 * TickUs));
  C.NumSockets = N;
  C.Wcets = BasicActionWcets::typicalDeployment();
  return C;
}

double tightness(const SegmentBound &B, const ClassObs &O) {
  if (O.Count == 0 || O.Max == 0 || B.I.Hi == TimeInfinity)
    return 0;
  return static_cast<double>(B.I.Hi) / static_cast<double>(O.Max);
}

std::string fmtRatio(double R) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", R);
  return Buf;
}

SocketOutcome sweep(std::uint32_t N) {
  SocketOutcome Out;
  Out.NumSockets = N;

  ClientConfig C = makeClient(N);
  StaticCostParams P;
  P.Wcets = C.Wcets;
  P.Instr = InstructionCosts::unit();
  P.MaxCallbackWcet = 0;
  for (const Task &T : C.Tasks.tasks())
    P.MaxCallbackWcet = std::max(P.MaxCallbackWcet, T.Wcet);

  cs::StmtPtr Program = cs::buildRosslProgram(N);
  Cfg G = buildCfg(Program);

  auto T0 = std::chrono::steady_clock::now();
  Out.Static = analyzeTiming(G, P, N);
  auto T1 = std::chrono::steady_clock::now();
  Out.AnalysisUs =
      std::chrono::duration<double, std::micro>(T1 - T0).count();

  const CostModelKind Kinds[] = {CostModelKind::AlwaysWcet,
                                 CostModelKind::Uniform,
                                 CostModelKind::HalfWcet};
  const WorkloadStyle Styles[] = {WorkloadStyle::GreedyDense,
                                  WorkloadStyle::Random,
                                  WorkloadStyle::Sparse};
  RunLimits Limits;
  Limits.Horizon = 150 * TickUs;

  for (CostModelKind Kind : Kinds) {
    for (WorkloadStyle Style : Styles) {
      for (std::uint64_t Seed = 1; Seed <= 5; ++Seed) {
        WorkloadSpec Spec;
        Spec.NumSockets = N;
        Spec.Horizon = 100 * TickUs;
        Spec.Seed = Seed;
        Spec.Style = Style;
        ArrivalSequence Arr = generateWorkload(C.Tasks, Spec);

        Environment Env(Arr);
        CostModel Costs(C.Wcets, Kind, Seed, InstructionCosts::unit());
        cs::CaesiumMachine M(C, Env, Costs);
        TimedTrace TT = M.run(Program, Limits);
        ++Out.Runs;

        for (const ObservedSegment &S : observedSegments(TT)) {
          const SegmentBound &B = Out.Static.seg(S.Class);
          Out.Obs[static_cast<std::size_t>(S.Class)].note(S.Len, B.I);
          ++Out.Segments;
        }
        for (const IterationObs &It : observedIterations(TT)) {
          ++Out.Iterations;
          Out.IterationObservedMax =
              std::max(Out.IterationObservedMax, It.Len);
          if (It.Len > Out.Static.iterationWcet(It.Successes))
            Out.IterationsContained = false;
        }
      }
    }
  }
  return Out;
}

void writeJson(const std::vector<SocketOutcome> &Sweeps, bool Ok) {
  std::FILE *F = std::fopen("BENCH_static_wcet.json", "w");
  if (!F) {
    std::printf("(could not write BENCH_static_wcet.json)\n");
    return;
  }
  std::fprintf(F, "{\n  \"experiment\": \"E17-static-wcet\",\n");
  std::fprintf(F, "  \"sound_and_tight\": %s,\n", Ok ? "true" : "false");
  std::fprintf(F, "  \"sockets\": [\n");
  for (std::size_t S = 0; S < Sweeps.size(); ++S) {
    const SocketOutcome &O = Sweeps[S];
    std::fprintf(F,
                 "    {\"sockets\": %u, \"analysis_us\": %.1f, "
                 "\"paths_explored\": %llu, \"runs\": %llu, "
                 "\"segments_checked\": %llu, \"iterations_checked\": "
                 "%llu, \"iteration_wcet_fixed\": %llu, "
                 "\"iteration_observed_max\": %llu, "
                 "\"iterations_contained\": %s,\n",
                 O.NumSockets, O.AnalysisUs,
                 static_cast<unsigned long long>(O.Static.PathsExplored),
                 static_cast<unsigned long long>(O.Runs),
                 static_cast<unsigned long long>(O.Segments),
                 static_cast<unsigned long long>(O.Iterations),
                 static_cast<unsigned long long>(O.Static.IterationFixed),
                 static_cast<unsigned long long>(O.IterationObservedMax),
                 O.IterationsContained ? "true" : "false");
    std::fprintf(F, "     \"classes\": [\n");
    for (std::size_t I = 0; I < NumSegmentClasses; ++I) {
      const SegmentBound &B = O.Static.Segments[I];
      const ClassObs &Obs = O.Obs[I];
      std::fprintf(F,
                   "      {\"class\": \"%s\", \"static_lo\": %llu, "
                   "\"static_hi\": %llu, \"observed_min\": %llu, "
                   "\"observed_max\": %llu, \"observations\": %llu, "
                   "\"contained\": %s, \"tightness\": %s}%s\n",
                   toString(B.Class).c_str(),
                   static_cast<unsigned long long>(B.I.Lo),
                   static_cast<unsigned long long>(B.I.Hi),
                   static_cast<unsigned long long>(
                       Obs.Count ? Obs.Min : 0),
                   static_cast<unsigned long long>(Obs.Max),
                   static_cast<unsigned long long>(Obs.Count),
                   Obs.ContainedAll ? "true" : "false",
                   fmtRatio(tightness(B, Obs)).c_str(),
                   I + 1 < NumSegmentClasses ? "," : "");
    }
    std::fprintf(F, "     ]}%s\n", S + 1 < Sweeps.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote BENCH_static_wcet.json\n");
}

} // namespace

int main() {
  std::printf("=== E17: static segment-cost bounds vs observed runs "
              "===\n\n");

  bool Ok = true;
  std::vector<SocketOutcome> Sweeps;
  for (std::uint32_t N : {1u, 2u, 4u})
    Sweeps.push_back(sweep(N));

  for (const SocketOutcome &O : Sweeps) {
    std::printf("--- %u socket(s): %llu runs, %llu segments, %llu "
                "iterations, analysis %.1f us ---\n",
                O.NumSockets, static_cast<unsigned long long>(O.Runs),
                static_cast<unsigned long long>(O.Segments),
                static_cast<unsigned long long>(O.Iterations),
                O.AnalysisUs);
    TableWriter T({"segment", "static [lo, hi]", "observed [min, max]",
                   "n", "contained", "tightness"});
    for (std::size_t I = 0; I < NumSegmentClasses; ++I) {
      const SegmentBound &B = O.Static.Segments[I];
      const ClassObs &Obs = O.Obs[I];
      bool RowOk = B.bounded() && Obs.ContainedAll;
      double R = tightness(B, Obs);
      // The gate: every class must be observed at least once, contained
      // on every observation, and within 2x of the observed worst case.
      bool TightOk = Obs.Count > 0 && R > 0 && R <= 2.0;
      Ok &= RowOk && TightOk;
      T.addRow({toString(B.Class),
                "[" + std::to_string(B.I.Lo) + ", " +
                    std::to_string(B.I.Hi) + "]",
                Obs.Count ? "[" + std::to_string(Obs.Min) + ", " +
                                std::to_string(Obs.Max) + "]"
                          : "(none)",
                std::to_string(Obs.Count),
                Obs.ContainedAll ? "yes" : "VIOLATED",
                Obs.Count ? fmtRatio(R) : "-"});
    }
    std::printf("%s\n", T.renderAscii().c_str());
    std::printf("iteration WCET(0 successes) %llu, observed iteration "
                "max %llu, iterations %s\n\n",
                static_cast<unsigned long long>(O.Static.IterationFixed),
                static_cast<unsigned long long>(O.IterationObservedMax),
                O.IterationsContained ? "contained" : "VIOLATED");
    Ok &= O.Static.allBounded() && O.IterationsContained;
  }

  writeJson(Sweeps, Ok);
  if (!Ok) {
    std::printf("E17 FAILED: a static bound was violated or too "
                "loose\n");
    return 1;
  }
  std::printf("E17 reproduced: every observed segment cost lies inside "
              "its statically derived interval, every iteration "
              "respects the derived WCET, and each bound is within 2x "
              "of the observed worst case.\n");
  return 0;
}
