//===- bench/fig3_example_run.cpp - Experiment E1: the Fig. 3 run ---------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 3 of the paper: "An example run of Rössl with two
/// jobs arriving on one socket." Job j1 (task tau1, low priority) has
/// arrived when polling starts; j2 (tau2, high priority) arrives while
/// j1 is being read. The figure's narrative:
///
///   read j1 → read j2 → failed read → select j2 → execute j2
///   → poll (failed) → select j1 → execute j1 → idle
///
/// The harness prints the timed marker sequence, checks it against the
/// expected order, and reports both jobs' response times (the spans
/// drawn in the figure). Exit code 0 iff the reproduction matches.
///
//===----------------------------------------------------------------------===//

#include "adequacy/pipeline.h"
#include "support/table.h"

#include <cstdio>
#include <memory>

using namespace rprosa;

int main() {
  ClientConfig Client;
  Client.Tasks.addTask("tau1", /*Wcet=*/50 * TickUs, /*Prio=*/1,
                       std::make_shared<PeriodicCurve>(10 * TickMs));
  Client.Tasks.addTask("tau2", /*Wcet=*/30 * TickUs, /*Prio=*/2,
                       std::make_shared<PeriodicCurve>(10 * TickMs));
  Client.NumSockets = 1;
  Client.Wcets = BasicActionWcets::typicalDeployment();

  AdequacySpec Spec;
  Spec.Client = Client;
  Spec.Arr = ArrivalSequence(1);
  Spec.Arr.addArrival(0, 0, /*Task=*/0);            // j1, already queued.
  Spec.Arr.addArrival(300 * TickNs, 0, /*Task=*/1); // j2, during read.
  Spec.Limits.Horizon = 1 * TickMs;
  AdequacyReport Rep = runAdequacy(Spec);

  std::printf("=== E1: the Figure 3 example run (two jobs, one socket) "
              "===\n\n");
  std::printf("timed marker trace (first iteration + aftermath):\n%s\n",
              renderTimedTrace(Rep.TT, 20).c_str());

  // Check the figure's event order.
  const Trace &Tr = Rep.TT.Tr;
  std::vector<MarkerKind> Expected = {
      MarkerKind::ReadS,     MarkerKind::ReadE, // j1
      MarkerKind::ReadS,     MarkerKind::ReadE, // j2
      MarkerKind::ReadS,     MarkerKind::ReadE, // failed
      MarkerKind::Selection, MarkerKind::Dispatch, // j2!
      MarkerKind::Execution, MarkerKind::Completion,
      MarkerKind::ReadS,     MarkerKind::ReadE, // failed
      MarkerKind::Selection, MarkerKind::Dispatch, // j1
      MarkerKind::Execution, MarkerKind::Completion,
  };
  bool Match = Tr.size() >= Expected.size();
  for (std::size_t I = 0; Match && I < Expected.size(); ++I)
    Match = Tr[I].Kind == Expected[I];
  Match = Match && Tr[1].J && Tr[1].J->Task == 0;   // j1 read first,
  Match = Match && Tr[3].J && Tr[3].J->Task == 1;   // then j2,
  Match = Match && Tr[5].isFailedRead();            // polling ends,
  Match = Match && Tr[7].J && Tr[7].J->Task == 1;   // j2 dispatched first,
  Match = Match && Tr[13].J && Tr[13].J->Task == 0; // then j1.

  std::printf("event order matches Fig. 3: %s\n", Match ? "yes" : "NO");

  TableWriter T({"job", "task", "arrival", "completion", "response",
                 "bound R_i+J_i", "within bound"});
  for (const JobVerdict &V : Rep.Jobs)
    T.addRow({"m" + std::to_string(V.Msg),
              Client.Tasks.task(V.Task).Name,
              formatTicksAsNs(V.ArrivalAt),
              V.Completed ? formatTicksAsNs(V.CompletedAt) : "-",
              V.Completed ? formatTicksAsNs(V.ResponseTime) : "-",
              formatTicksAsNs(V.Bound), V.Holds ? "yes" : "NO"});
  std::printf("\n%s\n", T.renderAscii().c_str());
  std::printf("paper expectation: j2 (higher priority, later arrival) "
              "completes before j1.\n");

  bool Order = Rep.Jobs.size() == 2 && Rep.Jobs[0].Completed &&
               Rep.Jobs[1].Completed &&
               Rep.Jobs[1].CompletedAt < Rep.Jobs[0].CompletedAt;
  std::printf("j2 before j1: %s\n", Order ? "yes" : "NO");

  return (Match && Order && Rep.theoremHolds()) ? 0 : 1;
}
