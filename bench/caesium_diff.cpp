//===- bench/caesium_diff.cpp - Experiment E12: semantics equivalence -----===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RefinedC/Caesium part of the paper hinges on the instrumented
/// operational semantics (Fig. 6) capturing the C program's behaviour.
/// Our executable analogue: the Rössl program written in the deep
/// embedding, run under the Fig. 6-style interpreter, must produce the
/// *identical* timed marker trace as the native C++ scheduler — across
/// socket counts, seeds, cost models, and payload-collision patterns
/// (footnote 5's non-unique message data).
///
/// Reported: configurations tested, markers compared, mismatches
/// (required: 0).
///
//===----------------------------------------------------------------------===//

#include "caesium/interp.h"
#include "caesium/rossl_program.h"
#include "sim/workload.h"
#include "support/table.h"

#include <cstdio>
#include <memory>

using namespace rprosa;
using namespace rprosa::caesium;

namespace {

bool tracesEqual(const TimedTrace &A, const TimedTrace &B) {
  if (A.size() != B.size() || A.EndTime != B.EndTime)
    return false;
  for (std::size_t I = 0; I < A.size(); ++I) {
    const MarkerEvent &E1 = A.Tr[I];
    const MarkerEvent &E2 = B.Tr[I];
    if (E1.Kind != E2.Kind || A.Ts[I] != B.Ts[I] ||
        E1.Socket != E2.Socket || E1.J.has_value() != E2.J.has_value())
      return false;
    if (E1.J && (E1.J->Id != E2.J->Id || E1.J->Msg != E2.J->Msg ||
                 E1.J->Task != E2.J->Task))
      return false;
  }
  return true;
}

} // namespace

int main() {
  std::printf("=== E12: deep-embedding (Fig. 6 semantics) vs native "
              "scheduler — differential equivalence ===\n\n");

  TaskSet TS;
  TS.addTask("a", 500 * TickNs, 3,
             std::make_shared<PeriodicCurve>(15 * TickUs));
  TS.addTask("b", 900 * TickNs, 2,
             std::make_shared<LeakyBucketCurve>(2, 40 * TickUs));
  TS.addTask("c", 1500 * TickNs, 1,
             std::make_shared<PeriodicCurve>(70 * TickUs));

  TableWriter T({"sockets", "cost model", "runs", "markers compared",
                 "mismatches"});
  std::uint64_t TotalRuns = 0, TotalMarkers = 0, TotalMismatches = 0;

  for (std::uint32_t Socks : {1u, 2u, 4u, 8u}) {
    for (CostModelKind Cost : {CostModelKind::AlwaysWcet,
                               CostModelKind::Uniform}) {
      std::uint64_t Markers = 0, Mismatches = 0, Runs = 0;
      for (std::uint64_t Seed = 1; Seed <= 6; ++Seed) {
        ClientConfig C;
        C.Tasks = TS;
        C.NumSockets = Socks;
        C.Wcets = BasicActionWcets::typicalDeployment();

        WorkloadSpec Spec;
        Spec.NumSockets = Socks;
        Spec.Horizon = 300 * TickUs;
        Spec.Seed = Seed;
        Spec.Style = Seed % 2 ? WorkloadStyle::Random
                              : WorkloadStyle::GreedyDense;
        ArrivalSequence Arr = generateWorkload(TS, Spec);

        RunLimits Limits;
        Limits.Horizon = 500 * TickUs;

        Environment EnvN(Arr);
        CostModel CostsN(C.Wcets, Cost, Seed);
        FdScheduler Native(C, EnvN, CostsN);
        TimedTrace TN = Native.run(Limits);

        Environment EnvE(Arr);
        CostModel CostsE(C.Wcets, Cost, Seed);
        CaesiumMachine M(C, EnvE, CostsE);
        TimedTrace TE = M.run(buildRosslProgram(Socks), Limits);

        ++Runs;
        Markers += TN.size();
        Mismatches += !tracesEqual(TN, TE);
      }
      T.addRow({std::to_string(Socks), toString(Cost),
                std::to_string(Runs), formatWithCommas(Markers),
                std::to_string(Mismatches)});
      TotalRuns += Runs;
      TotalMarkers += Markers;
      TotalMismatches += Mismatches;
    }
  }

  std::printf("%s\n", T.renderAscii().c_str());
  std::printf("total: %llu runs, %s markers, %llu mismatching runs\n",
              (unsigned long long)TotalRuns,
              formatWithCommas(TotalMarkers).c_str(),
              (unsigned long long)TotalMismatches);
  std::printf("\npaper analogue: RefinedC verifies the C code against "
              "the instrumented Caesium semantics; here the embedded "
              "program and the native implementation must agree on "
              "every marker and timestamp.\n");
  if (TotalMismatches != 0) {
    std::printf("E12 FAILED\n");
    return 1;
  }
  std::printf("E12 reproduced: the deep embedding and the native "
              "scheduler are trace-equivalent.\n");
  return 0;
}
