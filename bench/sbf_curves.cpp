//===- bench/sbf_curves.cpp - Experiment E4: SBF and blackout bounds ------===//
//
// Part of RefinedProsa-CPP. MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces §4.4 / Def. 2.2: the supply bound function SBF(Δ) and the
/// blackout bound it is built from. For a growing window length Δ the
/// harness prints the analytical TRB(Δ), NRB(Δ), BlackoutBound(Δ) and
/// SBF(Δ) next to the *measured* worst blackout and least supply over
/// all busy-window-anchored windows of length Δ in a dense simulated
/// run. Soundness requires measured blackout ≤ bound and measured
/// supply ≥ SBF at every Δ; additionally every discrete PollingOvh
/// instance must respect PB (Def. 2.2).
///
/// The Δ grid is evaluated concurrently over one shared RosslSupply
/// (see its memoized timeToSupply); --serial forces one thread. The
/// rendered table is byte-identical either way.
///
//===----------------------------------------------------------------------===//

#include "convert/trace_to_schedule.h"
#include "rossl/scheduler.h"
#include "rta/jitter.h"
#include "rta/sbf.h"
#include "sim/environment.h"
#include "sim/workload.h"
#include "support/parallel.h"
#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace rprosa;

int main(int argc, char **argv) {
  std::printf("=== E4: supply bound function and blackout bounds (§4.4, "
              "Def. 2.2) ===\n\n");

  ClientConfig Client;
  Client.Tasks.addTask("hi", 500 * TickNs, 2,
                       std::make_shared<PeriodicCurve>(10 * TickUs));
  Client.Tasks.addTask("lo", 1500 * TickNs, 1,
                       std::make_shared<LeakyBucketCurve>(2, 30 * TickUs));
  Client.NumSockets = 2;
  Client.Wcets = BasicActionWcets::typicalDeployment();

  WorkloadSpec Spec;
  Spec.NumSockets = 2;
  Spec.Horizon = 300 * TickUs;
  Spec.Style = WorkloadStyle::GreedyDense;
  ArrivalSequence Arr = generateWorkload(Client.Tasks, Spec);

  Environment Env(Arr);
  CostModel Costs(Client.Wcets, CostModelKind::AlwaysWcet, 1);
  FdScheduler Sched(Client, Env, Costs);
  RunLimits Limits;
  Limits.Horizon = 400 * TickUs;
  TimedTrace TT = Sched.run(Limits);
  ConversionResult CR = convertTraceToSchedule(TT, 2);

  OverheadBounds B = OverheadBounds::compute(Client.Wcets, 2);
  Duration J = maxReleaseJitter(B);
  std::vector<ArrivalCurvePtr> Beta;
  for (const Task &T : Client.Tasks.tasks())
    Beta.push_back(makeReleaseCurve(T.Curve, J));
  RosslSupply Supply(Beta, B, 100 * TickSec);

  std::vector<Time> Anchors = CR.Sched.busyWindowAnchors();
  const auto &Segs = CR.Sched.segments();
  std::printf("run: %zu markers, %zu jobs, %zu busy-window anchors\n\n",
              TT.size(), CR.Jobs.size(), Anchors.size());

  // Each Delta scans every anchor and inverts the SBF — independent
  // work, evaluated concurrently against the one shared RosslSupply
  // (its timeToSupply memo is thread-safe). Rows are buffered per index
  // and rendered in input order: identical output under --serial.
  const std::vector<Duration> Deltas = {
      1 * TickUs,  2 * TickUs,  5 * TickUs,   10 * TickUs,
      20 * TickUs, 50 * TickUs, 100 * TickUs, 200 * TickUs};
  struct Row {
    bool Fits = false;
    bool Sound = true;
    Duration MaxBlackout = 0;
    Duration MinSupply = 0;
    Duration Trb = 0, Nrb = 0, Bound = 0, Sbf = 0;
  };
  std::vector<Row> Rows(Deltas.size());
  ThreadPool Pool(threadsFromArgs(argc, argv));
  std::size_t Chunk = chunkFromArgs(argc, argv);
  Pool.parallelForChunked(Deltas.size(), Chunk, [&](std::size_t Idx) {
    Duration Delta = Deltas[Idx];
    Duration MaxBlackout = 0;
    Duration MinSupply = TimeInfinity;
    for (Time A : Anchors) {
      if (A + Delta > CR.Sched.endTime())
        continue;
      MaxBlackout = std::max(MaxBlackout,
                             CR.Sched.blackoutIn(A, A + Delta));
      MinSupply = std::min(MinSupply, CR.Sched.supplyIn(A, A + Delta));
    }
    if (MinSupply == TimeInfinity)
      return; // No anchor fits this window.
    Row &R = Rows[Idx];
    R.Fits = true;
    R.MaxBlackout = MaxBlackout;
    R.MinSupply = MinSupply;
    R.Trb = Supply.trb(Delta);
    R.Nrb = Supply.nrb(Delta);
    R.Bound = Supply.blackoutBound(Delta);
    R.Sbf = Supply.supplyBound(Delta);
    R.Sound = MaxBlackout <= R.Bound && MinSupply >= R.Sbf;
  });

  TableWriter T({"Delta", "TRB", "NRB", "BlackoutBound", "measured max "
                 "blackout", "SBF", "measured min supply", "sound"});
  bool AllSound = true;
  for (std::size_t Idx = 0; Idx < Deltas.size(); ++Idx) {
    const Row &R = Rows[Idx];
    if (!R.Fits)
      continue;
    AllSound &= R.Sound;
    T.addRow({formatTicksAsNs(Deltas[Idx]), formatTicksAsNs(R.Trb),
              formatTicksAsNs(R.Nrb), formatTicksAsNs(R.Bound),
              formatTicksAsNs(R.MaxBlackout), formatTicksAsNs(R.Sbf),
              formatTicksAsNs(R.MinSupply), R.Sound ? "yes" : "NO"});
  }
  std::printf("%s\n", T.renderAscii().c_str());

  // Def. 2.2: each discrete PollingOvh instance within PB.
  Duration MaxPolling = 0;
  std::uint64_t PollingInstances = 0;
  for (const ScheduleSegment &S : Segs) {
    if (S.State.Kind != ProcStateKind::PollingOvh)
      continue;
    ++PollingInstances;
    MaxPolling = std::max(MaxPolling, S.Len);
  }
  std::printf("Def. 2.2: %llu PollingOvh instances, longest %s, bound "
              "PB = %s: %s\n",
              (unsigned long long)PollingInstances,
              formatTicksAsNs(MaxPolling).c_str(),
              formatTicksAsNs(B.PB).c_str(),
              MaxPolling <= B.PB ? "respected" : "VIOLATED");
  AllSound &= MaxPolling <= B.PB;

  std::printf("\npaper expectation: BlackoutBound/SBF are sound (proved "
              "in Rocq); measured blackout stays below the bound at "
              "every Delta.\n");
  if (!AllSound) {
    std::printf("E4 FAILED\n");
    return 1;
  }
  std::printf("E4 reproduced.\n");
  return 0;
}
